//! Block-size tuning: the paper's central ablation as a user scenario.
//! Sweeps the cVolume record size, reporting for each the node footprint
//! (disk + DDT memory) and the simulated warm boot time — reproducing the
//! reasoning that leads the paper to pick 64 KiB.
//!
//! ```text
//! cargo run --release --example block_size_tuning
//! ```

use squirrel_repro::bootsim::{Backend, BootSim, DedupVolumeParams};
use squirrel_repro::compress::Codec;
use squirrel_repro::core::paper_scale_trace;
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use squirrel_repro::zfs::{PoolConfig, ZPool};

fn main() {
    let scale = 1024u64;
    let corpus = Corpus::generate(CorpusConfig {
        n_images: 32,
        scale,
        ..CorpusConfig::azure(scale, 4242)
    });
    let sim = BootSim::new();
    println!("{:>9}  {:>12}  {:>12}  {:>12}", "block", "disk (MiB)", "ddt (KiB)", "boot (s)");

    let mut best: Option<(usize, f64)> = None;
    for bs in [4096usize, 8192, 16384, 32768, 65536, 131072] {
        // Store every cache in a cVolume at this record size.
        let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)).accounting_only());
        for img in corpus.iter() {
            let cache = img.cache();
            pool.import_file(&format!("c-{}", img.id()), cache.blocks(bs), cache.bytes());
        }
        let stats = pool.stats();

        // Average warm boot over a handful of images, with simulator inputs
        // measured from this very pool.
        let shared: f64 = corpus
            .iter()
            .filter_map(|img| pool.file_shared_fraction(&format!("c-{}", img.id()), 1))
            .sum::<f64>()
            / corpus.len() as f64;
        let params = DedupVolumeParams {
            record_size: bs as u64,
            compressed_fraction: (stats.physical_bytes as f64
                / (stats.unique_blocks.max(1) * stats.block_size) as f64)
                .clamp(0.02, 1.0),
            ddt_entries: stats.unique_blocks * scale,
            pool_physical_bytes: (stats.physical_bytes * scale).max(1),
            shared_fraction: shared,
            ..DedupVolumeParams::new(bs as u64)
        };
        let mut secs = 0.0;
        let sample = 8u32;
        for id in 0..sample {
            let ws = corpus.image(id).cache().bytes() * scale;
            let trace = paper_scale_trace(ws, id as u64);
            secs += sim.boot(&trace, &Backend::DedupVolume(params)).total_seconds;
        }
        let boot = secs / sample as f64;

        println!(
            "{:>7}K  {:>12.2}  {:>12.1}  {:>12.2}",
            bs / 1024,
            stats.total_disk_bytes() as f64 / (1 << 20) as f64,
            stats.ddt_memory_bytes as f64 / 1024.0,
            boot
        );
        if best.is_none_or(|(_, b)| boot < b) {
            best = Some((bs, boot));
        }
    }
    let (bs, boot) = best.expect("swept at least one size");
    println!("\nfastest warm boot: {}K at {boot:.2}s (the paper picks 64K)", bs / 1024);
}
