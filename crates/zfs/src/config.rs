//! Pool configuration: block size, codec, and accounting constants.

use squirrel_compress::Codec;

/// Configuration of a [`crate::ZPool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Fixed record size (ZFS `recordsize`); the dedup/compression unit.
    pub block_size: usize,
    /// Inline compression routine (ZFS `compression=`).
    pub codec: Codec,
    /// Keep block payloads in memory so files can be read back. Accounting
    /// sweeps that only need [`crate::SpaceStats`] turn this off to bound
    /// memory.
    pub retain_data: bool,
    /// In-core bytes per dedup-table entry (ZFS DDT entries cost a few
    /// hundred bytes each in ARC; the exact figure depends on the build).
    pub ddt_mem_entry_bytes: u64,
    /// On-disk bytes per dedup-table entry (the ZAP leaf footprint).
    pub ddt_disk_entry_bytes: u64,
    /// On-disk metadata bytes per file block pointer (amortized indirect
    /// blocks; ZFS blkptr_t is 128 B but metadata is itself compressed).
    pub bp_disk_bytes: u64,
    /// Worker threads for the staged ingestion pipeline
    /// ([`crate::ZPool::import_file_parallel`]); `0` = all available cores.
    /// Results are bit-identical at any setting.
    pub threads: usize,
}

impl PoolConfig {
    /// The paper's production choice: 64 KiB records, gzip-6, dedup on.
    pub fn paper_default() -> Self {
        PoolConfig::new(64 * 1024, Codec::Gzip(6))
    }

    /// A pool with the given record size and codec and default accounting
    /// constants.
    pub fn new(block_size: usize, codec: Codec) -> Self {
        assert!(block_size >= 512 && block_size.is_power_of_two(), "record size");
        PoolConfig {
            block_size,
            codec,
            retain_data: true,
            ddt_mem_entry_bytes: 120,
            ddt_disk_entry_bytes: 108,
            bp_disk_bytes: 40,
            threads: 0,
        }
    }

    /// Accounting-only variant (no payload retention).
    pub fn accounting_only(mut self) -> Self {
        self.retain_data = false;
        self
    }

    /// Set the ingestion worker-thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_64k_gzip6() {
        let c = PoolConfig::paper_default();
        assert_eq!(c.block_size, 65536);
        assert_eq!(c.codec, Codec::Gzip(6));
        assert!(c.retain_data);
    }

    #[test]
    #[should_panic(expected = "record size")]
    fn rejects_non_power_of_two() {
        PoolConfig::new(3000, Codec::Off);
    }

    #[test]
    #[should_panic(expected = "record size")]
    fn rejects_tiny_block() {
        PoolConfig::new(256, Codec::Off);
    }

    #[test]
    fn accounting_only_disables_retention() {
        assert!(!PoolConfig::paper_default().accounting_only().retain_data);
    }
}
