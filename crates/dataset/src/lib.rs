//! Synthetic VM image corpus modelled on the paper's Windows Azure dataset.
//!
//! The paper's dataset — 607 community images, 16.4 TB raw — is proprietary,
//! so this crate builds a *statistically equivalent* corpus from scratch. The
//! figures the paper draws from the dataset depend on a small set of content
//! mechanisms, each of which is modelled explicitly:
//!
//! * **Distro skew** ([`census`]): images belong to the OS families of the
//!   paper's Table 2 (579 Ubuntu, 17 RHEL/CentOS, ...), each family having a
//!   handful of releases whose *boot working sets* are near-identical across
//!   images of the same release.
//! * **Atoms and groups** ([`atoms`]): content is composed of 512-byte atoms
//!   drawn from shared pools (release base, family libraries, common Linux
//!   bits, software packages) or generated uniquely per image. Identical atom
//!   ids yield identical bytes — the source of deduplication.
//! * **Sub-block mutation** ([`layout`]): per-image changes come in
//!   contiguous mutated *segments*, so small blocks dodge them and large
//!   blocks absorb them — the paper's first dedup-vs-block-size mechanism.
//! * **Alignment** ([`layout`]): user software is laid out as packages at
//!   image-specific positions, so shared content is misaligned between
//!   images and only deduplicates at small block sizes — the second
//!   mechanism.
//! * **Compressible texture** ([`dict`]): atom bytes mix dictionary words
//!   with incompressible filler, so LZ ratios grow with block size and land
//!   in the paper's 2–3x gzip range.
//!
//! Everything is seeded and bit-reproducible; a `scale` divisor shrinks byte
//! volumes while preserving every ratio the evaluation measures.

pub mod analysis;
pub mod atoms;
pub mod cache;
pub mod cdc;
pub mod census;
pub mod corpus;
pub mod dict;
pub mod layout;
pub mod rng;

pub use atoms::ATOM_SIZE;
pub use cache::{BootTrace, CacheView, ReadOp};
pub use census::{azure_census, ec2_census, CensusEntry, OsFamily};
pub use corpus::{Corpus, CorpusConfig, ImageHandle, ImageId, ImageSpec};
