//! OS-distribution census from the paper's Table 2.
//!
//! The Windows Azure community catalog (November 2013, 607 images) and the
//! Amazon EC2 catalog (October 2013, all regions) broken down by OS family.
//! The Azure census drives corpus generation; the EC2 census is reported for
//! comparison, exactly as the paper's Table 2 does.

/// Operating-system family of a VM image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OsFamily {
    Ubuntu,
    RedHatCentos,
    Suse,
    Debian,
    Windows,
    UnidentifiedLinux,
}

impl OsFamily {
    /// All families, in Table 2's row order.
    pub const ALL: [OsFamily; 6] = [
        OsFamily::Ubuntu,
        OsFamily::RedHatCentos,
        OsFamily::Suse,
        OsFamily::Debian,
        OsFamily::Windows,
        OsFamily::UnidentifiedLinux,
    ];

    /// Row label, matching the paper's Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            OsFamily::Ubuntu => "Ubuntu",
            OsFamily::RedHatCentos => "RedHat/CentOS",
            OsFamily::Suse => "OpenSuse/Suse Ent.",
            OsFamily::Debian => "Debian",
            OsFamily::Windows => "Windows",
            OsFamily::UnidentifiedLinux => "Unidentified Linux",
        }
    }

    /// Number of distinct releases modelled per family. Boot working sets
    /// are near-identical within a release and partially inherited between
    /// consecutive releases.
    pub fn release_count(&self) -> u32 {
        match self {
            OsFamily::Ubuntu => 8,
            OsFamily::RedHatCentos => 6,
            OsFamily::Suse => 4,
            OsFamily::Debian => 4,
            OsFamily::Windows => 4,
            OsFamily::UnidentifiedLinux => 3,
        }
    }
}

/// One census row: a family and its image count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CensusEntry {
    pub family: OsFamily,
    pub count: u32,
}

/// Windows Azure community images, November 2013 (total 607).
pub fn azure_census() -> Vec<CensusEntry> {
    vec![
        CensusEntry { family: OsFamily::Ubuntu, count: 579 },
        CensusEntry { family: OsFamily::RedHatCentos, count: 17 },
        CensusEntry { family: OsFamily::Suse, count: 5 },
        CensusEntry { family: OsFamily::Debian, count: 3 },
        CensusEntry { family: OsFamily::Windows, count: 0 },
        CensusEntry { family: OsFamily::UnidentifiedLinux, count: 3 },
    ]
}

/// Amazon EC2, all regions, October 2013. The paper's Table 2 prints a
/// total of 9871, but its rows sum to 9790; we reproduce the rows.
pub fn ec2_census() -> Vec<CensusEntry> {
    vec![
        CensusEntry { family: OsFamily::Ubuntu, count: 5720 },
        CensusEntry { family: OsFamily::RedHatCentos, count: 847 },
        CensusEntry { family: OsFamily::Suse, count: 8 },
        CensusEntry { family: OsFamily::Debian, count: 30 },
        CensusEntry { family: OsFamily::Windows, count: 531 },
        CensusEntry { family: OsFamily::UnidentifiedLinux, count: 2654 },
    ]
}

/// Total image count of a census.
pub fn census_total(census: &[CensusEntry]) -> u32 {
    census.iter().map(|e| e.count).sum()
}

/// Shrink a census to `n` images, preserving proportions but keeping at
/// least one image of every nonzero family (so small test corpora still
/// exercise cross-family behaviour).
pub fn scaled_census(census: &[CensusEntry], n: u32) -> Vec<CensusEntry> {
    let total = census_total(census).max(1);
    let mut out: Vec<CensusEntry> = census
        .iter()
        .map(|e| CensusEntry {
            family: e.family,
            count: if e.count == 0 { 0 } else { ((e.count as u64 * n as u64) / total as u64).max(1) as u32 },
        })
        .collect();
    // Adjust the largest family so the total hits exactly n.
    let mut sum: i64 = out.iter().map(|e| e.count as i64).sum();
    if let Some(biggest) = out.iter_mut().max_by_key(|e| e.count) {
        let delta = n as i64 - sum;
        biggest.count = (biggest.count as i64 + delta).max(0) as u32;
        sum += delta;
    }
    debug_assert_eq!(sum, n as i64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_totals_607() {
        assert_eq!(census_total(&azure_census()), 607);
    }

    #[test]
    fn ec2_totals_match_table_rows() {
        // The paper's printed total (9871) disagrees with its own rows,
        // which sum to 9790; we assert the row sum.
        assert_eq!(census_total(&ec2_census()), 9790);
    }

    #[test]
    fn azure_has_no_windows() {
        let c = azure_census();
        let w = c.iter().find(|e| e.family == OsFamily::Windows).expect("row");
        assert_eq!(w.count, 0);
    }

    #[test]
    fn scaled_census_preserves_total_and_minorities() {
        let s = scaled_census(&azure_census(), 60);
        assert_eq!(census_total(&s), 60);
        for e in &s {
            if e.family != OsFamily::Windows {
                assert!(e.count >= 1, "{:?}", e.family);
            }
        }
        // Ubuntu still dominates.
        let ubuntu = s.iter().find(|e| e.family == OsFamily::Ubuntu).expect("row").count;
        assert!(ubuntu > 40, "ubuntu {ubuntu}");
    }

    #[test]
    fn scaled_census_identity_at_full_size() {
        let s = scaled_census(&azure_census(), 607);
        assert_eq!(census_total(&s), 607);
    }

    #[test]
    fn labels_are_table2_rows() {
        assert_eq!(OsFamily::Suse.label(), "OpenSuse/Suse Ent.");
        assert_eq!(OsFamily::RedHatCentos.label(), "RedHat/CentOS");
    }

    #[test]
    fn every_family_has_releases() {
        for f in OsFamily::ALL {
            assert!(f.release_count() >= 3, "{f:?}");
        }
    }
}
