//! Snapshot model plus Prometheus-text and JSON export with exact
//! round-trip parsers.
//!
//! The JSON format carries the full snapshot (including events); the
//! Prometheus text format carries counters, gauges, and histograms — the
//! journal has no Prometheus representation, so `from_prometheus` returns a
//! snapshot with an empty journal.

use crate::histogram::{bucket_bound, bucket_index, HistogramSnapshot};
use crate::journal::{Event, FieldValue};

/// A gauge is either an integer or a float series.
#[derive(Clone, Debug, PartialEq)]
pub enum GaugeValue {
    Int(u64),
    Float(f64),
}

impl GaugeValue {
    pub fn as_f64(&self) -> f64 {
        match self {
            GaugeValue::Int(v) => *v as f64,
            GaugeValue::Float(v) => *v,
        }
    }
}

/// Deterministic point-in-time state of a [`crate::MetricsRegistry`]:
/// series sorted by name, journal events in sequence order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, GaugeValue)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub events: Vec<Event>,
    /// Events the bounded journal shed before this snapshot.
    pub events_dropped: u64,
}

/// True when `series` is the base name itself or the base plus labels.
fn matches_base(series: &str, base: &str) -> bool {
    series == base
        || (series.len() > base.len()
            && series.starts_with(base)
            && series.as_bytes()[base.len()] == b'{')
}

/// Series name without the label part.
fn base_of(series: &str) -> &str {
    series.split('{').next().unwrap_or(series)
}

impl MetricsSnapshot {
    /// Exact-name counter lookup (labels included in `name`).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Sum of every counter series with the given base name, across all
    /// label combinations.
    pub fn counter_sum(&self, base: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| matches_base(k, base))
            .map(|(_, v)| v)
            .sum()
    }

    /// All counter series `(full name, value)` sharing a base name.
    pub fn counter_series<'a>(
        &'a self,
        base: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| matches_base(k, base))
            .map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauge(&self, name: &str) -> Option<&GaugeValue> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn gauge_u64(&self, name: &str) -> Option<u64> {
        match self.gauge(name)? {
            GaugeValue::Int(v) => Some(*v),
            GaugeValue::Float(_) => None,
        }
    }

    pub fn gauge_f64(&self, name: &str) -> Option<f64> {
        match self.gauge(name)? {
            GaugeValue::Float(v) => Some(*v),
            GaugeValue::Int(_) => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Journal events with the given name, in sequence order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    // --- Prometheus text format --------------------------------------------

    /// Render the counters, gauges, and histograms in Prometheus text
    /// exposition format (events have no Prometheus representation).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if last_type.as_deref() != Some(base) {
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                last_type = Some(base.to_string());
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, base_of(name), "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, base_of(name), "gauge");
            match v {
                GaugeValue::Int(i) => out.push_str(&format!("{name} {i}\n")),
                GaugeValue::Float(f) => out.push_str(&format!("{name} {f:?}\n")),
            }
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, base_of(name), "histogram");
            let mut cumulative = 0u64;
            for &(idx, n) in &h.buckets {
                cumulative += n;
                let series = with_suffix_label(name, "_bucket", &bucket_bound(idx as usize));
                out.push_str(&format!("{series} {cumulative}\n"));
            }
            let inf = with_inf_label(name);
            out.push_str(&format!("{inf} {}\n", h.count));
            out.push_str(&format!("{} {}\n", with_suffix(name, "_sum"), h.sum));
            out.push_str(&format!("{} {}\n", with_suffix(name, "_count"), h.count));
        }
        out
    }

    /// Parse [`to_prometheus`](Self::to_prometheus) output back into a
    /// snapshot (with an empty journal). Exact inverse for snapshots this
    /// crate produced.
    pub fn from_prometheus(text: &str) -> Result<MetricsSnapshot, ParseError> {
        /// Accumulator for one histogram family while its component series
        /// stream in: count, sum, de-cumulated buckets, running cumulative.
        #[derive(Default)]
        struct HistoAcc {
            count: u64,
            sum: u64,
            buckets: Vec<(u8, u64)>,
            prev: u64,
        }
        let mut kinds: std::collections::BTreeMap<String, String> = Default::default();
        let mut snap = MetricsSnapshot::default();
        let mut histos: std::collections::BTreeMap<String, HistoAcc> = Default::default();
        for (lineno, line) in text.lines().enumerate() {
            let err = |msg: &str| ParseError::at(lineno + 1, msg);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let base = it.next().ok_or_else(|| err("missing family name"))?;
                let kind = it.next().ok_or_else(|| err("missing family kind"))?;
                kinds.insert(base.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            // Sample: the value is the trailing whitespace-separated token;
            // the series name (which may contain spaces inside label
            // values — not produced by this crate, but be strict anyway)
            // is everything before it.
            let split = line.rfind(' ').ok_or_else(|| err("missing sample value"))?;
            let (series, value) = (line[..split].trim_end(), line[split + 1..].trim());
            let base = base_of(series);
            match kinds.get(base).map(|s| s.as_str()) {
                Some("counter") => {
                    let v = value.parse().map_err(|_| err("bad counter value"))?;
                    snap.counters.push((series.to_string(), v));
                }
                Some("gauge") => {
                    let g = match value.parse::<u64>() {
                        Ok(i) => GaugeValue::Int(i),
                        Err(_) => GaugeValue::Float(
                            parse_f64(value).ok_or_else(|| err("bad gauge value"))?,
                        ),
                    };
                    snap.gauges.push((series.to_string(), g));
                }
                _ => {
                    // Histogram component series.
                    let (family, part) = histogram_family(series, &kinds)
                        .ok_or_else(|| err("sample without TYPE"))?;
                    let v: u64 = value.parse().map_err(|_| err("bad histogram value"))?;
                    let entry = histos.entry(family).or_default();
                    match part {
                        HistoPart::Bucket(le) => {
                            if let Some(le) = le {
                                let idx = bucket_index(le) as u8;
                                entry.buckets.push((idx, v - entry.prev));
                                entry.prev = v;
                            }
                            // +Inf bucket: redundant with _count; skip.
                        }
                        HistoPart::Sum => entry.sum = v,
                        HistoPart::Count => entry.count = v,
                    }
                }
            }
        }
        for (name, acc) in histos {
            snap.histograms.push((
                name,
                HistogramSnapshot { count: acc.count, sum: acc.sum, buckets: acc.buckets },
            ));
        }
        Ok(snap)
    }

    // --- JSON ---------------------------------------------------------------

    /// Render the full snapshot (including events) as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    [{}, {v}]", json_str(name)));
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                GaugeValue::Int(g) => {
                    out.push_str(&format!("\n    [{}, {{\"int\": {g}}}]", json_str(name)))
                }
                GaugeValue::Float(g) => out.push_str(&format!(
                    "\n    [{}, {{\"float\": {}}}]",
                    json_str(name),
                    json_f64(*g)
                )),
            }
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> =
                h.buckets.iter().map(|(idx, n)| format!("[{idx}, {n}]")).collect();
            out.push_str(&format!(
                "\n    [{}, {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}]",
                json_str(name),
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fields: Vec<String> = e
                .fields
                .iter()
                .map(|(k, v)| {
                    let val = match v {
                        FieldValue::U64(x) => format!("{{\"u64\": {x}}}"),
                        FieldValue::I64(x) => format!("{{\"i64\": {x}}}"),
                        FieldValue::F64(x) => format!("{{\"f64\": {}}}", json_f64(*x)),
                        FieldValue::Str(x) => format!("{{\"str\": {}}}", json_str(x)),
                    };
                    format!("[{}, {}]", json_str(k), val)
                })
                .collect();
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"name\": {}, \"fields\": [{}]}}",
                e.seq,
                json_str(&e.name),
                fields.join(", ")
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"events_dropped\": {}\n}}\n",
            self.events_dropped
        ));
        out
    }

    /// Parse [`to_json`](Self::to_json) output back into a snapshot.
    /// Exact inverse for snapshots this crate produced.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, ParseError> {
        let json = Json::parse(text)?;
        let obj = json.as_obj("snapshot")?;
        let mut snap = MetricsSnapshot::default();
        for pair in obj_get(obj, "counters")?.as_arr("counters")? {
            let p = pair.as_arr("counter pair")?;
            snap.counters
                .push((pair_name(p)?, p[1].as_u64("counter value")?));
        }
        for pair in obj_get(obj, "gauges")?.as_arr("gauges")? {
            let p = pair.as_arr("gauge pair")?;
            let g = p[1].as_obj("gauge value")?;
            let value = if let Ok(v) = obj_get(g, "int") {
                GaugeValue::Int(v.as_u64("int gauge")?)
            } else {
                GaugeValue::Float(obj_get(g, "float")?.as_f64("float gauge")?)
            };
            snap.gauges.push((pair_name(p)?, value));
        }
        for pair in obj_get(obj, "histograms")?.as_arr("histograms")? {
            let p = pair.as_arr("histogram pair")?;
            let h = p[1].as_obj("histogram value")?;
            let mut buckets = Vec::new();
            for b in obj_get(h, "buckets")?.as_arr("buckets")? {
                let b = b.as_arr("bucket pair")?;
                buckets.push((
                    b[0].as_u64("bucket index")? as u8,
                    b[1].as_u64("bucket count")?,
                ));
            }
            snap.histograms.push((
                pair_name(p)?,
                HistogramSnapshot {
                    count: obj_get(h, "count")?.as_u64("histogram count")?,
                    sum: obj_get(h, "sum")?.as_u64("histogram sum")?,
                    buckets,
                },
            ));
        }
        for ev in obj_get(obj, "events")?.as_arr("events")? {
            let e = ev.as_obj("event")?;
            let mut fields = Vec::new();
            for f in obj_get(e, "fields")?.as_arr("fields")? {
                let f = f.as_arr("field pair")?;
                let fv = f[1].as_obj("field value")?;
                let (tag, raw) = fv.first().ok_or_else(|| ParseError::new("empty field"))?;
                let value = match tag.as_str() {
                    "u64" => FieldValue::U64(raw.as_u64("u64 field")?),
                    "i64" => FieldValue::I64(raw.as_i64("i64 field")?),
                    "f64" => FieldValue::F64(raw.as_f64("f64 field")?),
                    "str" => FieldValue::Str(raw.as_str("str field")?.to_string()),
                    other => return Err(ParseError::new(&format!("bad field tag {other}"))),
                };
                fields.push((pair_name(f)?, value));
            }
            snap.events.push(Event {
                seq: obj_get(e, "seq")?.as_u64("event seq")?,
                name: obj_get(e, "name")?.as_str("event name")?.to_string(),
                fields,
            });
        }
        snap.events_dropped = obj_get(obj, "events_dropped")?.as_u64("events_dropped")?;
        Ok(snap)
    }
}

fn pair_name(p: &[Json]) -> Result<String, ParseError> {
    if p.len() != 2 {
        return Err(ParseError::new("expected [name, value] pair"));
    }
    Ok(p[0].as_str("pair name")?.to_string())
}

enum HistoPart {
    /// `Some(le)` for a finite bucket bound, `None` for `+Inf`.
    Bucket(Option<u64>),
    Sum,
    Count,
}

/// Resolve a `<family>_bucket{...,le="..."}` / `_sum` / `_count` series to
/// its histogram family series name and component.
fn histogram_family(
    series: &str,
    kinds: &std::collections::BTreeMap<String, String>,
) -> Option<(String, HistoPart)> {
    let base = base_of(series);
    let is_histo = |b: &str| kinds.get(b).map(|k| k == "histogram").unwrap_or(false);
    if let Some(family_base) = base.strip_suffix("_bucket") {
        if is_histo(family_base) {
            let (labels, le) = split_le_label(series.strip_prefix(base)?)?;
            let family = format!("{family_base}{labels}");
            let le = match le.as_str() {
                "+Inf" => None,
                n => Some(n.parse().ok()?),
            };
            return Some((family, HistoPart::Bucket(le)));
        }
    }
    for (suffix, part) in [("_sum", HistoPart::Sum), ("_count", HistoPart::Count)] {
        if let Some(family_base) = base.strip_suffix(suffix) {
            if is_histo(family_base) {
                let labels = series.strip_prefix(base)?;
                return Some((format!("{family_base}{labels}"), part));
            }
        }
    }
    None
}

/// Split `{a="b",le="128"}` into (`{a="b"}` or ``, `128`). The exporter
/// always appends `le` last.
fn split_le_label(labels: &str) -> Option<(String, String)> {
    let inner = labels.strip_prefix('{')?.strip_suffix('}')?;
    let (rest, le_part) = match inner.rfind(",le=\"") {
        Some(i) => (&inner[..i], &inner[i + 5..]),
        None => ("", inner.strip_prefix("le=\"")?),
    };
    let le = le_part.strip_suffix('"')?;
    let labels = if rest.is_empty() { String::new() } else { format!("{{{rest}}}") };
    Some((labels, le.to_string()))
}

/// `name{a="b"}` + `_sum` -> `name_sum{a="b"}`.
fn with_suffix(series: &str, suffix: &str) -> String {
    match series.find('{') {
        Some(i) => format!("{}{suffix}{}", &series[..i], &series[i..]),
        None => format!("{series}{suffix}"),
    }
}

/// `name{a="b"}` + `_bucket` + bound -> `name_bucket{a="b",le="bound"}`.
fn with_suffix_label(series: &str, suffix: &str, le: &u64) -> String {
    let named = with_suffix(series, suffix);
    match named.rfind('}') {
        Some(i) => format!("{},le=\"{le}\"}}", &named[..i]),
        None => format!("{named}{{le=\"{le}\"}}"),
    }
}

fn with_inf_label(series: &str) -> String {
    let named = with_suffix(series, "_bucket");
    match named.rfind('}') {
        Some(i) => format!("{},le=\"+Inf\"}}", &named[..i]),
        None => format!("{named}{{le=\"+Inf\"}}"),
    }
}

/// Render an f64 so that parsing recovers the exact bit pattern (`{:?}` is
/// Rust's shortest round-trip representation).
fn json_f64(v: f64) -> String {
    format!("{v:?}")
}

fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors from the snapshot parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
}

impl ParseError {
    fn new(message: &str) -> Self {
        ParseError { message: message.to_string() }
    }

    fn at(line: usize, message: &str) -> Self {
        ParseError { message: format!("line {line}: {message}") }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

// --- minimal JSON value model (the subset to_json emits) --------------------

#[derive(Debug)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
}

fn obj_get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, ParseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError::new(&format!("missing key {key}")))
}

impl Json {
    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], ParseError> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(ParseError::new(&format!("{what}: expected object"))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], ParseError> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(ParseError::new(&format!("{what}: expected array"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, ParseError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(ParseError::new(&format!("{what}: expected string"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
        match self {
            Json::U64(v) => Ok(*v),
            _ => Err(ParseError::new(&format!("{what}: expected unsigned integer"))),
        }
    }

    fn as_i64(&self, what: &str) -> Result<i64, ParseError> {
        match self {
            Json::I64(v) => Ok(*v),
            Json::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            _ => Err(ParseError::new(&format!("{what}: expected integer"))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, ParseError> {
        match self {
            Json::F64(v) => Ok(*v),
            Json::U64(v) => Ok(*v as f64),
            Json::I64(v) => Ok(*v as f64),
            _ => Err(ParseError::new(&format!("{what}: expected number"))),
        }
    }

    fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::new("trailing data after JSON value"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::new(&format!(
            "expected '{}' at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                obj.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(obj));
                    }
                    _ => return Err(ParseError::new("expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(ParseError::new("expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(_) => parse_number(b, pos),
        None => Err(ParseError::new("unexpected end of input")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError::new("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| ParseError::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| ParseError::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| ParseError::new("bad \\u codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(ParseError::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| ParseError::new("invalid utf-8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    // Accept the non-finite tokens json_f64 can emit.
    for token in ["NaN", "inf", "-inf"] {
        if b[*pos..].starts_with(token.as_bytes()) {
            *pos += token.len();
            return Ok(Json::F64(parse_f64(token).expect("known token")));
        }
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if s.is_empty() {
        return Err(ParseError::new("expected number"));
    }
    if s.contains(['.', 'e', 'E']) {
        s.parse().map(Json::F64).map_err(|_| ParseError::new("bad float"))
    } else if s.starts_with('-') {
        s.parse().map(Json::I64).map_err(|_| ParseError::new("bad integer"))
    } else {
        s.parse().map(Json::U64).map_err(|_| ParseError::new("bad integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    /// A snapshot exercising every series kind, labels, and field types.
    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::with_journal_capacity(8);
        let m = reg.handle();
        let pool = m.with_label("pool", "scvol");
        pool.add("zpool_ingest_bytes_total", 1 << 20);
        pool.add("zpool_ddt_hits_total", 7);
        m.add_with("squirrel_boot_total", &[("node", "0"), ("result", "warm")], 3);
        m.set_gauge("squirrel_scvol_ddt_entries", 42);
        m.set_gauge_f64("squirrel_arc_hit_rate", 0.625);
        let h = pool.histogram("zpool_compressed_block_bytes");
        for v in [0u64, 3, 900, 900, 70000] {
            h.observe(v);
        }
        m.event(
            "register",
            &[
                ("image", FieldValue::U64(0)),
                ("tag", FieldValue::Str("vmi-000000-r1".into())),
                ("seconds", FieldValue::F64(21.5)),
                ("delta", FieldValue::I64(-3)),
            ],
        );
        m.event("boot", &[("warm", FieldValue::U64(1))]);
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_round_trip_preserves_series() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        let back = MetricsSnapshot::from_prometheus(&text).expect("parse");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert!(back.events.is_empty(), "journal has no Prometheus form");
    }

    #[test]
    fn prometheus_text_shape() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE zpool_ingest_bytes_total counter"));
        assert!(text.contains("zpool_ingest_bytes_total{pool=\"scvol\"} 1048576"));
        assert!(text.contains("squirrel_arc_hit_rate 0.625"));
        assert!(text
            .contains("zpool_compressed_block_bytes_bucket{pool=\"scvol\",le=\"+Inf\"} 5"));
        assert!(text.contains("zpool_compressed_block_bytes_sum{pool=\"scvol\"} 71803"));
        // Buckets are cumulative.
        assert!(text
            .contains("zpool_compressed_block_bytes_bucket{pool=\"scvol\",le=\"1023\"} 4"));
    }

    #[test]
    fn accessors_sum_across_label_sets() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        m.add_with("boot_total", &[("node", "0")], 2);
        m.add_with("boot_total", &[("node", "1")], 3);
        m.add("boot_totals", 100); // different base: must not match
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("boot_total"), 5);
        assert_eq!(snap.counter_series("boot_total").count(), 2);
        assert_eq!(snap.counter("boot_total{node=\"1\"}"), Some(3));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("weird{label=\"a\\b\"}".to_string(), 1));
        snap.events.push(Event {
            seq: 0,
            name: "quote\"newline\n".to_string(),
            fields: vec![("k".into(), FieldValue::Str("\ttab".into()))],
        });
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(MetricsSnapshot::from_json("{").is_err());
        assert!(MetricsSnapshot::from_json("not json").is_err());
        let err = MetricsSnapshot::from_prometheus("lone_sample 5").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).expect("json"), snap);
        assert_eq!(
            MetricsSnapshot::from_prometheus(&snap.to_prometheus()).expect("prom"),
            snap
        );
    }
}
