//! `squirrel-experiments`: regenerate every table and figure of the paper.
//!
//! ```text
//! squirrel-experiments <command> [--images N] [--scale S] [--seed S]
//!                                [--out DIR] [--threads T]
//!
//! commands:
//!   table1 table2 fig2 fig3 fig4 fig8 fig9 fig10 fig11 fig12 fig13
//!   fig14 fig15 fig16 fig17 fig18 ablation-sync ablation-ccr ablation-hoard\n\u{20}         ablation-chunking whatif-windows bootstorm ingest chunking chaos topology budget distribution fleet all smoke
//! ```
//!
//! Defaults (96 images at 1/512 volume) finish in minutes in release
//! mode; pass `--images 607 --scale 512` for a fuller run. Every byte
//! quantity is printed both as measured and as the paper-volume projection.

use squirrel_bench::experiments::{
    ablations, boottime, bootstorm, budget, chaosbench, chunking, distribution, extrapolate,
    fleet, ingest, network, storage, sweeps, topology, whatif,
};
use squirrel_bench::ExperimentConfig;

fn usage() -> ! {
    eprintln!(
        "usage: squirrel-experiments <command> [--images N] [--scale S] [--seed S] [--out DIR] [--threads T]\n\
         commands: table1 table2 fig2 fig3 fig4 fig8 fig9 fig10 fig11 fig12 fig13\n\
         \u{20}         fig14 fig15 fig16 fig17 fig18 ablation-sync ablation-ccr ablation-hoard\n\u{20}         ablation-chunking whatif-windows bootstorm ingest chunking chaos topology budget distribution fleet all smoke"
    );
    std::process::exit(2);
}

fn parse_config(args: &[String]) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1).map(|s| s.as_str()).unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--images" => cfg.images = value(i).parse().unwrap_or_else(|_| usage()),
            "--scale" => cfg.scale = value(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value(i).parse().unwrap_or_else(|_| usage()),
            "--out" => cfg.out_dir = Some(value(i).to_string()),
            "--threads" => cfg.threads = value(i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let cfg = parse_config(&args[1..]);
    eprintln!(
        "# corpus: {} images, scale 1/{}, seed {} (projection x{:.0})",
        cfg.images,
        cfg.scale,
        cfg.seed,
        cfg.projection()
    );

    let disk_bs = [16 * 1024usize, 32 * 1024, 64 * 1024, 128 * 1024];
    match cmd.as_str() {
        "table1" => {
            sweeps::run_table1(&cfg);
        }
        "table2" => {
            sweeps::run_table2(&cfg);
        }
        "fig2" => {
            sweeps::run_fig2(&cfg);
        }
        "fig3" => {
            sweeps::run_fig3(&cfg);
        }
        "fig4" => {
            sweeps::run_fig4(&cfg);
        }
        "fig8" | "fig9" | "fig10" => {
            storage::run_fig8_9_10(&cfg);
        }
        "fig11" => {
            boottime::run_fig11(&cfg);
        }
        "fig12" => {
            sweeps::run_fig12(&cfg);
        }
        "fig13" => {
            storage::run_fig13(&cfg);
        }
        "fig14" | "fig15" => {
            extrapolate::run_extrapolation(&cfg, extrapolate::Resource::DiskBytes, &disk_bs, 3000);
        }
        "fig16" | "fig17" => {
            extrapolate::run_extrapolation(
                &cfg,
                extrapolate::Resource::MemoryBytes,
                &disk_bs,
                3000,
            );
        }
        "fig18" => {
            network::run_fig18(&cfg);
        }
        "ablation-sync" => {
            ablations::run_ablation_sync(&cfg);
        }
        "ablation-ccr" => {
            ablations::run_ablation_ccr(&cfg, 64 * 1024);
        }
        "ablation-hoard" => {
            ablations::run_ablation_hoard(&cfg);
        }
        "whatif-windows" => {
            whatif::run_whatif_windows(&cfg);
        }
        "ablation-chunking" => {
            ablations::run_ablation_chunking(&cfg);
        }
        "bootstorm" => {
            bootstorm::run_bootstorm(&cfg, bootstorm::STORM_VMS, 3);
        }
        "ingest" => {
            ingest::run_ingest(&cfg, ingest::INGEST_BLOCKS, 3);
        }
        "chunking" => {
            chunking::run_chunking(
                &cfg,
                chunking::CHUNKING_BLOCKS,
                chunking::CHUNKING_BLOCK_SIZE,
                chunking::CHUNKING_VERSIONS,
            );
        }
        "chaos" => {
            chaosbench::run_chaos(&cfg);
        }
        "topology" => {
            topology::run_topology(&cfg);
        }
        "budget" => {
            budget::run_budget(&cfg);
        }
        "distribution" => {
            distribution::run_distribution(&cfg, &distribution::DIST_NODE_COUNTS);
        }
        "fleet" => {
            fleet::run_fleet_bench(&cfg, &fleet::FLEET_NODE_COUNTS);
        }
        "all" => {
            ingest::run_ingest(&cfg, ingest::INGEST_BLOCKS, 3);
            chunking::run_chunking(
                &cfg,
                chunking::CHUNKING_BLOCKS,
                chunking::CHUNKING_BLOCK_SIZE,
                chunking::CHUNKING_VERSIONS,
            );
            bootstorm::run_bootstorm(&cfg, bootstorm::STORM_VMS, 3);
            chaosbench::run_chaos(&cfg);
            topology::run_topology(&cfg);
            budget::run_budget(&cfg);
            distribution::run_distribution(&cfg, &distribution::DIST_NODE_COUNTS);
            fleet::run_fleet_bench(&cfg, &fleet::FLEET_NODE_COUNTS);
            sweeps::run_table2(&cfg);
            sweeps::run_table1(&cfg);
            sweeps::run_fig2(&cfg);
            sweeps::run_fig3(&cfg);
            sweeps::run_fig4(&cfg);
            storage::run_fig8_9_10(&cfg);
            boottime::run_fig11(&cfg);
            sweeps::run_fig12(&cfg);
            storage::run_fig13(&cfg);
            extrapolate::run_extrapolation(&cfg, extrapolate::Resource::DiskBytes, &disk_bs, 3000);
            extrapolate::run_extrapolation(
                &cfg,
                extrapolate::Resource::MemoryBytes,
                &disk_bs,
                3000,
            );
            network::run_fig18(&cfg);
            ablations::run_ablation_sync(&cfg);
            ablations::run_ablation_ccr(&cfg, 64 * 1024);
            ablations::run_ablation_hoard(&cfg);
            ablations::run_ablation_chunking(&cfg);
            whatif::run_whatif_windows(&cfg);
        }
        "smoke" => {
            // A fast end-to-end pass with a tiny corpus for CI-style checks.
            let cfg =
                ExperimentConfig { out_dir: cfg.out_dir.clone(), ..ExperimentConfig::smoke() };
            sweeps::run_table2(&cfg);
            sweeps::run_table1(&cfg);
            storage::run_fig13(&cfg);
            network::run_fig18(&cfg);
        }
        _ => usage(),
    }
}
