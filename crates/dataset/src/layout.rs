//! Per-image content layout: a run-length list of atom ranges.
//!
//! An image's nonzero address space is a concatenation of *runs*, each
//! referencing a contiguous range of atoms inside one [`AtomGroup`]. Three
//! regions are laid out, matching where real VMI content comes from:
//!
//! 1. **Boot working set** — the release's base atom sequence at fixed
//!    offsets (boot layouts don't shift), interrupted by *mutated segments*:
//!    contiguous runs of image-unique atoms modelling user tweaks to initrd,
//!    kernel updates, host configs. Contiguity is what lets small blocks
//!    dodge mutations while large blocks absorb them (Figure 2's dedup
//!    trend, Figure 12's cache cross-similarity).
//! 2. **System libraries** — the family's library pool in canonical order,
//!    but each image drops some libraries and inserts private ones, shifting
//!    everything after the edit point by a multiple of the atom size: shared
//!    content at *different offsets*, the alignment mechanism.
//! 3. **User software** — packages drawn Zipf-popular from a global pool,
//!    interleaved with image-unique data. Package boundaries land at
//!    image-specific offsets, so cross-image sharing is misaligned and only
//!    small blocks recover it.

use crate::atoms::{AtomGroup, ATOM_SIZE};
use crate::census::OsFamily;
use crate::rng::{SplitMix64, Zipf};

/// One run of contiguous atoms from a single group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    pub group: AtomGroup,
    /// First atom index within the group.
    pub start: u64,
    /// Number of atoms.
    pub len: u32,
}

/// A fully laid-out image: runs plus the prefix sums locating them.
#[derive(Clone, Debug)]
pub struct Layout {
    pub runs: Vec<Run>,
    /// `starts[i]` = first atom offset (within the image) of `runs[i]`;
    /// one extra entry holds the total atom count.
    pub starts: Vec<u64>,
    /// Atom count of the boot working set (the VMI cache covers exactly it).
    pub boot_atoms: u64,
}

/// Knobs for layout construction (defaults reproduce the paper's shapes).
#[derive(Clone, Copy, Debug)]
pub struct LayoutParams {
    /// Mutated-segment probability per boot segment.
    pub boot_mutation_rate: f64,
    /// Boot mutation segment length, in atoms (contiguous).
    pub boot_segment_atoms: u64,
    /// Size of the per-release pool of shared boot variants; mutated
    /// segments draw from it Zipf-style, so the pool gets exhausted as the
    /// catalog grows and late images add little new content.
    pub boot_variant_pool: u32,
    /// Probability that a mutated segment is image-private rather than a
    /// shared variant.
    pub boot_private_mutation: f64,
    /// Probability that a canonical library is dropped by this image.
    pub lib_drop_rate: f64,
    /// Probability of inserting a private blob between libraries.
    pub lib_insert_rate: f64,
    /// Fraction of the user region that is shared packages (vs unique data).
    pub pkg_fraction: f64,
    /// Global package pool size.
    pub pkg_pool: u64,
    /// Zipf exponent for package popularity.
    pub pkg_zipf_s: f64,
}

impl Default for LayoutParams {
    fn default() -> Self {
        LayoutParams {
            boot_mutation_rate: 0.055,
            boot_segment_atoms: 96, // 48 KiB segments
            boot_variant_pool: 48,
            boot_private_mutation: 0.2,
            lib_drop_rate: 0.05,
            lib_insert_rate: 0.05,
            pkg_fraction: 0.45,
            pkg_pool: 60_000,
            pkg_zipf_s: 1.08,
        }
    }
}

/// Geometry of one image, in atoms.
#[derive(Clone, Copy, Debug)]
pub struct Geometry {
    pub boot_atoms: u64,
    pub system_atoms: u64,
    pub user_atoms: u64,
    /// Virtual (sparse) size in atoms, >= the sum of the regions.
    pub virtual_atoms: u64,
}

impl Geometry {
    pub fn nonzero_atoms(&self) -> u64 {
        self.boot_atoms + self.system_atoms + self.user_atoms
    }
}

/// Build the layout of image `image_id` (family, release) deterministically.
pub fn build_layout(
    params: &LayoutParams,
    corpus_seed: u64,
    image_id: u32,
    family: OsFamily,
    release: u32,
    geom: Geometry,
) -> Layout {
    let mut runs: Vec<Run> = Vec::with_capacity(256);
    let mut unique_stream = 0u32;
    let mut next_unique = |runs: &mut Vec<Run>, len: u64| {
        let stream = unique_stream;
        unique_stream += 1;
        runs.push(Run {
            group: AtomGroup::Unique { image: image_id, stream },
            start: 0,
            len: len as u32,
        });
    };

    // --- Region 1: boot working set ---------------------------------------
    let mut rng = SplitMix64::from_parts(&[corpus_seed, 0x100, image_id as u64]);
    let base = AtomGroup::Base { family, release };
    let seg = params.boot_segment_atoms;
    let mut off = 0u64;
    while off < geom.boot_atoms {
        let len = seg.min(geom.boot_atoms - off);
        if rng.chance(params.boot_mutation_rate) {
            if rng.chance(params.boot_private_mutation) {
                next_unique(&mut runs, len);
            } else {
                // A popular shared modification: aligned with the base
                // layout so it deduplicates across the images carrying it.
                let u = rng.unit_f64();
                let variant =
                    ((u * u * params.boot_variant_pool as f64) as u32).min(params.boot_variant_pool - 1);
                push_or_extend(
                    &mut runs,
                    Run {
                        group: AtomGroup::Variant { family, release, variant },
                        start: off,
                        len: len as u32,
                    },
                );
            }
        } else {
            push_or_extend(&mut runs, Run { group: base, start: off, len: len as u32 });
        }
        off += len;
    }
    let boot_atoms = geom.boot_atoms;

    // --- Region 2: system libraries ---------------------------------------
    // Canonical library sequence: chunks of the family Lib pool in order.
    // Drops remove a chunk (shifting later content back); inserts add a
    // private chunk (shifting later content forward).
    let mut rng = SplitMix64::from_parts(&[corpus_seed, 0x200, image_id as u64]);
    let lib = AtomGroup::Lib { family };
    let lib_chunk = 64u64; // 32 KiB canonical library unit
    let mut emitted = 0u64;
    let mut canon = 0u64; // canonical library cursor (atoms)
    while emitted < geom.system_atoms {
        let len = lib_chunk.min(geom.system_atoms - emitted);
        if rng.chance(params.lib_insert_rate) {
            next_unique(&mut runs, len);
            emitted += len;
            continue; // canonical cursor unmoved: subsequent libs shift
        }
        if rng.chance(params.lib_drop_rate) {
            canon += len; // dropped: skip canonical content, no emission
            continue;
        }
        push_or_extend(&mut runs, Run { group: lib, start: canon, len: len as u32 });
        canon += len;
        emitted += len;
    }

    // --- Region 3: user software -------------------------------------------
    let mut rng = SplitMix64::from_parts(&[corpus_seed, 0x300, image_id as u64]);
    let zipf = Zipf::new(params.pkg_pool, params.pkg_zipf_s);
    let mut emitted = 0u64;
    while emitted < geom.user_atoms {
        if rng.chance(params.pkg_fraction) {
            // A shared package: its atoms live at a pool-global position so
            // every image carrying it sees identical content.
            let pkg = zipf.sample(&mut rng);
            let mut prng = SplitMix64::from_parts(&[corpus_seed, 0x919, pkg]);
            let pkg_len = prng.range(24, 384); // 12–192 KiB packages
            let len = pkg_len.min(geom.user_atoms - emitted);
            runs.push(Run { group: AtomGroup::Pkg, start: pkg * 4096, len: len as u32 });
            emitted += len;
        } else {
            let len = rng.range(16, 256).min(geom.user_atoms - emitted);
            next_unique(&mut runs, len);
            emitted += len;
        }
    }

    let mut starts = Vec::with_capacity(runs.len() + 1);
    let mut acc = 0u64;
    for r in &runs {
        starts.push(acc);
        acc += r.len as u64;
    }
    starts.push(acc);
    debug_assert_eq!(acc, geom.nonzero_atoms());

    Layout { runs, starts, boot_atoms }
}

/// Merge adjacent runs from the same group when contiguous (keeps run lists
/// short for the common unmutated stretches).
fn push_or_extend(runs: &mut Vec<Run>, run: Run) {
    if let Some(last) = runs.last_mut() {
        if last.group == run.group
            && last.start + last.len as u64 == run.start
            && last.len as u64 + run.len as u64 <= u32::MAX as u64
        {
            last.len += run.len;
            return;
        }
    }
    runs.push(run);
}

impl Layout {
    /// Total nonzero atoms.
    pub fn nonzero_atoms(&self) -> u64 {
        *self.starts.last().expect("nonempty starts")
    }

    /// Nonzero bytes.
    pub fn nonzero_bytes(&self) -> u64 {
        self.nonzero_atoms() * ATOM_SIZE as u64
    }

    /// Locate the run covering `atom_off`; returns (run index, offset within
    /// the run).
    #[inline]
    pub fn locate(&self, atom_off: u64) -> (usize, u64) {
        debug_assert!(atom_off < self.nonzero_atoms());
        let i = match self.starts.binary_search(&atom_off) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (i, atom_off - self.starts[i])
    }

    /// Iterate `(group, group_atom_idx)` for `count` atoms starting at
    /// `atom_off`, clamped to the nonzero area.
    pub fn atoms_at(&self, atom_off: u64, count: u64) -> AtomIter<'_> {
        AtomIter { layout: self, pos: atom_off, end: (atom_off + count).min(self.nonzero_atoms()) }
    }
}

/// Iterator over atom identities of an address range.
pub struct AtomIter<'a> {
    layout: &'a Layout,
    pos: u64,
    end: u64,
}

impl Iterator for AtomIter<'_> {
    type Item = (AtomGroup, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let (ri, within) = self.layout.locate(self.pos);
        let run = &self.layout.runs[ri];
        self.pos += 1;
        Some((run.group, run.start + within))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry { boot_atoms: 512, system_atoms: 1024, user_atoms: 2048, virtual_atoms: 40_960 }
    }

    fn layout(image: u32) -> Layout {
        build_layout(&LayoutParams::default(), 42, image, OsFamily::Ubuntu, 2, geom())
    }

    #[test]
    fn layout_covers_geometry_exactly() {
        let l = layout(1);
        assert_eq!(l.nonzero_atoms(), geom().nonzero_atoms());
        assert_eq!(l.boot_atoms, 512);
    }

    #[test]
    fn locate_is_consistent_with_starts() {
        let l = layout(2);
        for off in [0u64, 1, 511, 512, 1000, 3583] {
            let (ri, within) = l.locate(off);
            assert_eq!(l.starts[ri] + within, off);
            assert!(within < l.runs[ri].len as u64);
        }
    }

    #[test]
    fn same_release_images_share_most_boot_atoms() {
        let a = layout(10);
        let b = layout(11);
        let atoms_a: Vec<_> = a.atoms_at(0, 512).collect();
        let atoms_b: Vec<_> = b.atoms_at(0, 512).collect();
        let same = atoms_a.iter().zip(&atoms_b).filter(|(x, y)| x == y).count();
        assert!(same > 350, "shared boot atoms {same}/512");
        assert!(same < 512, "mutations must exist");
    }

    #[test]
    fn user_regions_differ_between_images() {
        let a = layout(10);
        let b = layout(11);
        let ua: Vec<_> = a.atoms_at(1536, 512).collect();
        let ub: Vec<_> = b.atoms_at(1536, 512).collect();
        let same = ua.iter().zip(&ub).filter(|(x, y)| x == y).count();
        assert!(same < 256, "user regions too similar: {same}");
    }

    #[test]
    fn atom_iter_stops_at_nonzero_end() {
        let l = layout(3);
        let n = l.atoms_at(l.nonzero_atoms() - 5, 100).count();
        assert_eq!(n, 5);
    }

    #[test]
    fn deterministic_layouts() {
        let a = layout(7);
        let b = layout(7);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn packages_shared_across_images() {
        // Two images should both carry at least one popular package (group
        // Pkg with identical start), thanks to the Zipf head.
        let heads = |l: &Layout| {
            l.runs
                .iter()
                .filter(|r| matches!(r.group, AtomGroup::Pkg))
                .map(|r| r.start)
                .collect::<std::collections::HashSet<_>>()
        };
        let mut shared = 0;
        for other in 20..40u32 {
            let h1 = heads(&layout(19));
            let h2 = heads(&layout(other));
            if h1.intersection(&h2).next().is_some() {
                shared += 1;
            }
        }
        assert!(shared > 5, "images sharing a package: {shared}/20");
    }
}
