//! Content-statistics sweeps: Table 1, Table 2, Figures 2, 3, 4, 12.

use crate::config::{ExperimentConfig, FULL_BS_SWEEP};
use crate::csvout::{fmt_f, gib, Table};
use squirrel_compress::Codec;
use squirrel_dataset::analysis::{sweep, CompressionSampling, ContentSet, SweepStats};
use squirrel_dataset::{azure_census, ec2_census, Corpus};

/// One (block size) point of the Figure 2/4 family.
#[derive(Clone, Debug)]
pub struct RatioPoint {
    pub block_size: usize,
    pub images: SweepStats,
    pub caches: SweepStats,
}

/// Figure 2 (dedup + gzip-6 ratios) and Figure 4 (CCR) share one sweep.
pub fn fig2_fig4(cfg: &ExperimentConfig, block_sizes: &[usize]) -> Vec<RatioPoint> {
    let corpus = cfg.corpus();
    block_sizes
        .iter()
        .map(|&bs| RatioPoint {
            block_size: bs,
            images: sweep(
                &corpus,
                ContentSet::Images,
                bs,
                Codec::Gzip(6),
                CompressionSampling::default(),
                cfg.threads,
            ),
            caches: sweep(
                &corpus,
                ContentSet::Caches,
                bs,
                Codec::Gzip(6),
                CompressionSampling::default(),
                cfg.threads,
            ),
        })
        .collect()
}

/// Render + persist Figure 2.
pub fn run_fig2(cfg: &ExperimentConfig) -> Vec<RatioPoint> {
    let pts = fig2_fig4(cfg, &FULL_BS_SWEEP);
    let mut t = Table::new(&[
        "block_kb",
        "caches_dedup",
        "images_dedup",
        "caches_gzip6",
        "images_gzip6",
    ]);
    for p in &pts {
        t.push(vec![
            (p.block_size / 1024).to_string(),
            fmt_f(p.caches.dedup_ratio()),
            fmt_f(p.images.dedup_ratio()),
            fmt_f(p.caches.compression_ratio()),
            fmt_f(p.images.compression_ratio()),
        ]);
    }
    t.print("Figure 2: compression ratio of VMIs and caches (dedup, gzip-6)");
    t.write(&cfg.out_dir, "fig2").expect("csv");
    pts
}

/// Render + persist Figure 4 (reuses the Figure 2 sweep).
pub fn run_fig4(cfg: &ExperimentConfig) -> Vec<RatioPoint> {
    let pts = fig2_fig4(cfg, &FULL_BS_SWEEP);
    let mut t = Table::new(&["block_kb", "caches_ccr", "images_ccr"]);
    for p in &pts {
        t.push(vec![
            (p.block_size / 1024).to_string(),
            fmt_f(p.caches.ccr()),
            fmt_f(p.images.ccr()),
        ]);
    }
    t.print("Figure 4: combined compression ratio (dedup x gzip-6)");
    t.write(&cfg.out_dir, "fig4").expect("csv");
    pts
}

/// Figure 3: cache compression ratio per codec over block sizes.
pub fn run_fig3(cfg: &ExperimentConfig) -> Vec<(usize, Vec<(String, f64)>)> {
    let corpus = cfg.corpus();
    let codecs = [Codec::Gzip(6), Codec::Gzip(9), Codec::Lzjb, Codec::Lz4];
    let mut out = Vec::new();
    let mut t = Table::new(&["block_kb", "dedup", "gzip-6", "gzip-9", "lzjb", "lz4"]);
    for &bs in &FULL_BS_SWEEP {
        let mut row = vec![(bs / 1024).to_string()];
        let mut entries = Vec::new();
        // Dedup ratio is codec-independent; measure once.
        let base = sweep(
            &corpus,
            ContentSet::Caches,
            bs,
            Codec::Off,
            CompressionSampling { max_blocks: 0 },
            cfg.threads,
        );
        row.push(fmt_f(base.dedup_ratio()));
        entries.push(("dedup".to_string(), base.dedup_ratio()));
        for codec in codecs {
            let s = sweep(
                &corpus,
                ContentSet::Caches,
                bs,
                codec,
                CompressionSampling::default(),
                cfg.threads,
            );
            row.push(fmt_f(s.compression_ratio()));
            entries.push((codec.name(), s.compression_ratio()));
        }
        t.push(row);
        out.push((bs, entries));
    }
    t.print("Figure 3: compression ratio of VMI caches per routine");
    t.write(&cfg.out_dir, "fig3").expect("csv");
    out
}

/// Figure 12: cross-similarity of images and caches.
pub fn run_fig12(cfg: &ExperimentConfig) -> Vec<(usize, f64, f64)> {
    let corpus = cfg.corpus();
    let mut t = Table::new(&["block_kb", "caches_similarity", "images_similarity"]);
    let mut out = Vec::new();
    for &bs in &FULL_BS_SWEEP {
        let sample = CompressionSampling { max_blocks: 0 };
        let imgs = sweep(&corpus, ContentSet::Images, bs, Codec::Off, sample, cfg.threads);
        let caches = sweep(&corpus, ContentSet::Caches, bs, Codec::Off, sample, cfg.threads);
        t.push(vec![
            (bs / 1024).to_string(),
            fmt_f(caches.cross_similarity()),
            fmt_f(imgs.cross_similarity()),
        ]);
        out.push((bs, caches.cross_similarity(), imgs.cross_similarity()));
    }
    t.print("Figure 12: cross-similarity of VMIs and caches");
    t.write(&cfg.out_dir, "fig12").expect("csv");
    out
}

/// Table 1 outputs (all byte values at measured scale).
#[derive(Clone, Debug)]
pub struct Table1 {
    pub original_bytes: u64,
    pub nonzero_bytes: u64,
    pub cache_nonzero_bytes: u64,
    pub cache_ccr_bytes: u64,
}

/// Table 1: storage efficiency at 128 KiB.
pub fn run_table1(cfg: &ExperimentConfig) -> Table1 {
    let corpus = cfg.corpus();
    let bs = 128 * 1024;
    let imgs = sweep(
        &corpus,
        ContentSet::Images,
        bs,
        Codec::Gzip(6),
        CompressionSampling::default(),
        cfg.threads,
    );
    let caches = sweep(
        &corpus,
        ContentSet::Caches,
        bs,
        Codec::Gzip(6),
        CompressionSampling::default(),
        cfg.threads,
    );
    let original: u64 = corpus.iter().map(|i| i.virtual_bytes()).sum();
    let result = Table1 {
        original_bytes: original,
        nonzero_bytes: imgs.nonzero_bytes(),
        cache_nonzero_bytes: caches.nonzero_bytes(),
        cache_ccr_bytes: caches.deduped_compressed_bytes(),
    };
    let proj = cfg.projection();
    let mut t = Table::new(&["quantity", "measured_gib", "paper_projection_gib", "paper_reports"]);
    let rows: [(&str, u64, &str); 4] = [
        ("Original", result.original_bytes, "16.4 TB"),
        ("Nonzero", result.nonzero_bytes, "1.4 TB"),
        ("Caches (nonzero)", result.cache_nonzero_bytes, "78.5 GB"),
        ("Caches / CCR", result.cache_ccr_bytes, "15.1 GB"),
    ];
    for (name, v, paper) in rows {
        t.push(vec![
            name.to_string(),
            gib(v as f64),
            gib(v as f64 * proj),
            paper.to_string(),
        ]);
    }
    t.print("Table 1: attained storage efficiency with 128 KiB block size");
    t.write(&cfg.out_dir, "table1").expect("csv");
    result
}

/// Table 2: the OS census (static data reproduced verbatim).
pub fn run_table2(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new(&["os_distribution", "windows_azure", "amazon_ec2"]);
    for (a, e) in azure_census().iter().zip(ec2_census()) {
        assert_eq!(a.family, e.family);
        t.push(vec![
            a.family.label().to_string(),
            a.count.to_string(),
            e.count.to_string(),
        ]);
    }
    let azure_total: u32 = azure_census().iter().map(|c| c.count).sum();
    let ec2_total: u32 = ec2_census().iter().map(|c| c.count).sum();
    t.push(vec!["Total".to_string(), azure_total.to_string(), ec2_total.to_string()]);
    t.print("Table 2: OS diversity in Windows Azure and Amazon EC2");
    t.write(&cfg.out_dir, "table2").expect("csv");
    t
}

/// Shared helper for tests: run one caches sweep.
pub fn caches_sweep(corpus: &Corpus, bs: usize, threads: usize) -> SweepStats {
    sweep(
        corpus,
        ContentSet::Caches,
        bs,
        Codec::Gzip(6),
        CompressionSampling::default(),
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::smoke()
    }

    #[test]
    fn fig2_trends_hold_on_smoke_corpus() {
        let pts = fig2_fig4(&cfg(), &[2048, 65536]);
        let (small, large) = (&pts[0], &pts[1]);
        assert!(small.caches.dedup_ratio() >= large.caches.dedup_ratio());
        assert!(large.caches.compression_ratio() > small.caches.compression_ratio());
    }

    #[test]
    fn table1_ordering() {
        let t1 = run_table1(&cfg());
        assert!(t1.original_bytes > t1.nonzero_bytes);
        assert!(t1.nonzero_bytes > t1.cache_nonzero_bytes);
        assert!(t1.cache_nonzero_bytes > t1.cache_ccr_bytes);
    }

    #[test]
    fn table2_totals() {
        let t = run_table2(&cfg());
        assert_eq!(t.rows.last().expect("total row")[1], "607");
    }

    #[test]
    fn fig12_caches_beat_images() {
        let corpus = cfg().corpus();
        let s = CompressionSampling { max_blocks: 0 };
        let imgs = sweep(&corpus, ContentSet::Images, 8192, Codec::Off, s, 0);
        let caches = sweep(&corpus, ContentSet::Caches, 8192, Codec::Off, s, 0);
        assert!(caches.cross_similarity() > imgs.cross_similarity());
    }
}
