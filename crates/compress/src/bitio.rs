//! Minimal LSB-first bit readers/writers shared by the Huffman stage.

/// Appends bits LSB-first into a byte vector.
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed (low bits valid).
    acc: u64,
    /// Number of valid bits in `acc`.
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BitWriter { out: Vec::with_capacity(cap), acc: 0, nbits: 0 }
    }

    /// Write the low `n` bits of `bits` (n <= 57 so the accumulator never
    /// overflows before flushing).
    #[inline]
    pub fn write(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57);
        debug_assert!(n == 64 || bits < (1u64 << n));
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flush the final partial byte (zero-padded) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads bits LSB-first from a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    /// Read `n` bits (n <= 57). Reading past the end yields zero bits, which
    /// is fine because well-formed streams never do it.
    #[inline]
    pub fn read(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        while self.nbits < n {
            let byte = self.data.get(self.pos).copied().unwrap_or(0);
            self.pos += 1;
            self.acc |= (byte as u64) << self.nbits;
            self.nbits += 8;
        }
        let val = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        val
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> u64 {
        self.read(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let fields: Vec<(u64, u32)> = vec![
            (1, 1),
            (0, 1),
            (0b101, 3),
            (0xff, 8),
            (0x1234, 16),
            (0x1f_ffff, 21),
            (1, 1),
            (0x0000_dead_beef, 36),
        ];
        for &(v, n) in &fields {
            w.write(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read(n), v, "width {n}");
        }
    }

    #[test]
    fn empty_writer_produces_empty_buffer() {
        assert!(BitWriter::new().finish().is_empty());
    }

    #[test]
    fn partial_byte_is_flushed() {
        let mut w = BitWriter::new();
        w.write(0b1, 1);
        let b = w.finish();
        assert_eq!(b, vec![1]);
    }

    #[test]
    fn reader_past_end_yields_zeros() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read(8), 0xff);
        assert_eq!(r.read(8), 0);
    }

    #[test]
    fn bit_order_is_lsb_first() {
        let mut w = BitWriter::new();
        w.write(0b1, 1); // bit 0
        w.write(0b0, 1); // bit 1
        w.write(0b1, 1); // bit 2
        assert_eq!(w.finish(), vec![0b101]);
    }
}
