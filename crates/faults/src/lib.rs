//! Deterministic, seeded fault injection for the Squirrel reproduction.
//!
//! The paper's central robustness claim is that a compute node can lose its
//! cache, crash mid-replication, or fall off the network and the cluster
//! still boots VMs. This crate supplies the *adversary* for exercising that
//! claim: a [`FaultPlan`] — a seeded schedule of network faults (dropped,
//! duplicated, transiently failing transfers, per-link partitions), storage
//! faults (bit-flips in encoded send streams, ccVolume block corruption,
//! crashes mid-`recv`), and node churn (offline/rejoin/flap sequences).
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Every decision comes from one SplitMix64 stream
//!    seeded at construction; the same seed yields the same fault schedule,
//!    so a chaos soak is bit-reproducible and thread-count independent as
//!    long as the plan is only consulted from serial orchestration code.
//! 2. **Std-only, leaf crate.** No dependencies; node ids are plain `u32`
//!    (mirroring `squirrel_cluster::NodeId`), so every layer can take a plan
//!    without dependency cycles.
//! 3. **Accountable.** Every injected fault is counted in a [`FaultReport`]
//!    the recovery layer surfaces next to its repair metrics.

/// Node identifier; mirrors `squirrel_cluster::NodeId` without the dep.
pub type NodeId = u32;

/// SplitMix64 — the same tiny full-period generator the dataset crate uses
/// for content synthesis (duplicated here to keep this crate a leaf).
#[derive(Clone, Debug)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> Self {
        FaultRng { state: seed ^ 0x5bd1_e995_9d1b_58d3 }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Per-operation fault probabilities and the recovery policy knobs.
///
/// All probabilities are per *consultation* (one transfer attempt, one recv,
/// one simulated day's churn draw), in `[0, 1]`. [`Default`] is completely
/// quiet — a plan built from it injects nothing, so wiring a plan through a
/// workflow is behavior-preserving until rates are raised.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// A transfer's payload is lost in flight (charged, then retried).
    pub drop_prob: f64,
    /// A transfer is delivered twice (the duplicate is charged too).
    pub duplicate_prob: f64,
    /// The link throws a transient error before any bytes move.
    pub transient_prob: f64,
    /// One bit of the encoded send stream flips in flight.
    pub stream_corrupt_prob: f64,
    /// The receiver crashes mid-`recv` (transactional recv rolls back).
    pub crash_recv_prob: f64,
    /// One stored ccVolume/scVolume block silently rots, per day.
    pub block_corrupt_prob: f64,
    /// A random online node fail-stops, per churn draw.
    pub offline_prob: f64,
    /// A random offline node comes back, per churn draw.
    pub rejoin_prob: f64,
    /// A node flaps: goes down and immediately rejoins, per churn draw.
    pub flap_prob: f64,
    /// A random storage↔compute link partitions, per draw.
    pub partition_prob: f64,
    /// A partitioned link heals, per draw.
    pub heal_prob: f64,
    /// A whole rack drops off the network, per domain draw.
    pub rack_down_prob: f64,
    /// A downed rack comes back, per domain draw.
    pub rack_heal_prob: f64,
    /// A whole datacenter drops off the network, per domain draw.
    pub dc_down_prob: f64,
    /// A downed datacenter comes back, per domain draw.
    pub dc_heal_prob: f64,
    /// Delivery attempts after the first before the sender gives up.
    pub max_retries: u32,
    /// First retry backoff; attempt `k` waits `base * 2^k` seconds.
    pub backoff_base_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            transient_prob: 0.0,
            stream_corrupt_prob: 0.0,
            crash_recv_prob: 0.0,
            block_corrupt_prob: 0.0,
            offline_prob: 0.0,
            rejoin_prob: 0.0,
            flap_prob: 0.0,
            partition_prob: 0.0,
            heal_prob: 0.0,
            rack_down_prob: 0.0,
            rack_heal_prob: 0.0,
            dc_down_prob: 0.0,
            dc_heal_prob: 0.0,
            max_retries: 4,
            backoff_base_secs: 0.05,
        }
    }
}

impl FaultConfig {
    /// A lively schedule for chaos soaks: every fault class enabled at
    /// rates high enough to fire many times over a simulated month, low
    /// enough that bounded retries almost always converge.
    pub fn chaos() -> Self {
        FaultConfig {
            drop_prob: 0.08,
            duplicate_prob: 0.04,
            transient_prob: 0.06,
            stream_corrupt_prob: 0.06,
            crash_recv_prob: 0.05,
            block_corrupt_prob: 0.35,
            offline_prob: 0.20,
            rejoin_prob: 0.45,
            flap_prob: 0.10,
            partition_prob: 0.15,
            heal_prob: 0.40,
            // Domain outages stay off in the flat-cluster chaos schedule;
            // see [`FaultConfig::chaos_with_domains`].
            rack_down_prob: 0.0,
            rack_heal_prob: 0.0,
            dc_down_prob: 0.0,
            dc_heal_prob: 0.0,
            max_retries: 6,
            backoff_base_secs: 0.05,
        }
    }

    /// The [`chaos`](Self::chaos) schedule plus correlated domain outages:
    /// whole racks (and, rarely, whole datacenters) drop off the network
    /// and come back. For soaks over a multi-rack cluster topology.
    pub fn chaos_with_domains() -> Self {
        FaultConfig {
            rack_down_prob: 0.12,
            rack_heal_prob: 0.50,
            dc_down_prob: 0.03,
            dc_heal_prob: 0.60,
            ..Self::chaos()
        }
    }
}

/// Outcome of consulting the plan about one transfer delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferFault {
    /// The transfer goes through normally.
    Delivered,
    /// Payload lost in flight: bytes were charged, nothing arrived.
    Drop,
    /// Payload arrives twice (receiver must deduplicate).
    Duplicate,
    /// The link errors before any bytes move.
    Transient,
}

/// One step of a node-churn script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Fail-stop: the node goes offline.
    Offline(NodeId),
    /// The node comes back and wants to catch up.
    Rejoin(NodeId),
    /// Down-and-up within one step (rejoin immediately follows offline).
    Flap(NodeId),
}

/// One step of a partition schedule: single storage↔compute links the
/// propagation path uses, or whole failure domains (racks, datacenters)
/// falling off the network together. Domain ids index the cluster
/// topology's global rack/datacenter numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionEvent {
    /// Cut the link between two nodes.
    Cut(NodeId, NodeId),
    /// Heal the link between two nodes.
    Heal(NodeId, NodeId),
    /// Every link crossing this rack's boundary goes down.
    RackDown(u32),
    /// The rack's boundary links come back.
    RackUp(u32),
    /// Every link crossing this datacenter's boundary goes down.
    DatacenterDown(u32),
    /// The datacenter's boundary links come back.
    DatacenterUp(u32),
}

/// Tally of every fault the plan injected. Returned by
/// [`FaultPlan::report`]; the recovery layer surfaces it next to its
/// `squirrel_repair_*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct FaultReport {
    pub net_drops: u64,
    pub net_duplicates: u64,
    pub net_transients: u64,
    pub stream_corruptions: u64,
    pub recv_crashes: u64,
    pub block_corruptions: u64,
    pub offlines: u64,
    pub rejoins: u64,
    pub flaps: u64,
    pub partitions: u64,
    pub heals: u64,
    pub rack_downs: u64,
    pub rack_ups: u64,
    pub dc_downs: u64,
    pub dc_ups: u64,
    /// Delivery retries the recovery layer reported back via
    /// [`FaultPlan::note_retry`].
    pub retries: u64,
    /// Deliveries abandoned after `max_retries` (the node is left lagging
    /// for the repair workflow).
    pub giveups: u64,
}

impl FaultReport {
    /// Total faults injected (excluding the recovery-side retry/giveup
    /// tallies).
    pub fn total_injected(&self) -> u64 {
        self.net_drops
            + self.net_duplicates
            + self.net_transients
            + self.stream_corruptions
            + self.recv_crashes
            + self.block_corruptions
            + self.offlines
            + self.rejoins
            + self.flaps
            + self.partitions
            + self.heals
            + self.rack_downs
            + self.rack_ups
            + self.dc_downs
            + self.dc_ups
    }
}

/// A seeded, deterministic fault schedule.
///
/// The plan is a consumable oracle: workflows ask it questions ("does this
/// transfer fail?", "does this recv crash?") in their serial orchestration
/// sections, and the answers — driven by one SplitMix64 stream — are
/// identical run to run for the same seed and question order. Never consult
/// a plan from inside a parallel region; decide first, fan out after.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rng: FaultRng,
    config: FaultConfig,
    report: FaultReport,
}

impl FaultPlan {
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan { seed, rng: FaultRng::new(seed), config, report: FaultReport::default() }
    }

    /// A plan that injects nothing (all probabilities zero) but still
    /// carries the retry policy — useful for wiring tests.
    pub fn quiet(seed: u64) -> Self {
        Self::new(seed, FaultConfig::default())
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Everything injected so far.
    pub fn report(&self) -> FaultReport {
        self.report
    }

    /// Decide the fate of one transfer delivery attempt.
    pub fn transfer_fault(&mut self) -> TransferFault {
        // One draw per class, in fixed order, so the schedule is stable
        // under probability tweaks to later classes.
        if self.rng.chance(self.config.drop_prob) {
            self.report.net_drops += 1;
            return TransferFault::Drop;
        }
        if self.rng.chance(self.config.transient_prob) {
            self.report.net_transients += 1;
            return TransferFault::Transient;
        }
        if self.rng.chance(self.config.duplicate_prob) {
            self.report.net_duplicates += 1;
            return TransferFault::Duplicate;
        }
        TransferFault::Delivered
    }

    /// Maybe flip one bit of an encoded stream in flight. Returns `true`
    /// when a bit was flipped (and counted).
    pub fn corrupt_stream(&mut self, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() || !self.rng.chance(self.config.stream_corrupt_prob) {
            return false;
        }
        let bit = self.rng.below(bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        self.report.stream_corruptions += 1;
        true
    }

    /// Does this `recv` crash mid-apply?
    pub fn crash_mid_recv(&mut self) -> bool {
        let crash = self.rng.chance(self.config.crash_recv_prob);
        if crash {
            self.report.recv_crashes += 1;
        }
        crash
    }

    /// Maybe rot one stored block this step. Returns the victim: `None`
    /// node means the scVolume, otherwise a compute node in `[0, nodes)`;
    /// the `u64` selects the nth unique block (mod the pool's block count).
    pub fn block_corruption(&mut self, nodes: NodeId) -> Option<(Option<NodeId>, u64)> {
        if nodes == 0 || !self.rng.chance(self.config.block_corrupt_prob) {
            return None;
        }
        self.report.block_corruptions += 1;
        // One draw in [0, nodes]: the last value targets the scVolume.
        let pick = self.rng.below(nodes as u64 + 1);
        let victim = if pick == nodes as u64 { None } else { Some(pick as NodeId) };
        Some((victim, self.rng.next_u64()))
    }

    /// Draw one churn event over `nodes` compute nodes, if any fires.
    /// `online` reports whether a node is currently up, letting the plan
    /// aim offlines at live nodes and rejoins at dead ones.
    pub fn churn_event(
        &mut self,
        nodes: NodeId,
        mut online: impl FnMut(NodeId) -> bool,
    ) -> Option<ChurnEvent> {
        if nodes == 0 {
            return None;
        }
        let pick = self.rng.below(nodes as u64) as NodeId;
        if self.rng.chance(self.config.flap_prob) {
            self.report.flaps += 1;
            return Some(ChurnEvent::Flap(pick));
        }
        if online(pick) {
            if self.rng.chance(self.config.offline_prob) {
                self.report.offlines += 1;
                return Some(ChurnEvent::Offline(pick));
            }
        } else if self.rng.chance(self.config.rejoin_prob) {
            self.report.rejoins += 1;
            return Some(ChurnEvent::Rejoin(pick));
        }
        None
    }

    /// A whole offline/rejoin/flap script: `steps` draws over `nodes` nodes,
    /// tracking the up/down state the draws themselves imply.
    pub fn churn_script(&mut self, nodes: NodeId, steps: usize) -> Vec<ChurnEvent> {
        let mut up = vec![true; nodes as usize];
        let mut script = Vec::new();
        for _ in 0..steps {
            if let Some(ev) = self.churn_event(nodes, |n| up[n as usize]) {
                match ev {
                    ChurnEvent::Offline(n) => up[n as usize] = false,
                    ChurnEvent::Rejoin(n) | ChurnEvent::Flap(n) => up[n as usize] = true,
                }
                script.push(ev);
            }
        }
        script
    }

    /// Draw one partition event on the link between `storage` and a compute
    /// node in `[0, nodes)`. `cut` reports whether that link is currently
    /// partitioned, steering cuts at healthy links and heals at cut ones.
    pub fn partition_event(
        &mut self,
        storage: NodeId,
        nodes: NodeId,
        mut cut: impl FnMut(NodeId) -> bool,
    ) -> Option<PartitionEvent> {
        if nodes == 0 {
            return None;
        }
        let pick = self.rng.below(nodes as u64) as NodeId;
        if cut(pick) {
            if self.rng.chance(self.config.heal_prob) {
                self.report.heals += 1;
                return Some(PartitionEvent::Heal(storage, pick));
            }
        } else if self.rng.chance(self.config.partition_prob) {
            self.report.partitions += 1;
            return Some(PartitionEvent::Cut(storage, pick));
        }
        None
    }

    /// Draw one correlated domain outage over `racks` racks and `dcs`
    /// datacenters (global topology ids), if any fires. `rack_down` /
    /// `dc_down` report current outage state, steering downs at live
    /// domains and heals at downed ones. The rack draw always precedes the
    /// datacenter draw so the schedule is stable under probability tweaks.
    pub fn domain_event(
        &mut self,
        racks: u32,
        dcs: u32,
        mut rack_down: impl FnMut(u32) -> bool,
        mut dc_down: impl FnMut(u32) -> bool,
    ) -> Option<PartitionEvent> {
        if racks > 0 {
            let pick = self.rng.below(u64::from(racks)) as u32;
            if rack_down(pick) {
                if self.rng.chance(self.config.rack_heal_prob) {
                    self.report.rack_ups += 1;
                    return Some(PartitionEvent::RackUp(pick));
                }
            } else if self.rng.chance(self.config.rack_down_prob) {
                self.report.rack_downs += 1;
                return Some(PartitionEvent::RackDown(pick));
            }
        }
        if dcs > 0 {
            let pick = self.rng.below(u64::from(dcs)) as u32;
            if dc_down(pick) {
                if self.rng.chance(self.config.dc_heal_prob) {
                    self.report.dc_ups += 1;
                    return Some(PartitionEvent::DatacenterUp(pick));
                }
            } else if self.rng.chance(self.config.dc_down_prob) {
                self.report.dc_downs += 1;
                return Some(PartitionEvent::DatacenterDown(pick));
            }
        }
        None
    }

    /// Deterministic exponential backoff: attempt `k` (0-based retry index)
    /// waits `backoff_base_secs * 2^k` simulated seconds.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.config.backoff_base_secs * f64::from(1u32 << attempt.min(16))
    }

    pub fn max_retries(&self) -> u32 {
        self.config.max_retries
    }

    /// The recovery layer reports each delivery retry it performs.
    pub fn note_retry(&mut self) {
        self.report.retries += 1;
    }

    /// The recovery layer reports each delivery it abandoned.
    pub fn note_giveup(&mut self) {
        self.report.giveups += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            let mut p = FaultPlan::new(42, FaultConfig::chaos());
            let mut log = Vec::new();
            for _ in 0..200 {
                log.push(format!("{:?}", p.transfer_fault()));
                log.push(format!("{:?}", p.crash_mid_recv()));
                log.push(format!("{:?}", p.block_corruption(8)));
                log.push(format!("{:?}", p.churn_event(8, |n| n % 2 == 0)));
                log.push(format!("{:?}", p.partition_event(8, 8, |n| n == 3)));
            }
            (log, p.report())
        };
        let (a, ra) = mk();
        let (b, rb) = mk();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut p = FaultPlan::quiet(7);
        let mut bytes = vec![0xaau8; 64];
        for _ in 0..100 {
            assert_eq!(p.transfer_fault(), TransferFault::Delivered);
            assert!(!p.crash_mid_recv());
            assert!(!p.corrupt_stream(&mut bytes));
            assert_eq!(p.block_corruption(4), None);
            assert_eq!(p.churn_event(4, |_| true), None);
            assert_eq!(p.partition_event(4, 4, |_| false), None);
        }
        assert_eq!(p.report(), FaultReport::default());
        assert_eq!(bytes, vec![0xaau8; 64]);
    }

    #[test]
    fn chaos_plan_fires_every_class() {
        let mut p = FaultPlan::new(2014, FaultConfig::chaos());
        let mut bytes = vec![0u8; 256];
        for _ in 0..600 {
            let _ = p.transfer_fault();
            let _ = p.crash_mid_recv();
            let _ = p.corrupt_stream(&mut bytes);
            let _ = p.block_corruption(8);
            let _ = p.churn_event(8, |n| n % 3 != 0);
            let _ = p.partition_event(8, 8, |n| n % 4 == 0);
        }
        let r = p.report();
        assert!(r.net_drops > 0, "{r:?}");
        assert!(r.net_duplicates > 0, "{r:?}");
        assert!(r.net_transients > 0, "{r:?}");
        assert!(r.stream_corruptions > 0, "{r:?}");
        assert!(r.recv_crashes > 0, "{r:?}");
        assert!(r.block_corruptions > 0, "{r:?}");
        assert!(r.offlines > 0 && r.rejoins > 0 && r.flaps > 0, "{r:?}");
        assert!(r.partitions > 0 && r.heals > 0, "{r:?}");
        assert!(r.total_injected() > 0);
    }

    #[test]
    fn corrupt_stream_flips_exactly_one_bit() {
        let mut p = FaultPlan::new(
            9,
            FaultConfig { stream_corrupt_prob: 1.0, ..FaultConfig::default() },
        );
        let clean = vec![0x5cu8; 128];
        let mut bytes = clean.clone();
        assert!(p.corrupt_stream(&mut bytes));
        let flipped: u32 = clean
            .iter()
            .zip(&bytes)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        // Empty input: nothing to flip, nothing counted.
        assert!(!p.corrupt_stream(&mut []));
        assert_eq!(p.report().stream_corruptions, 1);
    }

    #[test]
    fn backoff_doubles_deterministically() {
        let p = FaultPlan::quiet(1);
        assert!((p.backoff_secs(0) - 0.05).abs() < 1e-12);
        assert!((p.backoff_secs(1) - 0.10).abs() < 1e-12);
        assert!((p.backoff_secs(3) - 0.40).abs() < 1e-12);
        // Clamped exponent: no overflow for absurd attempt counts.
        assert!(p.backoff_secs(40).is_finite());
    }

    #[test]
    fn churn_script_is_state_consistent() {
        let mut p = FaultPlan::new(77, FaultConfig::chaos());
        let script = p.churn_script(6, 200);
        assert!(!script.is_empty());
        // Replay: offlines only hit nodes that are up, rejoins only nodes
        // that are down.
        let mut up = [true; 6];
        for ev in script {
            match ev {
                ChurnEvent::Offline(n) => {
                    assert!(up[n as usize], "offline of a down node");
                    up[n as usize] = false;
                }
                ChurnEvent::Rejoin(n) => {
                    assert!(!up[n as usize], "rejoin of an up node");
                    up[n as usize] = true;
                }
                ChurnEvent::Flap(n) => up[n as usize] = true,
            }
        }
    }

    #[test]
    fn domain_chaos_fires_and_steers_by_state() {
        let mut p = FaultPlan::new(404, FaultConfig::chaos_with_domains());
        let mut rack_state = [false; 4];
        let mut dc_state = [false; 2];
        for _ in 0..400 {
            let (rs, ds) = (rack_state, dc_state);
            match p.domain_event(4, 2, |r| rs[r as usize], |d| ds[d as usize]) {
                Some(PartitionEvent::RackDown(r)) => {
                    assert!(!rack_state[r as usize], "down of a downed rack");
                    rack_state[r as usize] = true;
                }
                Some(PartitionEvent::RackUp(r)) => {
                    assert!(rack_state[r as usize], "heal of a live rack");
                    rack_state[r as usize] = false;
                }
                Some(PartitionEvent::DatacenterDown(d)) => {
                    assert!(!dc_state[d as usize]);
                    dc_state[d as usize] = true;
                }
                Some(PartitionEvent::DatacenterUp(d)) => {
                    assert!(dc_state[d as usize]);
                    dc_state[d as usize] = false;
                }
                Some(other) => panic!("domain_event returned {other:?}"),
                None => {}
            }
        }
        let r = p.report();
        assert!(r.rack_downs > 0 && r.rack_ups > 0, "{r:?}");
        assert!(r.dc_downs > 0 && r.dc_ups > 0, "{r:?}");
        assert!(r.total_injected() >= r.rack_downs + r.rack_ups + r.dc_downs + r.dc_ups);
    }

    #[test]
    fn quiet_and_flat_plans_draw_no_domain_events() {
        let mut p = FaultPlan::quiet(5);
        for _ in 0..50 {
            assert_eq!(p.domain_event(4, 2, |_| false, |_| false), None);
        }
        assert_eq!(p.report(), FaultReport::default());
        // Zero domains: nothing to pick from even under chaos rates.
        let mut c = FaultPlan::new(6, FaultConfig::chaos_with_domains());
        for _ in 0..50 {
            assert_eq!(c.domain_event(0, 0, |_| false, |_| false), None);
        }
    }

    #[test]
    fn retry_and_giveup_tallies_accumulate() {
        let mut p = FaultPlan::quiet(3);
        p.note_retry();
        p.note_retry();
        p.note_giveup();
        let r = p.report();
        assert_eq!((r.retries, r.giveups), (2, 1));
        assert_eq!(r.total_injected(), 0, "recovery tallies are not injections");
    }
}
