//! Network model: nodes, links, and charged transfer shapes (unicast,
//! flat/tree multicast, chain pipeline), with hierarchy-aware link costs
//! and whole-domain (rack / datacenter) outages when a [`Topology`] is
//! attached.

use crate::topology::{LinkScope, Topology, TopologyConfig};
use squirrel_obs::{Counter, Histogram, Metrics};

/// Node identifier within the cluster.
pub type NodeId = u32;

/// What a node does (affects which ledger a transfer is charged to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    Compute,
    Storage,
}

/// Interconnect flavours available on DAS-4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Commodity 1 Gb/s Ethernet.
    GbE,
    /// QDR InfiniBand, ~32 Gb/s theoretical.
    QdrInfiniband,
}

impl LinkKind {
    /// Effective bandwidth in MB/s (payload, after protocol overhead).
    pub fn mbps(&self) -> f64 {
        match self {
            LinkKind::GbE => 112.0,
            LinkKind::QdrInfiniband => 3200.0,
        }
    }

    /// Stable identifier used as the `link` metric label.
    pub fn name(&self) -> &'static str {
        match self {
            LinkKind::GbE => "gbe",
            LinkKind::QdrInfiniband => "qdr-ib",
        }
    }
}

/// Store-and-forward latency per relay hop (pipeline chains and tree
/// multicast levels).
const HOP_LATENCY_S: f64 = 0.002;

/// Errors from the transfer APIs ([`Network::try_unicast`] and friends).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A transfer was addressed to its own source.
    SelfTransfer { node: NodeId },
    /// A node id outside the cluster.
    UnknownNode { node: NodeId, nodes: usize },
    /// The link between the two nodes is partitioned (see
    /// [`Network::partition`]).
    Partitioned { src: NodeId, dst: NodeId },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::SelfTransfer { node } => write!(f, "node {node} transfer to itself"),
            NetError::UnknownNode { node, nodes } => {
                write!(f, "unknown node {node} (cluster has {nodes})")
            }
            NetError::Partitioned { src, dst } => {
                write!(f, "link {src}<->{dst} is partitioned")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Per-node byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    pub rx_bytes: u64,
    pub tx_bytes: u64,
}

/// The wire shape a transfer used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferShape {
    /// Point-to-point.
    Unicast,
    /// Flat IP multicast: one transmission, every subscribed receiver's NIC
    /// hears it.
    Multicast,
    /// k-ary distribution tree: receivers re-serve the payload to
    /// downstream receivers, spreading transmit load off the source.
    TreeMulticast { fanout: u32 },
    /// LANTorrent-style chain: each receiver forwards to the next while
    /// receiving.
    Pipeline,
}

impl TransferShape {
    /// Stable identifier for metric labels and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            TransferShape::Unicast => "unicast",
            TransferShape::Multicast => "multicast",
            TransferShape::TreeMulticast { .. } => "tree-multicast",
            TransferShape::Pipeline => "pipeline",
        }
    }
}

/// What a completed transfer looked like on the wire. Returned by every
/// transfer API so callers charge latency and per-link bytes identically
/// regardless of shape.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub struct TransferReport {
    /// Wall-clock seconds the transfer occupied.
    pub seconds: f64,
    /// The shape that carried it.
    pub shape: TransferShape,
    /// Payload size in bytes; every charged link carries the full payload
    /// exactly once.
    pub payload_bytes: u64,
    /// Number of links charged.
    pub links: u32,
    /// Total bytes transmitted across all links (one transmission for flat
    /// IP multicast; `payload_bytes * links` for the relayed shapes).
    pub tx_bytes: u64,
    /// Total bytes received across all links.
    pub rx_bytes: u64,
}

impl TransferReport {
    /// A transfer that moved nothing (empty receiver set).
    fn noop(shape: TransferShape, payload_bytes: u64) -> Self {
        TransferReport { seconds: 0.0, shape, payload_bytes, links: 0, tx_bytes: 0, rx_bytes: 0 }
    }
}

/// Interned metric handles for the transfer paths.
struct NetMeters {
    tx_bytes: Counter,
    rx_bytes: Counter,
    unicasts: Counter,
    multicasts: Counter,
    tree_multicasts: Counter,
    pipelines: Counter,
    multicast_fanout: Histogram,
    /// Delivered payload bytes by link scope, indexed by `LinkScope as
    /// usize` (`net_scope_bytes_total{scope=...}`).
    scope_bytes: [Counter; 4],
}

impl NetMeters {
    fn new(m: &Metrics) -> Self {
        NetMeters {
            tx_bytes: m.counter("net_tx_bytes_total"),
            rx_bytes: m.counter("net_rx_bytes_total"),
            unicasts: m.counter("net_unicast_total"),
            multicasts: m.counter("net_multicast_total"),
            tree_multicasts: m.counter("net_tree_multicast_total"),
            pipelines: m.counter("net_pipeline_total"),
            multicast_fanout: m.histogram("net_multicast_fanout"),
            scope_bytes: LinkScope::ALL.map(|s| {
                m.with_label("scope", s.name()).counter("net_scope_bytes_total")
            }),
        }
    }

    fn disabled() -> Self {
        Self::new(&Metrics::disabled())
    }
}

/// The cluster network: a flat switch with per-node ledgers, supporting
/// unicast, flat IP multicast, k-ary tree multicast and chain pipelining
/// for cache propagation.
pub struct Network {
    link: LinkKind,
    roles: Vec<NodeRole>,
    ledgers: Vec<TrafficLedger>,
    /// Cut links, stored as normalized `(min, max)` pairs. Partitions are
    /// symmetric: cutting `a<->b` blocks traffic in both directions.
    partitions: std::collections::BTreeSet<(NodeId, NodeId)>,
    /// Failure-domain hierarchy; [`TopologyConfig::flat`] for [`Self::new`].
    topology: Topology,
    /// Links cut by whole-domain outages, refcounted: a link crossing both
    /// a downed rack's boundary and its datacenter's boundary carries count
    /// 2 and stays cut until both domains come back. Kept separate from
    /// node-level `partitions` so a rack heal never silently heals an
    /// unrelated link-level cut.
    domain_cuts: std::collections::BTreeMap<(NodeId, NodeId), u32>,
    downed_racks: std::collections::BTreeSet<u32>,
    downed_dcs: std::collections::BTreeSet<u32>,
    /// Delivered payload bytes per [`LinkScope`]; cleared together with the
    /// ledgers so experiment phases report their traffic separately.
    scope_bytes: [u64; 4],
    meters: NetMeters,
}

impl Network {
    /// A cluster of `compute` compute nodes followed by `storage` storage
    /// nodes; node ids are assigned in that order. Flat topology: a single
    /// rack, every link intra-rack — the seed cost model exactly.
    pub fn new(link: LinkKind, compute: u32, storage: u32) -> Self {
        Self::with_topology(link, compute, storage, TopologyConfig::flat())
    }

    /// A cluster with a failure-domain hierarchy: node `i` (compute and
    /// storage alike) homes in global rack `i % racks`, and link costs
    /// scale with the highest boundary crossed (see
    /// [`LinkScope::cost_multiplier`]).
    pub fn with_topology(
        link: LinkKind,
        compute: u32,
        storage: u32,
        topology: TopologyConfig,
    ) -> Self {
        let mut roles = vec![NodeRole::Compute; compute as usize];
        roles.extend(std::iter::repeat_n(NodeRole::Storage, storage as usize));
        let n = roles.len();
        Network {
            link,
            roles,
            ledgers: vec![TrafficLedger::default(); n],
            partitions: std::collections::BTreeSet::new(),
            topology: Topology::new(topology, n),
            domain_cuts: std::collections::BTreeMap::new(),
            downed_racks: std::collections::BTreeSet::new(),
            downed_dcs: std::collections::BTreeSet::new(),
            scope_bytes: [0; 4],
            meters: NetMeters::disabled(),
        }
    }

    /// The failure-domain hierarchy this network was built over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The highest failure-domain boundary the `a<->b` link crosses.
    pub fn scope(&self, a: NodeId, b: NodeId) -> LinkScope {
        self.topology.scope(a, b)
    }

    /// Delivered payload bytes that crossed `scope` links since the last
    /// [`Self::reset_ledgers`].
    pub fn scope_bytes(&self, scope: LinkScope) -> u64 {
        self.scope_bytes[scope as usize]
    }

    /// Delivered payload bytes that crossed *any* failure-domain boundary
    /// (everything except intra-rack).
    pub fn cross_domain_bytes(&self) -> u64 {
        self.scope_bytes[1] + self.scope_bytes[2] + self.scope_bytes[3]
    }

    /// Attach observability: transfers record `net_*` counters and the
    /// multicast fan-out histogram. The handle gains a `link` label naming
    /// this network's interconnect.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.meters = NetMeters::new(&metrics.with_label("link", self.link.name()));
    }

    pub fn link(&self) -> LinkKind {
        self.link
    }

    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node as usize]
    }

    pub fn compute_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len() as u32).filter(|&n| self.roles[n as usize] == NodeRole::Compute)
    }

    pub fn storage_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len() as u32).filter(|&n| self.roles[n as usize] == NodeRole::Storage)
    }

    fn check_node(&self, node: NodeId) -> Result<(), NetError> {
        if (node as usize) < self.roles.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode { node, nodes: self.roles.len() })
        }
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (a.min(b), a.max(b))
    }

    /// Cut the link between `a` and `b` (symmetric). Transfers crossing a
    /// cut link fail with [`NetError::Partitioned`] before any bytes are
    /// charged. Idempotent.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        if a != b && (a as usize) < self.roles.len() && (b as usize) < self.roles.len() {
            self.partitions.insert(Self::link_key(a, b));
        }
    }

    /// Restore the link between `a` and `b`. Idempotent.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&Self::link_key(a, b));
    }

    /// Restore every cut link: node-level partitions *and* whole-domain
    /// outages.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
        self.domain_cuts.clear();
        self.downed_racks.clear();
        self.downed_dcs.clear();
    }

    /// Is the direct link between `a` and `b` currently up?
    pub fn is_reachable(&self, a: NodeId, b: NodeId) -> bool {
        a == b
            || (!self.partitions.contains(&Self::link_key(a, b))
                && !self.domain_cuts.contains_key(&Self::link_key(a, b)))
    }

    /// Number of currently-cut node-level links (domain outages are counted
    /// separately, see [`Self::domain_cut_links`]).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Number of links currently cut by rack/datacenter outages.
    pub fn domain_cut_links(&self) -> usize {
        self.domain_cuts.len()
    }

    /// Adjust the refcount of every link crossing the boundary around
    /// `members`; `delta` is `+1` (domain going down) or `-1` (coming
    /// back).
    fn shift_boundary(&mut self, members: &[NodeId], delta: i64) {
        let inside: std::collections::BTreeSet<NodeId> = members.iter().copied().collect();
        for &a in members {
            for b in 0..self.roles.len() as NodeId {
                if inside.contains(&b) {
                    continue;
                }
                let key = Self::link_key(a, b);
                let count = self.domain_cuts.entry(key).or_insert(0);
                if delta > 0 {
                    *count += 1;
                } else {
                    *count = count.saturating_sub(1);
                }
                if *count == 0 {
                    self.domain_cuts.remove(&key);
                }
            }
        }
    }

    /// Take a whole rack off the network: every link crossing the rack
    /// boundary is cut (intra-rack links stay up — the top-of-rack switch
    /// is what failed). Returns the number of links newly affected, `0` if
    /// the rack was already down. Node-level partitions are untouched and
    /// survive the matching [`Self::rack_up`].
    pub fn rack_down(&mut self, rack: u32) -> usize {
        if !self.downed_racks.insert(rack) {
            return 0;
        }
        let members = self.topology.nodes_in_rack(rack);
        let outside = self.roles.len() - members.len();
        self.shift_boundary(&members, 1);
        members.len() * outside
    }

    /// Bring a downed rack back. Only cuts created by [`Self::rack_down`]
    /// are released; overlapping datacenter outages and node-level
    /// partitions keep their links cut. No-op if the rack is not down.
    pub fn rack_up(&mut self, rack: u32) {
        if self.downed_racks.remove(&rack) {
            let members = self.topology.nodes_in_rack(rack);
            self.shift_boundary(&members, -1);
        }
    }

    /// Is `rack` currently taken down by [`Self::rack_down`]?
    pub fn rack_is_down(&self, rack: u32) -> bool {
        self.downed_racks.contains(&rack)
    }

    /// Take a whole datacenter off the network (links *within* it stay up).
    /// Returns the number of links newly affected, `0` if already down.
    pub fn datacenter_down(&mut self, dc: u32) -> usize {
        if !self.downed_dcs.insert(dc) {
            return 0;
        }
        let members = self.topology.nodes_in_datacenter(dc);
        let outside = self.roles.len() - members.len();
        self.shift_boundary(&members, 1);
        members.len() * outside
    }

    /// Bring a downed datacenter back; the mirror of
    /// [`Self::datacenter_down`] with [`Self::rack_up`]'s layering rules.
    pub fn datacenter_up(&mut self, dc: u32) {
        if self.downed_dcs.remove(&dc) {
            let members = self.topology.nodes_in_datacenter(dc);
            self.shift_boundary(&members, -1);
        }
    }

    /// Is `dc` currently taken down by [`Self::datacenter_down`]?
    pub fn datacenter_is_down(&self, dc: u32) -> bool {
        self.downed_dcs.contains(&dc)
    }

    fn check_reachable(&self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        if self.is_reachable(src, dst) {
            Ok(())
        } else {
            Err(NetError::Partitioned { src, dst })
        }
    }

    /// Seconds one full-payload copy occupies an intra-rack link.
    fn unit_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.link.mbps() * 1e6)
    }

    /// Seconds one full-payload copy occupies the `src -> dst` edge, scaled
    /// by the highest failure-domain boundary it crosses (intra-rack <
    /// cross-rack < cross-DC < cross-region). With a flat topology every
    /// edge is intra-rack and this equals [`Self::unit_secs`].
    fn edge_secs(&self, src: NodeId, dst: NodeId, bytes: u64) -> f64 {
        self.unit_secs(bytes) * self.topology.scope(src, dst).cost_multiplier()
    }

    /// Charge one delivered payload copy on the `src -> dst` edge: both
    /// ledgers plus the per-scope byte tallies.
    fn charge_edge(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        self.ledgers[src as usize].tx_bytes += bytes;
        self.ledgers[dst as usize].rx_bytes += bytes;
        let scope = self.topology.scope(src, dst) as usize;
        self.scope_bytes[scope] += bytes;
        self.meters.scope_bytes[scope].add(bytes);
    }

    /// Transfer `bytes` point-to-point from `src` to `dst`.
    pub fn try_unicast(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferReport, NetError> {
        if src == dst {
            return Err(NetError::SelfTransfer { node: src });
        }
        self.check_node(src)?;
        self.check_node(dst)?;
        self.check_reachable(src, dst)?;
        self.charge_edge(src, dst, bytes);
        self.meters.unicasts.inc();
        self.meters.tx_bytes.add(bytes);
        self.meters.rx_bytes.add(bytes);
        Ok(TransferReport {
            seconds: self.edge_secs(src, dst, bytes),
            shape: TransferShape::Unicast,
            payload_bytes: bytes,
            links: 1,
            tx_bytes: bytes,
            rx_bytes: bytes,
        })
    }

    /// IP-multicast `bytes` from `src` to `dsts`: the sender transmits once,
    /// every receiver's NIC receives the full payload (the mechanism the
    /// paper assumes for snapshot-diff propagation, Section 3.2). Fails
    /// atomically — no ledger is charged unless every receiver is valid and
    /// reachable.
    pub fn try_multicast(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
    ) -> Result<TransferReport, NetError> {
        self.check_node(src)?;
        for &d in dsts {
            if d == src {
                return Err(NetError::SelfTransfer { node: src });
            }
            self.check_node(d)?;
            self.check_reachable(src, d)?;
        }
        // One transmission, every subscriber hears it: the source's tx is
        // charged once, each receiver's edge carries one delivered copy.
        self.ledgers[src as usize].tx_bytes += bytes;
        let mut slowest = 0.0f64;
        for &d in dsts {
            self.ledgers[d as usize].rx_bytes += bytes;
            let scope = self.topology.scope(src, d) as usize;
            self.scope_bytes[scope] += bytes;
            self.meters.scope_bytes[scope].add(bytes);
            slowest = slowest.max(self.edge_secs(src, d, bytes));
        }
        self.meters.multicasts.inc();
        self.meters.tx_bytes.add(bytes);
        self.meters.rx_bytes.add(bytes * dsts.len() as u64);
        self.meters.multicast_fanout.observe(dsts.len() as u64);
        Ok(TransferReport {
            seconds: if dsts.is_empty() { self.unit_secs(bytes) } else { slowest },
            shape: TransferShape::Multicast,
            payload_bytes: bytes,
            links: dsts.len() as u32,
            tx_bytes: bytes,
            rx_bytes: bytes * dsts.len() as u64,
        })
    }

    /// Tree multicast: receivers (in order) form a complete `fanout`-ary
    /// tree rooted at `src` — `dsts[0..k]` are fed by `src`, and receiver
    /// `i >= k` is fed by `dsts[(i - k) / k]`. Each parent transmits one
    /// full copy per child, so transmit load moves off the source after the
    /// first level; levels serialize (a node forwards only after it holds
    /// the payload) and within a level each parent serves its children
    /// back-to-back. Fails atomically: every parent→child edge is validated
    /// (unknown node, self-transfer, partition) before any ledger is
    /// charged.
    pub fn try_tree_multicast(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
        fanout: u32,
    ) -> Result<TransferReport, NetError> {
        let k = fanout.max(1) as usize;
        let shape = TransferShape::TreeMulticast { fanout: k as u32 };
        if dsts.is_empty() {
            return Ok(TransferReport::noop(shape, bytes));
        }
        self.check_node(src)?;
        let parent = |i: usize| if i < k { src } else { dsts[(i - k) / k] };
        for (i, &d) in dsts.iter().enumerate() {
            if d == src || d == parent(i) {
                return Err(NetError::SelfTransfer { node: d });
            }
            self.check_node(d)?;
            self.check_reachable(parent(i), d)?;
        }
        for (i, &d) in dsts.iter().enumerate() {
            self.charge_edge(parent(i), d, bytes);
        }
        let total = bytes * dsts.len() as u64;
        self.meters.tree_multicasts.inc();
        self.meters.tx_bytes.add(total);
        self.meters.rx_bytes.add(total);
        self.meters.multicast_fanout.observe(dsts.len() as u64);
        // Level l holds at most k^l receivers; its duration is one payload
        // time per child of the busiest parent, plus a hop latency. The
        // payload time is the tree's slowest edge — levels serialize, so
        // one cross-domain edge gates the whole fan-out.
        let t1 = dsts
            .iter()
            .enumerate()
            .map(|(i, &d)| self.edge_secs(parent(i), d, bytes))
            .fold(0.0f64, f64::max);
        let mut seconds = 0.0;
        let mut remaining = dsts.len();
        let mut level_cap = k;
        while remaining > 0 {
            let level = remaining.min(level_cap);
            seconds += level.min(k) as f64 * t1 + HOP_LATENCY_S;
            remaining -= level;
            level_cap = level * k;
        }
        Ok(TransferReport {
            seconds,
            shape,
            payload_bytes: bytes,
            links: dsts.len() as u32,
            tx_bytes: total,
            rx_bytes: total,
        })
    }

    /// LANTorrent-style pipelined transfer: the source sends once to the
    /// first receiver, each receiver forwards to the next while receiving.
    /// Every node transmits and receives at most one copy, and on a single
    /// switch the pipeline completes in roughly one transfer time plus a
    /// per-hop latency. Fails atomically if any hop link is down.
    pub fn try_pipeline(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
    ) -> Result<TransferReport, NetError> {
        if dsts.is_empty() {
            return Ok(TransferReport::noop(TransferShape::Pipeline, bytes));
        }
        self.check_node(src)?;
        let mut prev = src;
        for &d in dsts {
            if d == prev {
                return Err(NetError::SelfTransfer { node: d });
            }
            self.check_node(d)?;
            self.check_reachable(prev, d)?;
            prev = d;
        }
        let mut prev = src;
        let mut slowest_hop = 0.0f64;
        for &d in dsts {
            slowest_hop = slowest_hop.max(self.edge_secs(prev, d, bytes));
            self.charge_edge(prev, d, bytes);
            prev = d;
        }
        let total = bytes * dsts.len() as u64;
        self.meters.pipelines.inc();
        self.meters.tx_bytes.add(total);
        self.meters.rx_bytes.add(total);
        Ok(TransferReport {
            // The chain drains at the speed of its slowest hop.
            seconds: slowest_hop + HOP_LATENCY_S * dsts.len() as f64,
            shape: TransferShape::Pipeline,
            payload_bytes: bytes,
            links: dsts.len() as u32,
            tx_bytes: total,
            rx_bytes: total,
        })
    }

    pub fn ledger(&self, node: NodeId) -> TrafficLedger {
        self.ledgers[node as usize]
    }

    /// Sum of rx bytes over compute nodes — Figure 18's y-axis.
    pub fn compute_rx_total(&self) -> u64 {
        self.compute_nodes().map(|n| self.ledger(n).rx_bytes).sum()
    }

    /// Sum of tx bytes over compute nodes — bytes served peer-to-peer
    /// rather than by the storage tier.
    pub fn compute_tx_total(&self) -> u64 {
        self.compute_nodes().map(|n| self.ledger(n).tx_bytes).sum()
    }

    /// Sum of tx bytes over storage nodes — the storage-tier uplink load a
    /// distribution policy tries to minimise.
    pub fn storage_tx_total(&self) -> u64 {
        self.storage_nodes().map(|n| self.ledger(n).tx_bytes).sum()
    }

    /// Reset all ledgers and the per-scope byte tallies (between experiment
    /// phases: registration traffic versus boot-time traffic are reported
    /// separately). Metrics counters are cumulative and are not reset.
    pub fn reset_ledgers(&mut self) {
        self.ledgers.fill(TrafficLedger::default());
        self.scope_bytes = [0; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_assigned_in_order() {
        let net = Network::new(LinkKind::GbE, 3, 2);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.role(0), NodeRole::Compute);
        assert_eq!(net.role(3), NodeRole::Storage);
        assert_eq!(net.compute_nodes().count(), 3);
        assert_eq!(net.storage_nodes().count(), 2);
    }

    #[test]
    fn unicast_charges_both_ends() {
        let mut net = Network::new(LinkKind::GbE, 2, 1);
        let r = net.try_unicast(2, 0, 112_000_000).unwrap();
        assert_eq!(net.ledger(2).tx_bytes, 112_000_000);
        assert_eq!(net.ledger(0).rx_bytes, 112_000_000);
        assert_eq!(net.ledger(1), TrafficLedger::default());
        assert!((r.seconds - 1.0).abs() < 1e-9, "1 GbE moves 112 MB/s: {}", r.seconds);
        assert_eq!(r.shape, TransferShape::Unicast);
        assert_eq!((r.links, r.payload_bytes), (1, 112_000_000));
        assert_eq!((r.tx_bytes, r.rx_bytes), (112_000_000, 112_000_000));
        assert_eq!(net.storage_tx_total(), 112_000_000);
        assert_eq!(net.compute_tx_total(), 0);
    }

    #[test]
    fn multicast_sends_once_receives_everywhere() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        let r = net.try_multicast(4, &[0, 1, 2, 3], 1000).unwrap();
        assert_eq!(net.ledger(4).tx_bytes, 1000, "single transmission");
        for n in 0..4 {
            assert_eq!(net.ledger(n).rx_bytes, 1000);
        }
        assert_eq!(net.compute_rx_total(), 4000);
        assert_eq!(r.shape, TransferShape::Multicast);
        assert_eq!((r.links, r.tx_bytes, r.rx_bytes), (4, 1000, 4000));
    }

    #[test]
    fn tree_multicast_moves_tx_off_the_source() {
        let mut net = Network::new(LinkKind::GbE, 6, 1);
        // fanout 2, receivers 0..6: src 6 feeds {0,1}; 0 feeds {2,3};
        // 1 feeds {4,5}.
        let r = net.try_tree_multicast(6, &[0, 1, 2, 3, 4, 5], 1000, 2).unwrap();
        assert_eq!(net.ledger(6).tx_bytes, 2000, "source sends only fanout copies");
        assert_eq!(net.ledger(0).tx_bytes, 2000);
        assert_eq!(net.ledger(1).tx_bytes, 2000);
        assert_eq!(net.ledger(2).tx_bytes, 0, "leaves only receive");
        for n in 0..6 {
            assert_eq!(net.ledger(n).rx_bytes, 1000, "every receiver gets one copy");
        }
        assert_eq!(r.shape, TransferShape::TreeMulticast { fanout: 2 });
        assert_eq!((r.links, r.tx_bytes, r.rx_bytes), (6, 6000, 6000));
        // Two full levels: 2 copies + hop each.
        let t1 = 1000.0 / (LinkKind::GbE.mbps() * 1e6);
        assert!((r.seconds - (4.0 * t1 + 2.0 * HOP_LATENCY_S)).abs() < 1e-12);
        assert_eq!(net.storage_tx_total(), 2000);
        assert_eq!(net.compute_tx_total(), 4000);
    }

    #[test]
    fn tree_multicast_beats_serial_unicast_at_scale() {
        let bytes = 10_000_000u64;
        let n = 100u32;
        let mut tree = Network::new(LinkKind::GbE, n, 1);
        let dsts: Vec<NodeId> = (0..n).collect();
        let rt = tree.try_tree_multicast(n, &dsts, bytes, 8).unwrap();
        let mut uni = Network::new(LinkKind::GbE, n, 1);
        let serial: f64 = dsts.iter().map(|&d| uni.try_unicast(n, d, bytes).unwrap().seconds).sum();
        assert!(rt.seconds < serial / 2.0, "tree {} vs serial {serial}", rt.seconds);
        // Identical receiver-side bytes, radically lower source load.
        assert_eq!(tree.compute_rx_total(), uni.compute_rx_total());
        assert!(tree.storage_tx_total() < uni.storage_tx_total());
    }

    #[test]
    fn tree_multicast_fails_atomically_and_clamps_fanout() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        net.partition(0, 2);
        // fanout 2 over [0, 1, 2, 3]: src feeds {0, 1}, node 0 feeds
        // {2, 3}, so the cut 0<->2 edge kills the whole transfer.
        assert_eq!(
            net.try_tree_multicast(4, &[0, 1, 2, 3], 10, 2),
            Err(NetError::Partitioned { src: 0, dst: 2 })
        );
        assert_eq!(net.compute_rx_total(), 0, "atomic failure charges nothing");
        assert_eq!(net.ledger(4), TrafficLedger::default());
        // fanout 0 clamps to 1 (a chain) rather than dividing by zero.
        let r = net.try_tree_multicast(4, &[1, 3], 10, 0).unwrap();
        assert_eq!(r.shape, TransferShape::TreeMulticast { fanout: 1 });
        assert_eq!(net.ledger(1).tx_bytes, 10, "chain relay");
        // Empty receiver set is a no-op.
        let r = net.try_tree_multicast(4, &[], 10, 4).unwrap();
        assert_eq!((r.links, r.seconds), (0, 0.0));
        // A receiver equal to the source is malformed.
        assert_eq!(
            net.try_tree_multicast(4, &[0, 4], 10, 4),
            Err(NetError::SelfTransfer { node: 4 })
        );
    }

    #[test]
    fn pipeline_spreads_tx_load() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        let r = net.try_pipeline(4, &[0, 1, 2, 3], 1_000_000).unwrap();
        // Source transmits once; each intermediate node relays once.
        assert_eq!(net.ledger(4).tx_bytes, 1_000_000);
        assert_eq!(net.ledger(0).tx_bytes, 1_000_000);
        assert_eq!(net.ledger(3).tx_bytes, 0, "last hop only receives");
        for n in 0..4 {
            assert_eq!(net.ledger(n).rx_bytes, 1_000_000);
        }
        // Completes in about one transfer time, not n transfer times.
        let single = 1_000_000.0 / (LinkKind::GbE.mbps() * 1e6);
        assert!(r.seconds < 2.0 * single + 0.1, "{} vs {single}", r.seconds);
        assert_eq!(r.shape, TransferShape::Pipeline);
        assert_eq!((r.links, r.tx_bytes, r.rx_bytes), (4, 4_000_000, 4_000_000));
    }

    #[test]
    fn pipeline_empty_is_noop() {
        let mut net = Network::new(LinkKind::GbE, 1, 1);
        let r = net.try_pipeline(1, &[], 100).unwrap();
        assert_eq!((r.seconds, r.links), (0.0, 0));
        assert_eq!(net.compute_rx_total(), 0);
    }

    #[test]
    fn infiniband_is_faster() {
        let mut gbe = Network::new(LinkKind::GbE, 1, 1);
        let mut ib = Network::new(LinkKind::QdrInfiniband, 1, 1);
        let fast = ib.try_unicast(1, 0, 1 << 30).unwrap().seconds;
        let slow = gbe.try_unicast(1, 0, 1 << 30).unwrap().seconds;
        assert!(fast < slow);
    }

    #[test]
    fn reset_clears_ledgers() {
        let mut net = Network::new(LinkKind::GbE, 1, 1);
        net.try_unicast(1, 0, 5).unwrap();
        net.reset_ledgers();
        assert_eq!(net.compute_rx_total(), 0);
    }

    #[test]
    fn shape_names_are_stable() {
        assert_eq!(TransferShape::Unicast.name(), "unicast");
        assert_eq!(TransferShape::Multicast.name(), "multicast");
        assert_eq!(TransferShape::TreeMulticast { fanout: 8 }.name(), "tree-multicast");
        assert_eq!(TransferShape::Pipeline.name(), "pipeline");
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        let mut net = Network::new(LinkKind::GbE, 2, 1);
        assert_eq!(net.try_unicast(0, 0, 1), Err(NetError::SelfTransfer { node: 0 }));
        assert_eq!(
            net.try_unicast(0, 9, 1),
            Err(NetError::UnknownNode { node: 9, nodes: 3 })
        );
        assert_eq!(net.try_multicast(2, &[0, 2], 1), Err(NetError::SelfTransfer { node: 2 }));
        assert_eq!(
            net.try_pipeline(2, &[0, 0], 1),
            Err(NetError::SelfTransfer { node: 0 })
        );
        // Failed transfers must not touch the ledgers.
        assert_eq!(net.compute_rx_total(), 0);
        assert_eq!(net.ledger(2), TrafficLedger::default());
        // Errors render through Display and implement Error.
        let e: Box<dyn std::error::Error> = Box::new(NetError::SelfTransfer { node: 7 });
        assert_eq!(e.to_string(), "node 7 transfer to itself");
    }

    #[test]
    fn partition_blocks_transfers_without_charging() {
        let mut net = Network::new(LinkKind::GbE, 3, 1);
        net.partition(3, 1);
        assert!(!net.is_reachable(1, 3), "symmetric cut");
        assert_eq!(net.partition_count(), 1);
        assert_eq!(
            net.try_unicast(3, 1, 1000),
            Err(NetError::Partitioned { src: 3, dst: 1 })
        );
        // Multicast with one unreachable receiver fails atomically.
        assert_eq!(
            net.try_multicast(3, &[0, 1, 2], 1000),
            Err(NetError::Partitioned { src: 3, dst: 1 })
        );
        // Pipeline checks hop-by-hop links: the chain 0 -> 1 -> 3 dies on
        // the cut 1<->3 hop, while 3 -> 0 -> 1 routes around it.
        assert_eq!(
            net.try_pipeline(0, &[1, 3], 1000),
            Err(NetError::Partitioned { src: 1, dst: 3 })
        );
        // None of the failures above charged a ledger.
        assert_eq!(net.compute_rx_total(), 0);
        assert_eq!(net.ledger(3), TrafficLedger::default());
        assert!(net.try_pipeline(3, &[0, 1], 1000).is_ok());
        // Unaffected links still work.
        assert!(net.try_unicast(3, 0, 10).is_ok());
        // Heal restores the link; heal_all clears everything.
        net.heal(1, 3);
        assert!(net.is_reachable(3, 1));
        assert!(net.try_unicast(3, 1, 10).is_ok());
        net.partition(3, 0);
        net.partition(3, 2);
        net.heal_all();
        assert_eq!(net.partition_count(), 0);
        // Partition of bogus or self links is a no-op.
        net.partition(0, 0);
        net.partition(0, 99);
        assert_eq!(net.partition_count(), 0);
        let e: Box<dyn std::error::Error> =
            Box::new(NetError::Partitioned { src: 3, dst: 1 });
        assert_eq!(e.to_string(), "link 3<->1 is partitioned");
    }

    fn racked(compute: u32, storage: u32, racks: u32) -> Network {
        Network::with_topology(
            LinkKind::GbE,
            compute,
            storage,
            TopologyConfig { regions: 1, dcs_per_region: 1, racks_per_dc: racks },
        )
    }

    #[test]
    fn cross_rack_links_cost_more() {
        // 2 racks over 4 nodes: rack 0 = {0, 2}, rack 1 = {1, 3}.
        let mut net = racked(2, 2, 2);
        let bytes = 112_000_000u64;
        let intra = net.try_unicast(2, 0, bytes).unwrap().seconds;
        let cross = net.try_unicast(2, 1, bytes).unwrap().seconds;
        assert!((intra - 1.0).abs() < 1e-9, "intra-rack keeps the flat cost: {intra}");
        assert!((cross - 2.0).abs() < 1e-9, "cross-rack pays the multiplier: {cross}");
        assert_eq!(net.scope(2, 0), LinkScope::IntraRack);
        assert_eq!(net.scope(2, 1), LinkScope::CrossRack);
        assert_eq!(net.scope_bytes(LinkScope::IntraRack), bytes);
        assert_eq!(net.scope_bytes(LinkScope::CrossRack), bytes);
        assert_eq!(net.cross_domain_bytes(), bytes);
        net.reset_ledgers();
        assert_eq!(net.cross_domain_bytes(), 0);
    }

    #[test]
    fn flat_topology_has_no_cross_domain_traffic() {
        let mut net = Network::new(LinkKind::GbE, 2, 1);
        net.try_unicast(2, 0, 1000).unwrap();
        assert_eq!(net.scope_bytes(LinkScope::IntraRack), 1000);
        assert_eq!(net.cross_domain_bytes(), 0);
        // Rack 0 down in a flat topology cuts nothing: there is no boundary.
        assert_eq!(net.rack_down(0), 0, "no boundary links exist");
        assert!(net.try_unicast(2, 1, 10).is_ok());
        net.heal_all();
    }

    #[test]
    fn rack_down_cuts_the_boundary_only() {
        // 3 racks over 9 nodes: rack 0 = {0, 3, 6}, rack 1 = {1, 4, 7}.
        let mut net = racked(6, 3, 3);
        let cut = net.rack_down(0);
        assert_eq!(cut, 3 * 6, "every boundary link cut once");
        assert!(net.rack_is_down(0));
        assert!(net.is_reachable(0, 3), "intra-rack links stay up");
        assert!(!net.is_reachable(0, 1));
        assert!(!net.is_reachable(6, 7), "storage in the rack is cut too");
        assert_eq!(net.rack_down(0), 0, "already down: no-op");
        assert_eq!(net.domain_cut_links(), 18);
        assert_eq!(net.partition_count(), 0, "domain cuts are not node partitions");
        net.rack_up(0);
        assert!(!net.rack_is_down(0));
        assert!(net.is_reachable(0, 1));
        assert_eq!(net.domain_cut_links(), 0);
        net.rack_up(0); // double-up is a no-op
    }

    #[test]
    fn datacenter_down_overlapping_rack_down_is_refcounted() {
        // 2 DCs x 2 racks over 8 nodes: DC 0 = racks {0, 1} = nodes
        // {0, 4, 1, 5}; DC 1 = racks {2, 3}.
        let mut net = Network::with_topology(
            LinkKind::GbE,
            6,
            2,
            TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 },
        );
        net.rack_down(0);
        net.datacenter_down(0);
        assert!(net.datacenter_is_down(0));
        assert!(!net.is_reachable(0, 2), "rack 0 to DC 1: cut twice");
        assert!(!net.is_reachable(1, 2), "rack 1 to DC 1: cut by the DC outage");
        assert!(!net.is_reachable(0, 1), "rack boundary inside the DC stays cut");
        // Healing the DC releases its cuts; the rack outage remains.
        net.datacenter_up(0);
        assert!(!net.is_reachable(0, 2), "rack 0 is still down");
        assert!(net.is_reachable(1, 2), "rack 1 is back");
        net.rack_up(0);
        assert_eq!(net.domain_cut_links(), 0);
    }

    // Satellite: partition lifecycle edge cases.
    #[test]
    fn double_partition_and_bogus_heal_are_idempotent() {
        let mut net = Network::new(LinkKind::GbE, 3, 1);
        net.partition(3, 1);
        net.partition(1, 3); // same link, reversed order
        assert_eq!(net.partition_count(), 1, "double cut is one cut");
        net.heal(0, 2); // never-cut link: no-op
        assert_eq!(net.partition_count(), 1);
        assert!(net.is_reachable(0, 2));
        net.heal(3, 1);
        net.heal(3, 1); // double heal: no-op
        assert_eq!(net.partition_count(), 0);
        assert!(net.try_unicast(3, 1, 10).is_ok());
    }

    #[test]
    fn rack_down_overlapping_node_partition_heals_independently() {
        // Rack 1 = {1, 4, 7}; also cut the 7<->8 link at node level.
        let mut net = racked(6, 3, 3);
        net.partition(7, 8);
        net.rack_down(1);
        assert!(!net.is_reachable(7, 8));
        // The rack heal must NOT heal the node-level cut underneath.
        net.rack_up(1);
        assert!(!net.is_reachable(7, 8), "node-level cut survives the rack heal");
        assert!(net.is_reachable(1, 8), "other rack links are back");
        net.heal(7, 8);
        assert!(net.is_reachable(7, 8));
    }

    #[test]
    fn heal_order_does_not_change_the_ledger() {
        let run = |heal_rack_first: bool| {
            let mut net = racked(6, 3, 3);
            net.partition(0, 6);
            net.rack_down(1);
            if heal_rack_first {
                net.rack_up(1);
                net.heal(0, 6);
            } else {
                net.heal(0, 6);
                net.rack_up(1);
            }
            // Same transfers after full heal, whatever the heal order.
            net.try_unicast(6, 0, 1000).unwrap();
            net.try_unicast(7, 1, 2000).unwrap();
            net.try_multicast(8, &[0, 1, 2], 500).unwrap();
            (0..9).map(|n| net.ledger(n)).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn transfers_record_metrics() {
        let reg = squirrel_obs::MetricsRegistry::new();
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        net.set_metrics(&reg.handle());
        net.try_unicast(4, 0, 100).unwrap();
        net.try_multicast(4, &[0, 1, 2], 50).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_tx_bytes_total{link=\"gbe\"}"), Some(150));
        assert_eq!(snap.counter("net_rx_bytes_total{link=\"gbe\"}"), Some(250));
        assert_eq!(snap.counter("net_multicast_total{link=\"gbe\"}"), Some(1));
        let fanout = snap
            .histogram("net_multicast_fanout{link=\"gbe\"}")
            .expect("fan-out histogram");
        assert_eq!(fanout.count, 1);
        assert_eq!(fanout.sum, 3);
    }

    #[test]
    fn tree_multicast_records_metrics() {
        let reg = squirrel_obs::MetricsRegistry::new();
        let mut net = Network::new(LinkKind::GbE, 3, 1);
        net.set_metrics(&reg.handle());
        net.try_tree_multicast(3, &[0, 1, 2], 10, 2).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_tree_multicast_total{link=\"gbe\"}"), Some(1));
        assert_eq!(snap.counter("net_tx_bytes_total{link=\"gbe\"}"), Some(30));
        assert_eq!(snap.counter("net_rx_bytes_total{link=\"gbe\"}"), Some(30));
    }
}
