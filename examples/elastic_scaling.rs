//! Elastic-scaling scenario (the paper's motivating use case): a web
//! application autoscales by booting many VMs from the *same* image at
//! once. Without caches the storage nodes and network melt; with Squirrel
//! the whole scale-out boots locally.
//!
//! ```text
//! cargo run --release --example elastic_scaling
//! ```

use squirrel_repro::cluster::LinkKind;
use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn main() {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: 4,
        scale: 1024,
        ..CorpusConfig::azure(1024, 7)
    }));
    let nodes = 32u32;

    // Scenario A: no caches — every node pulls the boot working set of the
    // web-server image from the parallel file system.
    let mut cold = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .link(LinkKind::GbE)
            .build(),
        Arc::clone(&corpus),
    );
    let mut cold_secs = 0.0f64;
    for node in 0..nodes {
        let out = cold.boot(node, 0).expect("cold boot");
        assert!(!out.warm);
        cold_secs = cold_secs.max(out.report.total_seconds);
    }
    let cold_rx = cold.network().compute_rx_total();

    // Scenario B: Squirrel — the image was registered when it was uploaded,
    // so every node already hoards its cache.
    let mut warm = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .link(LinkKind::GbE)
            .build(),
        Arc::clone(&corpus),
    );
    warm.register(0).expect("register");
    warm.network_mut().reset_ledgers();
    let mut warm_secs = 0.0f64;
    for node in 0..nodes {
        let out = warm.boot(node, 0).expect("warm boot");
        assert!(out.warm);
        warm_secs = warm_secs.max(out.report.total_seconds);
    }
    let warm_rx = warm.network().compute_rx_total();

    println!("scale-out of {nodes} VMs from one image:");
    println!(
        "  without caches: slowest boot {:>5.1}s, {:>8} KiB over the network",
        cold_secs,
        cold_rx >> 10
    );
    println!(
        "  with Squirrel:  slowest boot {:>5.1}s, {:>8} KiB over the network",
        warm_secs,
        warm_rx >> 10
    );
    assert_eq!(warm_rx, 0);
    assert!(warm_secs < cold_secs);
    println!(
        "\nSquirrel boots the fleet {:.0}% faster with zero network traffic.",
        (1.0 - warm_secs / cold_secs) * 100.0
    );
}
