//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! Runs each benchmark in a short time-boxed loop and prints the mean
//! ns/iter (plus derived throughput when one was declared). No statistics,
//! no HTML reports, no comparison against saved baselines — just enough to
//! keep `benches/` compiling and producing useful numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared throughput of one benchmark, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark's identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(60);
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std_black_box(routine()); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE && iters < MAX_ITERS {
            std_black_box(routine());
            iters += 1;
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:>10.1} MiB/s", b as f64 / (ns * 1e-9) / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!("  {:>10.1} elem/s", e as f64 / (ns * 1e-9)),
        None => String::new(),
    };
    println!("bench: {name:<48} {ns:>14.1} ns/iter{rate}");
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.ns_per_iter, self.throughput);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.ns_per_iter, self.throughput);
    }

    pub fn finish(self) {}
}

/// The harness entry point; construct via `Criterion::default()`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&name.into(), b.ns_per_iter, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags we don't honour.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
