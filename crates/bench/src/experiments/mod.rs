//! One module per family of tables/figures.

pub mod ablations;
pub mod boottime;
pub mod bootstorm;
pub mod budget;
pub mod chaosbench;
pub mod chunking;
pub mod distribution;
pub mod extrapolate;
pub mod fleet;
pub mod ingest;
pub mod network;
pub mod storage;
pub mod sweeps;
pub mod topology;
pub mod whatif;
