//! A glusterfs-like parallel file system over the storage nodes.
//!
//! The paper configures glusterfs with "two levels of striping and two
//! levels of replication" across four storage nodes: a read of `bytes`
//! spreads over the stripe set (good random-access performance over four
//! disks) while each written byte lands on two replicas (tolerating one
//! disk failure per replica group).

use crate::netsim::{NetError, Network, NodeId};

/// Striping/replication shape.
#[derive(Clone, Copy, Debug)]
pub struct GlusterConfig {
    pub stripe: u32,
    pub replicas: u32,
    /// Stripe unit in bytes.
    pub stripe_unit: u64,
}

impl Default for GlusterConfig {
    fn default() -> Self {
        GlusterConfig { stripe: 2, replicas: 2, stripe_unit: 128 * 1024 }
    }
}

/// The parallel FS: a view over the network's storage nodes.
pub struct GlusterVolume {
    config: GlusterConfig,
    bricks: Vec<NodeId>,
}

impl GlusterVolume {
    /// Build over the given brick nodes; needs `stripe × replicas` bricks.
    pub fn new(config: GlusterConfig, bricks: Vec<NodeId>) -> Self {
        assert_eq!(
            bricks.len() as u32,
            config.stripe * config.replicas,
            "brick count must equal stripe x replicas"
        );
        GlusterVolume { config, bricks }
    }

    /// Bricks serving stripe `s` (one per replica).
    fn stripe_bricks(&self, s: u32) -> impl Iterator<Item = NodeId> + '_ {
        let stripe = self.config.stripe;
        self.bricks
            .iter()
            .copied()
            .enumerate()
            .filter(move |(i, _)| (*i as u32) % stripe == s)
            .map(|(_, n)| n)
    }

    /// Serve a client read of `bytes` at `offset` for `client`: each
    /// stripe's primary replica sends its share over the network. Returns
    /// the transfer seconds of the slowest stripe (they proceed in
    /// parallel). Panics when a stripe has no reachable replica — see
    /// [`try_read`](Self::try_read).
    pub fn read(&self, net: &mut Network, client: NodeId, offset: u64, bytes: u64) -> f64 {
        self.try_read(net, client, offset, bytes)
            .expect("every stripe has a reachable replica")
    }

    /// Fallible [`read`](Self::read) with replica failover: each stripe is
    /// served by its first replica reachable from `client` (the primary on
    /// a healthy network, so ledgers are unchanged there). Only when *every*
    /// replica of a stripe is behind a partition does the read fail — and it
    /// fails before any byte is charged.
    pub fn try_read(
        &self,
        net: &mut Network,
        client: NodeId,
        offset: u64,
        bytes: u64,
    ) -> Result<f64, NetError> {
        let mut per_stripe = vec![0u64; self.config.stripe as usize];
        let unit = self.config.stripe_unit;
        let mut pos = offset;
        let end = offset + bytes;
        while pos < end {
            let chunk_end = ((pos / unit) + 1) * unit;
            let take = chunk_end.min(end) - pos;
            let stripe = ((pos / unit) % self.config.stripe as u64) as usize;
            per_stripe[stripe] += take;
            pos += take;
        }
        // Pick every stripe's serving replica first, so a dead stripe
        // leaves the ledgers untouched.
        let mut serving = Vec::new();
        for (s, &b) in per_stripe.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let primary = self.stripe_bricks(s as u32).next().expect("stripe has bricks");
            let brick = self
                .stripe_bricks(s as u32)
                .find(|&br| net.is_reachable(br, client))
                .ok_or(NetError::Partitioned { src: primary, dst: client })?;
            serving.push((brick, b));
        }
        let mut slowest = 0.0f64;
        for (brick, b) in serving {
            let report = net.try_unicast(brick, client, b)?;
            slowest = slowest.max(report.seconds);
        }
        Ok(slowest)
    }

    /// Serve a client write: every byte goes to all replicas of its stripe.
    pub fn write(&self, net: &mut Network, client: NodeId, offset: u64, bytes: u64) -> f64 {
        let unit = self.config.stripe_unit;
        let mut per_stripe = vec![0u64; self.config.stripe as usize];
        let mut pos = offset;
        let end = offset + bytes;
        while pos < end {
            let chunk_end = ((pos / unit) + 1) * unit;
            let take = chunk_end.min(end) - pos;
            let stripe = ((pos / unit) % self.config.stripe as u64) as usize;
            per_stripe[stripe] += take;
            pos += take;
        }
        let mut slowest = 0.0f64;
        for (s, &b) in per_stripe.iter().enumerate() {
            if b == 0 {
                continue;
            }
            for brick in self.stripe_bricks(s as u32).collect::<Vec<_>>() {
                let secs = net
                    .try_unicast(client, brick, b)
                    .expect("write replicas are known and reachable")
                    .seconds;
                slowest = slowest.max(secs);
            }
        }
        slowest
    }

    pub fn bricks(&self) -> &[NodeId] {
        &self.bricks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::LinkKind;

    fn setup() -> (Network, GlusterVolume) {
        // 2 compute (0,1) + 4 storage (2..6).
        let net = Network::new(LinkKind::GbE, 2, 4);
        let vol = GlusterVolume::new(GlusterConfig::default(), vec![2, 3, 4, 5]);
        (net, vol)
    }

    #[test]
    #[should_panic(expected = "brick count")]
    fn wrong_brick_count_panics() {
        GlusterVolume::new(GlusterConfig::default(), vec![2, 3, 4]);
    }

    #[test]
    fn read_spreads_across_stripes() {
        let (mut net, vol) = setup();
        // 512 KiB = 4 stripe units, alternating stripe 0/1.
        vol.read(&mut net, 0, 0, 512 * 1024);
        let s0: u64 = net.ledger(2).tx_bytes;
        let s1: u64 = net.ledger(3).tx_bytes;
        assert_eq!(s0 + s1, 512 * 1024);
        assert_eq!(s0, s1, "even split across stripes");
        assert_eq!(net.ledger(0).rx_bytes, 512 * 1024, "client receives all");
    }

    #[test]
    fn write_replicates() {
        let (mut net, vol) = setup();
        vol.write(&mut net, 1, 0, 256 * 1024);
        let total_storage_rx: u64 = (2..6).map(|n| net.ledger(n).rx_bytes).sum();
        assert_eq!(total_storage_rx, 2 * 256 * 1024, "two replicas per byte");
        assert_eq!(net.ledger(1).tx_bytes, 2 * 256 * 1024);
    }

    #[test]
    fn unaligned_read_accounts_exact_bytes() {
        let (mut net, vol) = setup();
        vol.read(&mut net, 0, 100, 1000);
        assert_eq!(net.ledger(0).rx_bytes, 1000);
    }

    #[test]
    fn parallel_stripes_faster_than_serial() {
        let (mut net, vol) = setup();
        let t = vol.read(&mut net, 0, 0, 1 << 20);
        let serial = (1u64 << 20) as f64 / (LinkKind::GbE.mbps() * 1e6);
        assert!(t < serial, "striped read {t} vs serial {serial}");
    }
}
