//! Systematic k+m Reed–Solomon erasure coding over GF(256), std-only.
//!
//! The encoding matrix is `[I; C]`: the k data shards pass through verbatim
//! (systematic), and the m parity shards are rows of a Cauchy matrix
//! `C[i][j] = 1 / (x_i + y_j)` with `x_i = i` and `y_j = m + j` (addition
//! is XOR in GF(256), and the two index sets are disjoint so no entry
//! divides by zero). Every square submatrix of a Cauchy matrix is
//! invertible, which makes `[I; C]` MDS: *any* k of the k+m shards
//! reconstruct the data exactly, so the code tolerates the loss of any m
//! shards — one whole rack of shards, in the topology this crate places
//! them over.
//!
//! Decoding gathers any k surviving shards, inverts the corresponding k×k
//! submatrix by Gauss–Jordan elimination over GF(256), and multiplies. All
//! arithmetic is table-driven (log/exp over the 0x11d primitive
//! polynomial); nothing here panics on bad erasure patterns — more than m
//! losses surface as a typed [`RsError`].

/// Errors from the pure coder. `>m` losses are reported, never silently
/// mis-decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsError {
    /// `k` and `m` must be nonzero and `k + m <= 255`.
    BadGeometry { k: usize, m: usize },
    /// Shards passed to encode/decode have inconsistent lengths.
    ShardSizeMismatch,
    /// Fewer than `k` shards survive: the data is unrecoverable.
    NotEnoughShards { available: usize, needed: usize },
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::BadGeometry { k, m } => {
                write!(f, "bad erasure geometry k={k} m={m} (need 1<=k, 1<=m, k+m<=255)")
            }
            RsError::ShardSizeMismatch => write!(f, "shard lengths differ"),
            RsError::NotEnoughShards { available, needed } => {
                write!(f, "only {available} shards survive, {needed} needed")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// GF(256) log/exp tables over the 0x11d polynomial, built once.
struct GfTables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static GfTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<GfTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
        }
        // Duplicate the cycle so products of logs index without a mod.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        GfTables { exp, log }
    })
}

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

fn check_geometry(k: usize, m: usize) -> Result<(), RsError> {
    if k == 0 || m == 0 || k + m > 255 {
        return Err(RsError::BadGeometry { k, m });
    }
    Ok(())
}

/// Row `r` of the (k+m)×k encoding matrix `[I; C]`.
fn matrix_row(k: usize, m: usize, r: usize) -> Vec<u8> {
    let mut row = vec![0u8; k];
    if r < k {
        row[r] = 1;
    } else {
        let i = (r - k) as u8;
        for (j, cell) in row.iter_mut().enumerate() {
            // x_i = i in [0, m); y_j = m + j in [m, m+k): disjoint, so the
            // XOR (GF addition) is never zero.
            *cell = gf_inv(i ^ (m + j) as u8);
        }
    }
    row
}

/// Encode `k` equal-length data shards into `m` parity shards.
pub fn rs_encode(k: usize, m: usize, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
    check_geometry(k, m)?;
    if data.len() != k || data.windows(2).any(|w| w[0].len() != w[1].len()) {
        return Err(RsError::ShardSizeMismatch);
    }
    let len = data[0].len();
    let mut parity = vec![vec![0u8; len]; m];
    for (i, p) in parity.iter_mut().enumerate() {
        let row = matrix_row(k, m, k + i);
        for (j, d) in data.iter().enumerate() {
            let c = row[j];
            for (pb, &db) in p.iter_mut().zip(d) {
                *pb ^= gf_mul(c, db);
            }
        }
    }
    Ok(parity)
}

/// Invert a k×k matrix over GF(256) by Gauss–Jordan elimination. The
/// matrices handed in are submatrices of `[I; C]` with C Cauchy, which are
/// always invertible; a singular input still returns an error rather than
/// panicking (defense against a caller passing duplicate shard indices).
fn invert(mut a: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = a.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let scale = gf_inv(a[col][col]);
        for j in 0..n {
            a[col][j] = gf_mul(a[col][j], scale);
            inv[col][j] = gf_mul(inv[col][j], scale);
        }
        for r in 0..n {
            if r == col || a[r][col] == 0 {
                continue;
            }
            let f = a[r][col];
            for j in 0..n {
                let (ac, ic) = (a[col][j], inv[col][j]);
                a[r][j] ^= gf_mul(f, ac);
                inv[r][j] ^= gf_mul(f, ic);
            }
        }
    }
    Some(inv)
}

/// Reconstruct every missing shard in place. `shards` holds the k+m shards
/// in index order, `None` marking erasures; on success every slot is
/// `Some` and data slots hold the original bytes exactly.
pub fn rs_reconstruct(
    k: usize,
    m: usize,
    shards: &mut [Option<Vec<u8>>],
) -> Result<(), RsError> {
    check_geometry(k, m)?;
    if shards.len() != k + m {
        return Err(RsError::ShardSizeMismatch);
    }
    let available: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_some()).collect();
    if available.len() < k {
        return Err(RsError::NotEnoughShards { available: available.len(), needed: k });
    }
    let len = shards[available[0]].as_ref().expect("available").len();
    if available.iter().any(|&i| shards[i].as_ref().expect("available").len() != len) {
        return Err(RsError::ShardSizeMismatch);
    }
    if (0..k).all(|i| shards[i].is_some()) {
        // Fast path: all data shards survive; recompute lost parity only.
        let data: Vec<Vec<u8>> =
            (0..k).map(|i| shards[i].as_ref().expect("data").clone()).collect();
        let parity = rs_encode(k, m, &data)?;
        for (i, p) in parity.into_iter().enumerate() {
            if shards[k + i].is_none() {
                shards[k + i] = Some(p);
            }
        }
        return Ok(());
    }
    // General path: decode the data from the first k surviving shards.
    let rows: Vec<usize> = available.iter().copied().take(k).collect();
    let sub: Vec<Vec<u8>> = rows.iter().map(|&r| matrix_row(k, m, r)).collect();
    let inv = invert(sub).ok_or(RsError::NotEnoughShards { available: rows.len(), needed: k })?;
    let mut data = vec![vec![0u8; len]; k];
    for (out_row, d) in inv.iter().zip(data.iter_mut()) {
        for (&c, &r) in out_row.iter().zip(&rows) {
            if c == 0 {
                continue;
            }
            let s = shards[r].as_ref().expect("available");
            for (db, &sb) in d.iter_mut().zip(s) {
                *db ^= gf_mul(c, sb);
            }
        }
    }
    let parity = rs_encode(k, m, &data)?;
    for (i, d) in data.into_iter().enumerate() {
        if shards[i].is_none() {
            shards[i] = Some(d);
        }
    }
    for (i, p) in parity.into_iter().enumerate() {
        if shards[k + i].is_none() {
            shards[k + i] = Some(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed;
        (0..k)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 33) as u8
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn gf_mul_matches_known_values() {
        assert_eq!(gf_mul(0, 7), 0);
        assert_eq!(gf_mul(1, 7), 7);
        assert_eq!(gf_mul(2, 0x80), 0x1d, "0x11d reduction");
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn any_k_subset_decodes_exactly() {
        let (k, m) = (4, 2);
        let data = mk_data(k, 97, 11);
        let parity = rs_encode(k, m, &data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        // Every way of losing exactly m shards must recover all of them.
        for a in 0..k + m {
            for b in a + 1..k + m {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs_reconstruct(k, m, &mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_deref(), Some(full[i].as_slice()), "lost ({a},{b}) slot {i}");
                }
            }
        }
    }

    #[test]
    fn more_than_m_losses_is_a_typed_error() {
        let (k, m) = (3, 2);
        let data = mk_data(k, 32, 5);
        let parity = rs_encode(k, m, &data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(&parity).cloned().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None;
        assert_eq!(
            rs_reconstruct(k, m, &mut shards),
            Err(RsError::NotEnoughShards { available: 2, needed: 3 })
        );
    }

    #[test]
    fn bad_geometry_and_mismatched_shards_are_rejected() {
        assert_eq!(rs_encode(0, 2, &[]), Err(RsError::BadGeometry { k: 0, m: 2 }));
        assert_eq!(
            rs_encode(200, 56, &vec![vec![0u8; 4]; 200]),
            Err(RsError::BadGeometry { k: 200, m: 56 })
        );
        assert_eq!(
            rs_encode(2, 1, &[vec![0u8; 4], vec![0u8; 5]]),
            Err(RsError::ShardSizeMismatch)
        );
        let mut uneven = vec![Some(vec![0u8; 4]), Some(vec![0u8; 5]), None];
        assert_eq!(rs_reconstruct(2, 1, &mut uneven), Err(RsError::ShardSizeMismatch));
        let e: Box<dyn std::error::Error> =
            Box::new(RsError::NotEnoughShards { available: 1, needed: 4 });
        assert_eq!(e.to_string(), "only 1 shards survive, 4 needed");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For random geometry, random data, and a random loss set: losing
        /// at most m shards always decodes back the exact original bytes,
        /// and losing more than m reports a typed error — the coder never
        /// panics and never returns wrong bytes.
        #[test]
        fn random_losses_decode_exactly_or_error_typed(
            k in 1usize..8,
            m in 1usize..5,
            len in 1usize..200,
            seed in any::<u64>(),
            loss_picks in proptest::collection::vec(any::<u64>(), 0..12),
        ) {
            let data: Vec<Vec<u8>> = {
                let mut state = seed | 1;
                (0..k)
                    .map(|_| {
                        (0..len)
                            .map(|_| {
                                state = state
                                    .wrapping_mul(6364136223846793005)
                                    .wrapping_add(1442695040888963407);
                                (state >> 33) as u8
                            })
                            .collect()
                    })
                    .collect()
            };
            let parity = rs_encode(k, m, &data).unwrap();
            let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            let mut lost = std::collections::BTreeSet::new();
            for pick in loss_picks {
                lost.insert((pick % (k + m) as u64) as usize);
            }
            for &i in &lost {
                shards[i] = None;
            }
            let result = rs_reconstruct(k, m, &mut shards);
            if lost.len() <= m {
                prop_assert!(result.is_ok(), "{result:?}");
                for (i, s) in shards.iter().enumerate() {
                    prop_assert_eq!(s.as_deref(), Some(full[i].as_slice()), "slot {}", i);
                }
            } else {
                prop_assert_eq!(
                    result,
                    Err(RsError::NotEnoughShards {
                        available: k + m - lost.len(),
                        needed: k,
                    })
                );
                // Surviving shards are untouched by the failed decode.
                for i in (0..k + m).filter(|i| !lost.contains(i)) {
                    prop_assert_eq!(shards[i].as_deref(), Some(full[i].as_slice()));
                }
            }
        }
    }
}
