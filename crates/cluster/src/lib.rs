//! Data-center model: nodes, network links with per-node transfer ledgers,
//! IP multicast, and a glusterfs-like striped + replicated parallel file
//! system — the environment of the paper's Section 4.4 experiment.
//!
//! The DAS-4 deployment the paper measures has 64 compute nodes and 4
//! storage nodes running glusterfs with two levels of striping and two of
//! replication, connected by 1 GbE and QDR InfiniBand. Figure 18 charges
//! every byte that reaches a compute node's NIC; this crate implements that
//! ledger plus the storage-side distribution of reads.

mod netsim;
mod parallelfs;

pub use netsim::{
    LinkKind, NetError, Network, NodeId, NodeRole, TrafficLedger, TransferReport, TransferShape,
};
pub use parallelfs::{GlusterConfig, GlusterVolume};
