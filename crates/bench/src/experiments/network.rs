//! Figure 18: cumulative network transfer at compute nodes during boot
//! storms, with and without Squirrel's caches, scaling nodes and VMs/node.

use crate::config::ExperimentConfig;
use crate::csvout::{gib, Table};
use squirrel_cluster::LinkKind;
use squirrel_core::{Squirrel, SquirrelConfig};
use std::sync::Arc;

/// One Figure 18 data point.
#[derive(Clone, Copy, Debug)]
pub struct TransferPoint {
    pub nodes: u32,
    pub vms_per_node: u32,
    pub with_caches: bool,
    /// Cumulative compute-node rx bytes (measured corpus scale).
    pub compute_rx_bytes: u64,
}

/// Run one boot storm: `nodes` compute nodes, `vms` VMs per node, each VM
/// booting a *different* image (the paper's hardest case). Returns compute
/// rx bytes.
pub fn boot_storm(
    cfg: &ExperimentConfig,
    nodes: u32,
    vms: u32,
    with_caches: bool,
) -> TransferPoint {
    let corpus = cfg.corpus();
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .storage_nodes(4)
            .link(LinkKind::QdrInfiniband)
            .build(),
        Arc::clone(&corpus),
    );
    let needed = (nodes as usize * vms as usize).min(corpus.len());
    if with_caches {
        for img in 0..needed as u32 {
            sq.register(img).expect("register");
        }
    }
    // Registration traffic is administrative; Figure 18 charges boot traffic.
    sq.network_mut().reset_ledgers();
    for node in 0..nodes {
        for v in 0..vms {
            let img = ((node as usize * vms as usize + v as usize) % needed.max(1)) as u32;
            let out = sq.boot(node, img).expect("boot");
            assert_eq!(out.warm, with_caches, "cache state must match scenario");
        }
    }
    TransferPoint {
        nodes,
        vms_per_node: vms,
        with_caches,
        compute_rx_bytes: sq.network().compute_rx_total(),
    }
}

/// The full Figure 18 grid.
pub fn run_fig18(cfg: &ExperimentConfig) -> Vec<TransferPoint> {
    let node_counts = [1u32, 4, 8, 16, 32, 64];
    let vm_counts = [1u32, 2, 4, 8];
    let proj = cfg.scale as f64; // bytes scale only (per-image volumes)
    let mut pts = Vec::new();
    let mut t = Table::new(&[
        "nodes",
        "w_caches_vm8_gib",
        "wo_caches_vm1_gib",
        "wo_caches_vm2_gib",
        "wo_caches_vm4_gib",
        "wo_caches_vm8_gib",
    ]);
    for &n in &node_counts {
        let with = boot_storm(cfg, n, 8, true);
        pts.push(with);
        let mut row = vec![n.to_string(), gib(with.compute_rx_bytes as f64 * proj)];
        for &v in &vm_counts {
            let wo = boot_storm(cfg, n, v, false);
            row.push(gib(wo.compute_rx_bytes as f64 * proj));
            pts.push(wo);
        }
        t.push(row);
    }
    t.print("Figure 18: cumulative network transfer of compute nodes (boot storm)");
    t.write(&cfg.out_dir, "fig18").expect("csv");
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squirrel_moves_zero_bytes_at_boot() {
        let p = boot_storm(&ExperimentConfig::smoke(), 3, 2, true);
        assert_eq!(p.compute_rx_bytes, 0, "warm boots are network-free");
    }

    #[test]
    fn without_caches_traffic_scales_with_vms() {
        let cfg = ExperimentConfig::smoke();
        let one = boot_storm(&cfg, 2, 1, false);
        let four = boot_storm(&cfg, 2, 4, false);
        assert!(one.compute_rx_bytes > 0);
        assert!(
            four.compute_rx_bytes > 2 * one.compute_rx_bytes,
            "{} vs {}",
            four.compute_rx_bytes,
            one.compute_rx_bytes
        );
    }

    #[test]
    fn traffic_scales_with_node_count() {
        let cfg = ExperimentConfig::smoke();
        let small = boot_storm(&cfg, 1, 2, false);
        let big = boot_storm(&cfg, 4, 2, false);
        assert!(big.compute_rx_bytes > small.compute_rx_bytes);
    }
}
