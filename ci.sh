#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — every
# dependency is in-tree (see the std-only policy in README.md / vendor/).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== examples (release) =="
for ex in quickstart node_churn elastic_scaling azure_fleet block_size_tuning; do
    echo "-- example: $ex"
    cargo run --release --quiet --example "$ex" > /dev/null
done

echo "ci.sh: all checks passed"
