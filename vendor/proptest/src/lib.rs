//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! Supports the `proptest!` test macro (with `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!` (weighted and unweighted),
//! range / tuple / `Just` / `.prop_map` / `collection::{vec, btree_set}`
//! strategies, and `any::<T>()` for primitives.
//!
//! Each generated test runs `cases` deterministic iterations from an RNG
//! seeded by the test's name, so failures reproduce across runs and thread
//! counts. There is no shrinking and no failure persistence — a failing case
//! reports its case number and the assertion message.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG (SplitMix64 seeded by FNV-1a of the name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for &b in name.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values (no shrinking).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
    }
}

/// Type-erased strategy (used by `prop_oneof!`).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<u128> {
    type Value = u128;

    fn new_value(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Whole-domain strategy for `T` (`any::<u8>()` etc.).
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted choice between boxed arms (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covers all picks")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vector of `elem` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().new_value(rng);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Set of `elem` values with a target size drawn from `size` (best
    /// effort when the element domain is smaller than the target).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().new_value(rng);
            let mut set = BTreeSet::new();
            for _ in 0..target.saturating_mul(16).max(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.new_value(rng));
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_fns! { $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_in_bounds() {
        let mut rng = crate::TestRng::from_name("t");
        for _ in 0..200 {
            let (a, b) = (0u8..3, 10usize..20).new_value(&mut rng);
            assert!(a < 3 && (10..20).contains(&b));
            let f = (-2.0f64..2.0).new_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_honours_weights_loosely() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::from_name("w");
        let hits = (0..1000).filter(|_| s.new_value(&mut rng)).count();
        assert!(hits > 700, "{hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(v in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
