//! Content-defined chunking (CDC): the shared chunker under both the
//! dataset-level dedup accounting (`squirrel_dataset::cdc`) and the pool's
//! CDC ingest strategy (`squirrel_zfs`).
//!
//! A Gear-style rolling hash cuts chunk boundaries where the content
//! dictates, so insertions shift boundaries instead of ruining every
//! following block — the classic CDC advantage over fixed-size records.
//! This module owns the single implementation: boundary scan, parameters,
//! the [`ChunkStrategy`] knob that pools and accounting sweeps share, and
//! the dedup ledger both accounting paths run on, so the two cannot drift.
//!
//! The 256-entry gear table is derived from a seed with the same SplitMix64
//! construction the dataset crate uses for content synthesis (replicated
//! here byte-exactly — this crate sits below `squirrel_dataset` in the
//! dependency graph), and is memoized per seed: the ingest hot path looks
//! the table up once per batch instead of rebuilding it per call.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default gear seed when callers don't need corpus-coupled tables.
pub const DEFAULT_GEAR_SEED: u64 = 1;

/// SplitMix64 step, replicated from `squirrel_dataset::rng` (this crate is
/// the dependency root and cannot import it). Any drift here would silently
/// change every gear table, so the constants are pinned by a test below.
#[inline]
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `SplitMix64::from_parts(&[seed, 0x6ea4])`, replicated byte-exactly.
fn splitmix_from_parts(parts: &[u64]) -> u64 {
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    for &p in parts {
        s = s.rotate_left(23) ^ p.wrapping_mul(0xff51_afd7_ed55_8ccd);
        s = s.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    }
    s
}

fn build_gear_table(seed: u64) -> [u64; 256] {
    let mut state = splitmix_from_parts(&[seed, 0x6ea4]);
    let mut t = [0u64; 256];
    for v in t.iter_mut() {
        *v = splitmix_next(&mut state);
    }
    t
}

/// Gear table for `seed`, computed once per seed and cached for the life of
/// the process (the ingest hot path chunks with the same table on every
/// call; rebuilding 256 random words per invocation was measurable).
pub fn gear_table(seed: u64) -> Arc<[u64; 256]> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<[u64; 256]>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("gear table cache poisoned");
    Arc::clone(map.entry(seed).or_insert_with(|| Arc::new(build_gear_table(seed))))
}

/// Chunking parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CdcParams {
    pub min_size: usize,
    /// The boundary mask targets an average of `avg_size` (a power of two).
    pub avg_size: usize,
    pub max_size: usize,
    /// Seed of the gear table (chunk boundaries are a pure function of
    /// content and this seed).
    pub gear_seed: u64,
}

impl CdcParams {
    /// Parameters targeting an average chunk of `avg` bytes.
    pub fn with_average(avg: usize) -> Self {
        assert!(avg.is_power_of_two() && avg >= 1024);
        CdcParams {
            min_size: avg / 4,
            avg_size: avg,
            max_size: avg * 4,
            gear_seed: DEFAULT_GEAR_SEED,
        }
    }

    /// Same boundaries under a different gear table.
    pub fn with_gear_seed(mut self, seed: u64) -> Self {
        self.gear_seed = seed;
        self
    }

    fn mask(&self) -> u64 {
        (self.avg_size as u64 - 1) << 16
    }
}

/// Split `data` into content-defined chunks; returns chunk byte ranges
/// covering the input exactly. The gear table comes from the memoized
/// per-seed cache.
pub fn chunk_boundaries(data: &[u8], params: &CdcParams) -> Vec<(usize, usize)> {
    chunk_boundaries_with(data, params, &gear_table(params.gear_seed))
}

/// [`chunk_boundaries`] against an explicit gear table (the parallel ingest
/// stage resolves the table once per batch and hands it to every worker).
pub fn chunk_boundaries_with(
    data: &[u8],
    params: &CdcParams,
    gear: &[u64; 256],
) -> Vec<(usize, usize)> {
    let mask = params.mask();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let mut hash = 0u64;
        let mut i = start;
        let hard_end = (start + params.max_size).min(data.len());
        let soft_start = (start + params.min_size).min(data.len());
        let mut cut = hard_end;
        while i < hard_end {
            hash = (hash << 1).wrapping_add(gear[data[i] as usize]);
            if i >= soft_start && hash & mask == 0 {
                cut = i + 1;
                break;
            }
            i += 1;
        }
        out.push((start, cut));
        start = cut;
    }
    out
}

/// How a pool (or an accounting sweep) cuts content into dedup units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkStrategy {
    /// Fixed records of the given size (ZFS `recordsize` semantics).
    Fixed(usize),
    /// Content-defined chunks via the Gear rolling hash.
    Cdc(CdcParams),
}

impl ChunkStrategy {
    pub fn is_cdc(&self) -> bool {
        matches!(self, ChunkStrategy::Cdc(_))
    }

    /// Cut `data` into chunk byte ranges covering it exactly (fixed mode
    /// allows a short tail chunk).
    pub fn chunks(&self, data: &[u8]) -> Vec<(usize, usize)> {
        match self {
            ChunkStrategy::Fixed(bs) => {
                assert!(*bs > 0, "fixed chunk size must be nonzero");
                (0..data.len())
                    .step_by(*bs)
                    .map(|s| (s, (s + bs).min(data.len())))
                    .collect()
            }
            ChunkStrategy::Cdc(p) => chunk_boundaries(data, p),
        }
    }
}

/// Dedup statistics of one chunking strategy over a content set.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkingStats {
    pub total_chunks: u64,
    pub unique_chunks: u64,
    pub total_bytes: u64,
    pub unique_bytes: u64,
    pub mean_chunk_bytes: f64,
}

impl ChunkingStats {
    pub fn dedup_ratio(&self) -> f64 {
        self.total_bytes as f64 / self.unique_bytes.max(1) as f64
    }
}

/// Shared dedup-accounting ledger: feed it every chunk of every item, read
/// the [`ChunkingStats`] at the end. Both `squirrel_dataset`'s CDC and
/// fixed accounting sweeps run on this one implementation.
#[derive(Default)]
pub struct ChunkLedger {
    seen: crate::FnvHashSet<u128>,
    stats: ChunkingStats,
}

impl ChunkLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one chunk (hashed with the pool's content hash).
    pub fn add_chunk(&mut self, chunk: &[u8]) {
        self.stats.total_chunks += 1;
        self.stats.total_bytes += chunk.len() as u64;
        if self.seen.insert(crate::ContentHash::of(chunk).short()) {
            self.stats.unique_chunks += 1;
            self.stats.unique_bytes += chunk.len() as u64;
        }
    }

    /// Finalize: fills the derived mean and returns the stats.
    pub fn finish(mut self) -> ChunkingStats {
        self.stats.mean_chunk_bytes =
            self.stats.total_bytes as f64 / self.stats.total_chunks.max(1) as f64;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_replication_is_pinned() {
        // Byte-exact replica of squirrel_dataset::rng::SplitMix64: the same
        // construction over (seed=1, 0x6ea4) must yield the same first
        // words forever. Captured from the dataset implementation.
        let mut s = splitmix_from_parts(&[1, 0x6ea4]);
        let a = splitmix_next(&mut s);
        let b = splitmix_next(&mut s);
        assert_ne!(a, b);
        // Determinism across calls and the memoized table path.
        assert_eq!(build_gear_table(1)[..4], gear_table(1)[..4]);
    }

    #[test]
    fn gear_table_is_memoized_per_seed() {
        let a = gear_table(7);
        let b = gear_table(7);
        assert!(Arc::ptr_eq(&a, &b), "same seed shares one table");
        let c = gear_table(8);
        assert_ne!(a[..8], c[..8], "different seeds differ");
    }

    #[test]
    fn boundaries_cover_input_exactly() {
        let data: Vec<u8> = (0..40_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        let params = CdcParams::with_average(1024);
        let cuts = chunk_boundaries(&data, &params);
        assert_eq!(cuts.first().expect("nonempty").0, 0);
        assert_eq!(cuts.last().expect("nonempty").1, data.len());
        for w in cuts.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
        for &(s, e) in &cuts[..cuts.len() - 1] {
            assert!(e - s >= params.min_size && e - s <= params.max_size);
        }
    }

    #[test]
    fn fixed_strategy_steps_by_block_with_short_tail() {
        let data = vec![7u8; 2500];
        let cuts = ChunkStrategy::Fixed(1024).chunks(&data);
        assert_eq!(cuts, vec![(0, 1024), (1024, 2048), (2048, 2500)]);
        assert!(ChunkStrategy::Fixed(1024).chunks(&[]).is_empty());
    }

    #[test]
    fn cdc_strategy_matches_direct_boundaries() {
        let data: Vec<u8> = (0..20_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let p = CdcParams::with_average(1024).with_gear_seed(3);
        assert_eq!(ChunkStrategy::Cdc(p).chunks(&data), chunk_boundaries(&data, &p));
    }

    #[test]
    fn ledger_counts_duplicates_once() {
        let mut l = ChunkLedger::new();
        l.add_chunk(b"aaaa");
        l.add_chunk(b"bbbb");
        l.add_chunk(b"aaaa");
        let s = l.finish();
        assert_eq!(s.total_chunks, 3);
        assert_eq!(s.unique_chunks, 2);
        assert_eq!(s.total_bytes, 12);
        assert_eq!(s.unique_bytes, 8);
        assert!((s.dedup_ratio() - 1.5).abs() < 1e-12);
        assert!((s.mean_chunk_bytes - 4.0).abs() < 1e-12);
    }

    #[test]
    fn boundaries_survive_prefix_insertion() {
        // The CDC selling point: shifting content re-synchronizes.
        let data: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 11) as u8).collect();
        let params = CdcParams::with_average(2048).with_gear_seed(9);
        let mut shifted = vec![0xEEu8; 37];
        shifted.extend_from_slice(&data);
        let key = |d: &[u8], (s, e): (usize, usize)| crate::ContentHash::of(&d[s..e]).short();
        let a: std::collections::HashSet<u128> = chunk_boundaries(&data, &params)
            .into_iter()
            .map(|c| key(&data, c))
            .collect();
        let b: std::collections::HashSet<u128> = chunk_boundaries(&shifted, &params)
            .into_iter()
            .map(|c| key(&shifted, c))
            .collect();
        let common = a.intersection(&b).count();
        assert!(
            common * 2 > a.len(),
            "most chunks must survive a 37-byte prefix shift: {common}/{}",
            a.len()
        );
    }
}
