//! Pool scrubbing: ZFS's end-to-end integrity walk.
//!
//! Every stored record is decompressed and re-hashed; a mismatch between
//! the recomputed digest and the record's content-address key means the
//! stored bytes no longer are what the dedup table says they are (bit rot,
//! torn write, or a buggy codec). Squirrel inherits this for free by
//! running on a checksumming store — replicated ccVolumes make repair as
//! easy as re-fetching from any peer.

use crate::ddt::BlockKey;
use crate::pool::ZPool;
use squirrel_compress::{compress, decompress};
use squirrel_hash::ContentHash;

/// Result of one scrub pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Unique records examined.
    pub blocks_checked: u64,
    /// Bytes decompressed and hashed.
    pub bytes_verified: u64,
    /// Records whose content no longer matches their key.
    pub corrupt: Vec<BlockKey>,
}

impl ScrubReport {
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

impl ZPool {
    /// Walk every unique record, decompress it, and verify its digest
    /// matches its dedup key. Requires a data-retaining pool.
    pub fn scrub(&self) -> ScrubReport {
        let bs = self.block_size();
        let mut report = ScrubReport::default();
        for (key, entry) in self.ddt().iter() {
            let frame = entry
                .data
                .as_ref()
                .expect("scrub requires a data-retaining pool");
            let data = decompress(frame, bs);
            report.blocks_checked += 1;
            report.bytes_verified += data.len() as u64;
            if ContentHash::of(&data).short() != *key {
                report.corrupt.push(*key);
            }
        }
        report.corrupt.sort_unstable();
        self.meters.scrub_blocks.add(report.blocks_checked);
        self.meters.scrub_bytes.add(report.bytes_verified);
        report
    }

    /// Test hook: overwrite the stored payload of `key` with a validly
    /// framed record of *different* content, simulating silent on-disk
    /// corruption that only a checksum walk can catch. Returns `false` if
    /// the key is not present.
    pub fn inject_corruption(&mut self, key: BlockKey) -> bool {
        let codec = self.config().codec;
        let bs = self.block_size();
        let Some(entry) = self.ddt_mut_entry(key) else {
            return false;
        };
        // Deterministic garbage derived from the key.
        let mut garbage = vec![0u8; bs];
        for (i, b) in garbage.iter_mut().enumerate() {
            *b = (key as u8).wrapping_add(i as u8).wrapping_mul(31) | 1;
        }
        let frame = compress(codec, &garbage);
        entry.psize = frame.len() as u32;
        entry.data = Some(frame.into());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use squirrel_compress::Codec;

    fn pool_with_data() -> (ZPool, Vec<BlockKey>) {
        let mut p = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        p.create_file("f");
        for i in 0..6u8 {
            p.write_block("f", i as u64, &vec![i + 1; 512]);
        }
        let keys: Vec<BlockKey> = p
            .block_refs("f")
            .expect("file")
            .into_iter()
            .flatten()
            .map(|r| r.key)
            .collect();
        (p, keys)
    }

    #[test]
    fn clean_pool_scrubs_clean() {
        let (p, keys) = pool_with_data();
        let r = p.scrub();
        assert!(r.is_clean());
        assert_eq!(r.blocks_checked, keys.len() as u64);
        assert_eq!(r.bytes_verified, keys.len() as u64 * 512);
    }

    #[test]
    fn injected_corruption_is_found() {
        let (mut p, keys) = pool_with_data();
        assert!(p.inject_corruption(keys[2]));
        assert!(p.inject_corruption(keys[4]));
        let r = p.scrub();
        assert_eq!(r.corrupt.len(), 2);
        assert!(r.corrupt.contains(&keys[2]));
        assert!(r.corrupt.contains(&keys[4]));
    }

    #[test]
    fn inject_on_missing_key_is_noop() {
        let (mut p, _) = pool_with_data();
        assert!(!p.inject_corruption(0xdead_beef));
        assert!(p.scrub().is_clean());
    }

    #[test]
    fn recv_then_scrub_guards_the_propagation_path() {
        // A replica built purely from send streams must scrub clean; a
        // corrupted replica must not.
        let (mut src, keys) = pool_with_data();
        src.snapshot("s1");
        let mut dst = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        dst.recv(&src.send_between(None, "s1").expect("send")).expect("recv");
        assert!(dst.scrub().is_clean());
        dst.inject_corruption(keys[0]);
        assert_eq!(dst.scrub().corrupt, vec![keys[0]]);
    }
}
