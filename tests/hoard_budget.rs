//! Hoard budgets end to end through the public facade: per-node disk/DDT
//! capacity enforcement, popularity-aware whole-cache eviction, degraded
//! boots from shared storage, and on-demand re-hoarding.

use squirrel_repro::core::{HoardBudget, Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

const IMAGES: u32 = 6;
const NODES: u32 = 3;

fn system(budget: HoardBudget, seed: u64) -> Squirrel {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: IMAGES,
        scale: 4096,
        ..CorpusConfig::azure(4096, seed)
    }));
    Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(NODES)
            .block_size(16 * 1024)
            .hoard_budget(budget)
            .build(),
        corpus,
    )
}

/// Per-node footprint once the whole catalog is hoarded, measured on an
/// unlimited probe over the same corpus.
fn full_footprint(seed: u64) -> (u64, u64) {
    let mut probe = system(HoardBudget::unlimited(), seed);
    for img in 0..IMAGES {
        probe.register(img).expect("register");
    }
    let s = probe.ccvol_stats(0).expect("node");
    (s.total_disk_bytes(), s.ddt_memory_bytes)
}

#[test]
fn starved_budget_degrades_the_catalog_but_never_wedges() {
    // A budget smaller than any single cache: every cache is evicted,
    // every image still boots — degraded, from shared storage.
    let mut sq = system(HoardBudget { disk_bytes: 1, ddt_mem_bytes: 1 }, 5);
    for img in 0..IMAGES {
        sq.register(img).expect("register");
    }
    let report = sq.enforce_hoard_budgets();
    assert_eq!(report.nodes_over_budget, NODES);
    assert_eq!(report.evictions.len(), (IMAGES * NODES) as usize);
    assert!(report.is_within_budget(), "{report:?}");
    for node in 0..NODES {
        assert_eq!(sq.ccvol_file_count(node), Some(0));
        for img in 0..IMAGES {
            let out = sq.boot(node, img).expect("boot survives eviction");
            assert!(!out.warm && out.degraded, "node {node} image {img}: {out:?}");
            assert!(out.net_bytes > 0, "degraded boots hit the network");
        }
    }
    // Deliberate evictions are not replication lag.
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn budget_equal_to_footprint_keeps_every_cache() {
    let (disk, ddt) = full_footprint(5);
    let mut sq = system(HoardBudget { disk_bytes: disk, ddt_mem_bytes: ddt }, 5);
    for img in 0..IMAGES {
        sq.register(img).expect("register");
    }
    let report = sq.enforce_hoard_budgets();
    assert!(report.evictions.is_empty(), "{report:?}");
    assert_eq!(report.nodes_over_budget, 0);
    for node in 0..NODES {
        for img in 0..IMAGES {
            assert!(sq.boot(node, img).expect("boot").warm);
        }
    }
}

#[test]
fn eviction_is_least_popular_first_and_rehoard_restores_warm_boots() {
    let (disk, _) = full_footprint(5);
    let mut sq = system(HoardBudget { disk_bytes: disk - 1, ddt_mem_bytes: 0 }, 5);
    for img in 0..IMAGES {
        sq.register(img).expect("register");
    }
    // Popularity skew: image i boots IMAGES - i times (image 0 most popular).
    for img in 0..IMAGES {
        for _ in 0..(IMAGES - img) {
            sq.boot(img % NODES, img).expect("skew boot");
        }
    }
    let before = sq.ccvol_stats(0).expect("node");
    let report = sq.enforce_hoard_budgets();
    assert!(!report.evictions.is_empty());
    assert!(report.is_within_budget(), "{report:?}");
    // Per node, evictions run least-popular-first (ascending popularity).
    for node in 0..NODES {
        let pops: Vec<u64> = report
            .evictions
            .iter()
            .filter(|e| e.node == node)
            .map(|e| e.popularity)
            .collect();
        assert!(pops.windows(2).all(|w| w[0] <= w[1]), "node {node}: {pops:?}");
    }
    // The least popular image on node 0 went first there.
    let first_evicted =
        report.evictions.iter().find(|e| e.node == 0).expect("node 0 evicts").image;
    assert_eq!(first_evicted, IMAGES - 1, "least-booted image goes first");

    // Re-hoard on demand: warm boots come back, space accounting matches
    // the first hoard (the purge also slimmed old snapshots, so only the
    // live footprint is compared).
    let evicted_on_0: Vec<u32> = report
        .evictions
        .iter()
        .filter(|e| e.node == 0)
        .map(|e| e.image)
        .collect();
    for &img in &evicted_on_0 {
        assert!(!sq.boot(0, img).expect("boot").warm);
        let re = sq.rehoard_cache(0, img).expect("rehoard");
        assert!(re.wire_bytes > 0 && re.blocks > 0);
        let out = sq.boot(0, img).expect("boot");
        assert!(out.warm && !out.degraded, "image {img}: {out:?}");
    }
    let after = sq.ccvol_stats(0).expect("node");
    assert_eq!(after.logical_bytes, before.logical_bytes);
    assert_eq!(after.unique_blocks, before.unique_blocks);
    assert_eq!(after.physical_bytes, before.physical_bytes);
    assert_eq!(after.ddt_memory_bytes, before.ddt_memory_bytes);
    // Re-hoarding pushed the node back over budget; enforcement settles it
    // again, deterministically.
    let again = sq.enforce_hoard_budgets();
    assert!(again.is_within_budget());
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn enforcement_and_metrics_are_thread_invariant() {
    let (disk, _) = full_footprint(9);
    let run = |threads: usize| {
        let corpus = Arc::new(Corpus::generate(CorpusConfig {
            n_images: IMAGES,
            scale: 4096,
            ..CorpusConfig::azure(4096, 9)
        }));
        let mut sq = Squirrel::new(
            SquirrelConfig::builder()
                .compute_nodes(NODES)
                .block_size(16 * 1024)
                .threads(threads)
                .hoard_budget(HoardBudget { disk_bytes: disk / 2, ddt_mem_bytes: 0 })
                .build(),
            corpus,
        );
        for img in 0..IMAGES {
            sq.register(img).expect("register");
        }
        sq.boot(0, 2).expect("boot");
        let storm = sq.boot_storm(1, 5).expect("storm");
        let report = sq.enforce_hoard_budgets();
        (report, storm.read_checksum, sq.metrics().snapshot())
    };
    let reference = run(1);
    assert!(!reference.0.evictions.is_empty());
    for threads in [2, 8] {
        assert_eq!(run(threads), reference, "threads={threads}");
    }
}

#[test]
fn replication_repair_respects_budget_evictions() {
    let (disk, _) = full_footprint(5);
    let mut sq = system(HoardBudget { disk_bytes: disk / 2, ddt_mem_bytes: 0 }, 5);
    for img in 0..IMAGES {
        sq.register(img).expect("register");
    }
    let report = sq.enforce_hoard_budgets();
    assert!(!report.evictions.is_empty());
    // Evicted caches are exempt from the replication invariant, so repair
    // has nothing to do and must not resurrect them.
    assert!(sq.check_replication().is_consistent());
    let sync = sq.repair_replication();
    assert_eq!(sync.repaired, 0, "{sync:?}");
    let still = sq.enforce_hoard_budgets();
    assert!(still.evictions.is_empty(), "repair resurrected caches: {still:?}");
}
