//! ZFS-pool storage experiments: Figures 8, 9, 10 (disk / DDT-disk /
//! DDT-memory vs block size) and Figure 13 (incremental growth).

use crate::config::{ExperimentConfig, ZFS_BS_SWEEP};
use crate::csvout::{gib, mib, Table};
use squirrel_compress::Codec;
use squirrel_dataset::Corpus;
use squirrel_zfs::{PoolConfig, SpaceStats, ZPool};

/// Which content set to store into the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreSet {
    Images,
    Caches,
}

/// Store the whole corpus (images or caches) into a fresh accounting-only
/// pool at `block_size` and return its stats.
pub fn store_corpus(corpus: &Corpus, set: StoreSet, block_size: usize) -> SpaceStats {
    let mut pool = ZPool::new(PoolConfig::new(block_size, Codec::Gzip(6)).accounting_only());
    for img in corpus.iter() {
        let name = format!("f-{}", img.id());
        match set {
            StoreSet::Images => {
                pool.import_file(&name, img.blocks(block_size), img.nonzero_bytes());
            }
            StoreSet::Caches => {
                let cache = img.cache();
                pool.import_file(&name, cache.blocks(block_size), cache.bytes());
            }
        }
    }
    pool.stats()
}

/// Incremental growth: stats snapshot after each added image/cache
/// (Figure 13's series).
pub fn store_incremental(corpus: &Corpus, set: StoreSet, block_size: usize) -> Vec<SpaceStats> {
    let mut pool = ZPool::new(PoolConfig::new(block_size, Codec::Gzip(6)).accounting_only());
    let mut out = Vec::with_capacity(corpus.len());
    for img in corpus.iter() {
        let name = format!("f-{}", img.id());
        match set {
            StoreSet::Images => {
                pool.import_file(&name, img.blocks(block_size), img.nonzero_bytes());
            }
            StoreSet::Caches => {
                let cache = img.cache();
                pool.import_file(&name, cache.blocks(block_size), cache.bytes());
            }
        }
        out.push(pool.stats());
    }
    out
}

/// Figures 8, 9 and 10 share one sweep: store both sets at every block size.
pub fn run_fig8_9_10(cfg: &ExperimentConfig) -> Vec<(usize, SpaceStats, SpaceStats)> {
    let corpus = cfg.corpus();
    let proj = cfg.projection();
    let mut rows = Vec::new();
    for &bs in &ZFS_BS_SWEEP {
        let imgs = store_corpus(&corpus, StoreSet::Images, bs);
        let caches = store_corpus(&corpus, StoreSet::Caches, bs);
        rows.push((bs, imgs, caches));
    }

    let mut f8 = Table::new(&[
        "block_kb",
        "images_disk_gib_proj",
        "caches_disk_gib_proj",
        "images_disk_mib_meas",
        "caches_disk_mib_meas",
    ]);
    let mut f9 = Table::new(&["block_kb", "images_ddt_disk_gib_proj", "caches_ddt_disk_gib_proj"]);
    let mut f10 = Table::new(&["block_kb", "images_ddt_mem_gib_proj", "caches_ddt_mem_gib_proj"]);
    for (bs, imgs, caches) in &rows {
        f8.push(vec![
            (bs / 1024).to_string(),
            gib(imgs.total_disk_bytes() as f64 * proj),
            gib(caches.total_disk_bytes() as f64 * proj),
            mib(imgs.total_disk_bytes() as f64),
            mib(caches.total_disk_bytes() as f64),
        ]);
        f9.push(vec![
            (bs / 1024).to_string(),
            gib(imgs.ddt_disk_bytes as f64 * proj),
            gib(caches.ddt_disk_bytes as f64 * proj),
        ]);
        f10.push(vec![
            (bs / 1024).to_string(),
            gib(imgs.ddt_memory_bytes as f64 * proj),
            gib(caches.ddt_memory_bytes as f64 * proj),
        ]);
    }
    f8.print("Figure 8: disk consumption with dedup + gzip-6");
    f9.print("Figure 9: dedup table size on disk");
    f10.print("Figure 10: memory consumption of dedup tables");
    f8.write(&cfg.out_dir, "fig8").expect("csv");
    f9.write(&cfg.out_dir, "fig9").expect("csv");
    f10.write(&cfg.out_dir, "fig10").expect("csv");
    rows
}

/// Figure 13: iterative adds at 64 KiB for both sets.
pub fn run_fig13(cfg: &ExperimentConfig) -> (Vec<SpaceStats>, Vec<SpaceStats>) {
    let corpus = cfg.corpus();
    let bs = 64 * 1024;
    let caches = store_incremental(&corpus, StoreSet::Caches, bs);
    let images = store_incremental(&corpus, StoreSet::Images, bs);
    let proj = cfg.projection();
    let mut t = Table::new(&[
        "n",
        "caches_disk_gib_proj",
        "images_disk_gib_proj",
        "caches_mem_mib_proj",
        "images_mem_mib_proj",
    ]);
    for (i, (c, im)) in caches.iter().zip(&images).enumerate() {
        t.push(vec![
            (i + 1).to_string(),
            gib(c.total_disk_bytes() as f64 * proj),
            gib(im.total_disk_bytes() as f64 * proj),
            mib(c.ddt_memory_bytes as f64 * proj),
            mib(im.ddt_memory_bytes as f64 * proj),
        ]);
    }
    t.print("Figure 13: resource consumption when iteratively adding VMIs or caches (64 KiB)");
    t.write(&cfg.out_dir, "fig13").expect("csv");
    (caches, images)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> std::sync::Arc<Corpus> {
        ExperimentConfig::smoke().corpus()
    }

    #[test]
    fn smaller_blocks_mean_more_ddt_entries() {
        let c = corpus();
        let small = store_corpus(&c, StoreSet::Caches, 4096);
        let large = store_corpus(&c, StoreSet::Caches, 65536);
        assert!(small.unique_blocks > large.unique_blocks);
        assert!(small.ddt_memory_bytes > large.ddt_memory_bytes);
        assert!(small.ddt_disk_bytes > large.ddt_disk_bytes);
    }

    #[test]
    fn images_consume_more_than_caches() {
        let c = corpus();
        let imgs = store_corpus(&c, StoreSet::Images, 16384);
        let caches = store_corpus(&c, StoreSet::Caches, 16384);
        assert!(imgs.total_disk_bytes() > caches.total_disk_bytes());
        assert!(imgs.ddt_memory_bytes > caches.ddt_memory_bytes);
    }

    #[test]
    fn incremental_series_is_monotone() {
        let c = corpus();
        let series = store_incremental(&c, StoreSet::Caches, 16384);
        assert_eq!(series.len(), c.len());
        for w in series.windows(2) {
            assert!(w[1].total_disk_bytes() >= w[0].total_disk_bytes());
            assert!(w[1].ddt_memory_bytes >= w[0].ddt_memory_bytes);
        }
    }

    #[test]
    fn cache_growth_slope_flattens_relative_to_images() {
        // Figure 13's key visual: cache slopes much shallower than images.
        let c = corpus();
        let caches = store_incremental(&c, StoreSet::Caches, 16384);
        let images = store_incremental(&c, StoreSet::Images, 16384);
        let growth = |s: &[SpaceStats]| {
            let tail = s.last().expect("nonempty").total_disk_bytes() as f64;
            let head = s[s.len() / 2].total_disk_bytes() as f64;
            tail - head
        };
        // Normalize by logical volume: caches are smaller overall, so compare
        // marginal growth per logical byte.
        let cache_rel = growth(&caches) / caches.last().expect("nonempty").logical_bytes as f64;
        let image_rel = growth(&images) / images.last().expect("nonempty").logical_bytes as f64;
        assert!(
            cache_rel < image_rel,
            "cache marginal growth {cache_rel} vs images {image_rel}"
        );
    }
}
