//! Staged, deterministic parallel ingestion.
//!
//! [`ZPool::write_block`] interleaves three very different costs: a zero
//! scan, a SHA-256 digest, and (for new blocks) a compression pass — all
//! CPU-bound and independent per block — with dedup-table and file-table
//! updates that must stay serial. This module splits the two: a *prepare*
//! phase fans the pure per-block work out over the pool's persistent
//! workers ([`squirrel_hash::par::WorkerPool`]), and a *commit* phase
//! applies the prepared plan in block order on the caller's thread.
//!
//! Hot-path structure (each stage wall-timed under a journal-quiet
//! `zpool_ingest_*` timer):
//!
//! 1. **prepare** (parallel, fused) — zero-scan + SHA-256 + DDT probe in
//!    one pass per block. The zero probe early-exits at the first nonzero
//!    cache line and the sharded DDT serves lock-free `&self` lookups, so
//!    the whole per-block cost is essentially the hash.
//! 2. **probe** (serial) — first-occurrence scan over the prepared keys,
//!    fixing each batch-new key's representative block.
//! 3. **compress** (parallel) — one compression per new unique key, with
//!    codec dispatch hoisted out of the loop
//!    ([`squirrel_compress::Compressor`]).
//! 4. **commit** (serial, batched) — DDT inserts in first-occurrence order
//!    draining the prepared frames with a cursor (no per-block map
//!    lookups), pointer table pre-sized once, shards pre-reserved, and
//!    meters updated with one `add(n)` per counter per batch.
//!
//! Determinism contract: for any `threads` setting (including the serial
//! [`ZPool::import_file`] path), the resulting pool state is bit-identical —
//! same DDT entries, same physical allocation order (the append-only
//! allocator assigns offsets in first-occurrence order, which commit
//! preserves), same file tables, same send-stream bytes. Compression runs
//! exactly once per batch-new unique key, mirroring the serial path's
//! lazy `add_ref` closure.

use crate::config::{ChunkStrategy, DedupMode};
use crate::ddt::{BlockKey, SharedPayload};
use crate::pool::{CdcChunk, FileTable, ZPool};
use squirrel_compress::Compressor;
use squirrel_hash::cdc::{chunk_boundaries_with, gear_table, CdcParams};
use squirrel_hash::{ContentHash, FnvHashSet};
use std::sync::Arc;

/// A prepared DDT payload: compressed size plus the frame itself (absent in
/// accounting-only pools) — exactly what `DedupTable::add_ref` consumes.
type PreparedFrame = (u32, Option<SharedPayload>);

/// One content-defined chunk out of the parallel boundary scan: its byte
/// range within the run buffer, and `None` for all-zero chunks (elided as
/// holes) or `(key, already-in-DDT)` otherwise.
type ScannedChunk = (usize, usize, Option<(BlockKey, bool)>);

impl ZPool {
    /// Parallel counterpart of [`ZPool::import_file`]: import `blocks` as
    /// file `name` (replacing any existing file), using the pool's
    /// configured ingestion thread count. Each block must be exactly
    /// `block_size` bytes (callers zero-pad tails). The final logical
    /// length is set to `logical_len`, as in the serial path.
    pub fn import_file_parallel(&mut self, name: &str, blocks: &[Vec<u8>], logical_len: u64) {
        let data: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let idxs: Vec<u64> = (0..blocks.len() as u64).collect();
        self.ingest(name, &idxs, &data, Some(logical_len));
    }

    /// Parallel import of sparse `(block_index, data)` pairs (the register
    /// path's copy-on-read cache shape). Indices must be strictly
    /// increasing; unmentioned indices become holes. The logical length is
    /// block-granular, matching a serial [`ZPool::write_block`] replay.
    /// Generic over the payload container so both owned (`Box<[u8]>`,
    /// `Vec<u8>`) and shared (`Arc<[u8]>`) blocks import without copying.
    pub fn import_blocks_parallel<B: AsRef<[u8]>>(&mut self, name: &str, blocks: &[(u64, B)]) {
        debug_assert!(
            blocks.windows(2).all(|w| w[0].0 < w[1].0),
            "sparse import requires strictly increasing block indices"
        );
        let data: Vec<&[u8]> = blocks.iter().map(|(_, d)| d.as_ref()).collect();
        let idxs: Vec<u64> = blocks.iter().map(|(i, _)| *i).collect();
        self.ingest(name, &idxs, &data, None);
    }

    /// The shared staged pipeline. `idxs[j]` is the file block index of
    /// `data[j]`; both are in ascending block order. Dispatches on the
    /// pool's [`ChunkStrategy`], and finishes with a
    /// [`ZPool::reverse_dedup_pass`] under [`DedupMode::Reverse`].
    fn ingest(&mut self, name: &str, idxs: &[u64], data: &[&[u8]], logical_len: Option<u64>) {
        match self.config().chunking {
            ChunkStrategy::Fixed(_) => self.ingest_fixed(name, idxs, data, logical_len),
            ChunkStrategy::Cdc(params) => self.ingest_cdc(name, idxs, data, logical_len, params),
        }
        if self.config().dedup_mode == DedupMode::Reverse {
            self.reverse_dedup_pass(name);
        }
    }

    /// The fixed-record four-stage pipeline (bit-identical to a serial
    /// [`ZPool::write_block`] replay at any thread count).
    fn ingest_fixed(&mut self, name: &str, idxs: &[u64], data: &[&[u8]], logical_len: Option<u64>) {
        let cfg = *self.config();
        for b in data {
            assert_eq!(b.len(), cfg.block_size, "unaligned write");
        }
        // Replace the file first so any releases from the old incarnation
        // land before the fused prepare stage probes the DDT.
        self.create_file(name);

        // Stage 1 "prepare" (parallel, fused): zero-scan + hash + DDT probe
        // in one pass per block on the persistent workers. The probe reads
        // the pre-batch DDT through `&self` shard lookups; `known` records
        // whether the key already had an entry before this batch.
        let keys: Vec<Option<(BlockKey, bool)>> = {
            let _t = self.meters.metrics.timer("zpool_ingest_prepare");
            let ddt = self.ddt();
            self.worker_pool().parallel_map(data, |_j, b| {
                ContentHash::of_nonzero(b).map(|h| {
                    let k = h.short();
                    (k, ddt.get(&k).is_some())
                })
            })
        };

        // Stage 2 "probe" (serial): first-occurrence scan for keys new to
        // the DDT. Scanning in block order fixes each new key's
        // representative block and, later, its physical allocation slot.
        let mut new_unique: Vec<(BlockKey, usize)> = Vec::new();
        {
            let _t = self.meters.metrics.timer("zpool_ingest_probe");
            let mut seen: FnvHashSet<BlockKey> = FnvHashSet::default();
            for (j, key) in keys.iter().enumerate() {
                if let Some((k, known)) = *key {
                    if !known && seen.insert(k) {
                        new_unique.push((k, j));
                    }
                }
            }
        }

        // Stage 3 "compress" (parallel, pure): compress one representative
        // per new unique key — exactly the work the serial path's lazy
        // `add_ref` closure performs, once per key — with codec dispatch
        // resolved once per batch instead of once per block.
        let mut prepared: Vec<(BlockKey, PreparedFrame)> = {
            let _t = self.meters.metrics.timer("zpool_ingest_compress");
            let compressor = Compressor::new(cfg.codec);
            self.worker_pool().parallel_map(&new_unique, |_j, &(k, rep)| {
                let frame = compressor.compress(data[rep]);
                let psize = frame.len() as u32;
                (k, (psize, cfg.retain_data.then(|| frame.into())))
            })
        };

        // Stage 4 "commit" (serial, batched): apply in block order. DDT
        // entries appear in first-occurrence order, so the append-only
        // physical allocator reproduces the serial layout exactly — and
        // because `prepared` is *also* in first-occurrence order, commit
        // drains it with a plain cursor instead of per-block map removals.
        // Pointer table and DDT shards are pre-sized once from the scan;
        // meters take one batched `add` per counter.
        let _t = self.meters.metrics.timer("zpool_ingest_commit");
        let bs = cfg.block_size as u64;
        self.ddt_mut().reserve(prepared.len());
        let mut ptrs: Vec<Option<BlockKey>> =
            vec![None; idxs.last().map(|&i| i as usize + 1).unwrap_or(0)];
        let mut next = 0usize;
        let mut zeros = 0u64;
        let mut misses = 0u64;
        let mut compress_out = 0u64;
        for (j, key) in keys.iter().enumerate() {
            if let Some((k, _)) = *key {
                let was_new = self.ddt_mut().add_ref(k, || {
                    let (pk, (psize, payload)) = &mut prepared[next];
                    debug_assert_eq!(*pk, k, "prepared drains in first-occurrence order");
                    next += 1;
                    (*psize, cfg.block_size as u32, payload.take())
                });
                if was_new {
                    misses += 1;
                    let psize = prepared[next - 1].1 .0 as u64;
                    compress_out += psize;
                    self.meters.compressed_block_bytes.observe(psize);
                }
                ptrs[idxs[j] as usize] = Some(k);
            } else {
                zeros += 1;
            }
        }
        debug_assert_eq!(next, prepared.len(), "every prepared frame committed");
        let n = data.len() as u64;
        self.meters.ingest_blocks.add(n);
        self.meters.ingest_bytes.add(n * bs);
        self.meters.zero_blocks.add(zeros);
        self.meters.ddt_hits.add(n - zeros - misses);
        self.meters.ddt_misses.add(misses);
        self.meters.compress_in_bytes.add(misses * bs);
        self.meters.compress_out_bytes.add(compress_out);
        let mut len = idxs.last().map(|&i| (i + 1) * bs).unwrap_or(0);
        if let Some(l) = logical_len {
            len = l;
        }
        self.files_mut()
            .insert(name.to_string(), FileTable { ptrs: Arc::new(ptrs), chunks: None, len });
    }

    /// The CDC pipeline: same staged shape as
    /// [`ingest_fixed`](Self::ingest_fixed), but stage 1 also runs the Gear
    /// boundary scan on the workers, cutting each physically contiguous run
    /// of input blocks into content-defined chunks that then flow through
    /// the identical probe → compress → commit path. Chunk boundaries, key
    /// order, and physical allocation depend only on content, so the result
    /// is bit-identical at any thread count.
    fn ingest_cdc(
        &mut self,
        name: &str,
        idxs: &[u64],
        data: &[&[u8]],
        logical_len: Option<u64>,
        params: CdcParams,
    ) {
        let cfg = *self.config();
        for b in data {
            assert_eq!(b.len(), cfg.block_size, "unaligned write");
        }
        self.create_file(name);
        let bs = cfg.block_size as u64;

        // Contiguous runs of block indices: CDC must scan unbroken logical
        // byte ranges (a gap in a sparse import is a hole, and a chunk never
        // spans one).
        let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
        for j in 0..idxs.len() {
            match runs.last_mut() {
                Some(r) if idxs[j] == idxs[r.end - 1] + 1 => r.end = j + 1,
                _ => runs.push(j..j + 1),
            }
        }

        // Stage 1 "prepare" (parallel, fused): per run, concatenate the
        // blocks, Gear-scan the boundaries (memoized gear table, resolved
        // once per batch), then zero-scan + hash + DDT-probe each chunk.
        let gear = gear_table(params.gear_seed);
        let scanned: Vec<(Vec<u8>, Vec<ScannedChunk>)> = {
            let _t = self.meters.metrics.timer("zpool_ingest_prepare");
            let ddt = self.ddt();
            self.worker_pool().parallel_map(&runs, |_r, run| {
                let mut buf = Vec::with_capacity(run.len() * cfg.block_size);
                for j in run.clone() {
                    buf.extend_from_slice(data[j]);
                }
                let chunks = chunk_boundaries_with(&buf, &params, &gear)
                    .into_iter()
                    .map(|(s, e)| {
                        let key = ContentHash::of_nonzero(&buf[s..e]).map(|h| {
                            let k = h.short();
                            (k, ddt.get(&k).is_some())
                        });
                        (s, e, key)
                    })
                    .collect();
                (buf, chunks)
            })
        };

        // Stage 2 "probe" (serial): first-occurrence scan across runs in
        // logical order, fixing each batch-new key's representative chunk.
        let mut new_unique: Vec<(BlockKey, usize, usize, usize)> = Vec::new();
        {
            let _t = self.meters.metrics.timer("zpool_ingest_probe");
            let mut seen: FnvHashSet<BlockKey> = FnvHashSet::default();
            for (r, (_, chunks)) in scanned.iter().enumerate() {
                for &(s, e, key) in chunks {
                    if let Some((k, known)) = key {
                        if !known && seen.insert(k) {
                            new_unique.push((k, r, s, e));
                        }
                    }
                }
            }
        }

        // Stage 3 "compress" (parallel, pure): one compression per
        // batch-new unique chunk.
        let mut prepared: Vec<(BlockKey, u32, PreparedFrame)> = {
            let _t = self.meters.metrics.timer("zpool_ingest_compress");
            let compressor = Compressor::new(cfg.codec);
            self.worker_pool().parallel_map(&new_unique, |_j, &(k, r, s, e)| {
                let frame = compressor.compress(&scanned[r].0[s..e]);
                let psize = frame.len() as u32;
                (k, (e - s) as u32, (psize, cfg.retain_data.then(|| frame.into())))
            })
        };

        // Stage 4 "commit" (serial, batched): add_ref in first-occurrence
        // order (cursor drain, like the fixed path) while building the
        // chunk table in logical order; zero chunks become gaps.
        let _t = self.meters.metrics.timer("zpool_ingest_commit");
        self.ddt_mut().reserve(prepared.len());
        let mut chunk_table: Vec<CdcChunk> = Vec::new();
        let mut next = 0usize;
        let mut chunk_count = 0u64;
        let mut chunk_bytes = 0u64;
        let mut zeros = 0u64;
        let mut misses = 0u64;
        let mut compress_in = 0u64;
        let mut compress_out = 0u64;
        for (r, (_, chunks)) in scanned.iter().enumerate() {
            let run_off = idxs[runs[r].start] * bs;
            for &(s, e, key) in chunks {
                chunk_count += 1;
                chunk_bytes += (e - s) as u64;
                let Some((k, _)) = key else {
                    zeros += 1;
                    continue;
                };
                let was_new = self.ddt_mut().add_ref(k, || {
                    let (pk, lsize, (psize, payload)) = &mut prepared[next];
                    debug_assert_eq!(*pk, k, "prepared drains in first-occurrence order");
                    next += 1;
                    (*psize, *lsize, payload.take())
                });
                if was_new {
                    misses += 1;
                    let (_, lsize, (psize, _)) = prepared[next - 1];
                    compress_in += lsize as u64;
                    compress_out += psize as u64;
                    self.meters.compressed_block_bytes.observe(psize as u64);
                }
                chunk_table.push(CdcChunk {
                    key: k,
                    logical_off: run_off + s as u64,
                    len: (e - s) as u32,
                });
            }
        }
        debug_assert_eq!(next, prepared.len(), "every prepared frame committed");
        let n = data.len() as u64;
        self.meters.ingest_blocks.add(n);
        self.meters.ingest_bytes.add(n * bs);
        self.meters.zero_blocks.add(zeros);
        self.meters.ddt_hits.add(chunk_count - zeros - misses);
        self.meters.ddt_misses.add(misses);
        self.meters.compress_in_bytes.add(compress_in);
        self.meters.compress_out_bytes.add(compress_out);
        self.meters.chunking_chunks.add(chunk_count);
        self.meters.chunking_chunk_bytes.add(chunk_bytes);
        let mut len = idxs.last().map(|&i| (i + 1) * bs).unwrap_or(0);
        if let Some(l) = logical_len {
            len = l;
        }
        self.files_mut().insert(
            name.to_string(),
            FileTable {
                ptrs: Arc::new(Vec::new()),
                chunks: Some(Arc::new(chunk_table)),
                len,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PoolConfig;
    use crate::pool::ZPool;
    use squirrel_compress::Codec;

    /// Synthetic batch with duplicates, zero blocks, and compressible data.
    fn test_blocks(bs: usize, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| match i % 5 {
                0 => vec![0u8; bs],                                   // hole
                1 => (0..bs).map(|j| (j % 13) as u8).collect(),       // repeated
                2 => (0..bs).map(|j| ((i * 31 + j) % 251) as u8).collect(),
                3 => vec![(i % 7) as u8; bs],                         // runs
                _ => (0..bs).map(|j| (j % 13) as u8).collect(),       // dup of 1
            })
            .collect()
    }

    fn serial_pool(bs: usize, codec: Codec, blocks: &[Vec<u8>], len: u64) -> ZPool {
        let mut p = ZPool::new(PoolConfig::new(bs, codec));
        p.import_file("f", blocks.iter().cloned(), len);
        p
    }

    #[test]
    fn parallel_import_matches_serial_bit_for_bit() {
        let bs = 1024;
        let blocks = test_blocks(bs, 64);
        let len = 64 * bs as u64 - 100;
        let mut serial = serial_pool(bs, Codec::Gzip(6), &blocks, len);
        let serial_stats = serial.stats();
        serial.snapshot("s");
        let serial_wire = serial.send_latest().expect("snapshot").encode();

        for threads in [1, 2, 8] {
            let mut p = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)).with_threads(threads));
            p.import_file_parallel("f", &blocks, len);
            assert_eq!(p.stats(), serial_stats, "threads={threads}");
            assert!(p.check_refcounts());
            // Physical layout (allocation order) must match exactly.
            assert_eq!(p.block_refs("f"), serial.block_refs("f"), "threads={threads}");
            // The wire bytes of a full send are a digest of the entire pool
            // state: tables, lengths, payload frames, and their order.
            p.snapshot("s");
            assert_eq!(
                p.send_latest().expect("snapshot").encode(),
                serial_wire,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_import_reads_back_exactly() {
        let bs = 512;
        let blocks = test_blocks(bs, 40);
        let mut p = ZPool::new(PoolConfig::new(bs, Codec::Lz4).with_threads(4));
        p.import_file_parallel("f", &blocks, 40 * bs as u64);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(p.read_block("f", i as u64).expect("file"), *b);
        }
    }

    #[test]
    fn sparse_import_matches_serial_write_block_replay() {
        let bs = 512;
        let sparse: Vec<(u64, Box<[u8]>)> = vec![
            (1, vec![7u8; bs].into_boxed_slice()),
            (4, (0..bs).map(|j| (j % 9) as u8).collect()),
            (5, vec![7u8; bs].into_boxed_slice()), // dup of index 1
            (9, vec![0u8; bs].into_boxed_slice()), // explicit zero block
        ];
        let mut serial = ZPool::new(PoolConfig::new(bs, Codec::Lzjb));
        serial.create_file("c");
        for (idx, d) in &sparse {
            serial.write_block("c", *idx, d);
        }
        for threads in [1, 2, 8] {
            let mut p = ZPool::new(PoolConfig::new(bs, Codec::Lzjb).with_threads(threads));
            p.import_blocks_parallel("c", &sparse);
            assert_eq!(p.stats(), serial.stats(), "threads={threads}");
            assert_eq!(p.block_refs("c"), serial.block_refs("c"));
            assert_eq!(p.file_len("c"), serial.file_len("c"));
            assert!(p.check_refcounts());
        }
    }

    #[test]
    fn reimport_replaces_and_releases_old_blocks() {
        let bs = 512;
        let mut p = ZPool::new(PoolConfig::new(bs, Codec::Off).with_threads(2));
        p.import_file_parallel("f", &[vec![1u8; bs], vec![2u8; bs]], 2 * bs as u64);
        assert_eq!(p.stats().unique_blocks, 2);
        p.import_file_parallel("f", &[vec![3u8; bs]], bs as u64);
        assert_eq!(p.stats().unique_blocks, 1);
        assert!(p.check_refcounts());
    }

    #[test]
    fn batch_dedups_against_existing_pool_content() {
        let bs = 512;
        let mut p = ZPool::new(PoolConfig::new(bs, Codec::Off).with_threads(2));
        p.import_file_parallel("a", &[vec![5u8; bs]], bs as u64);
        let phys_before = p.stats().physical_bytes;
        // Same content under another name: no new physical allocation.
        p.import_file_parallel("b", &[vec![5u8; bs]], bs as u64);
        assert_eq!(p.stats().unique_blocks, 1);
        assert_eq!(p.stats().physical_bytes, phys_before);
        assert!(p.check_refcounts());
    }

    #[test]
    fn accounting_only_pool_imports_without_payloads() {
        let bs = 512;
        let blocks = test_blocks(bs, 20);
        let mut p =
            ZPool::new(PoolConfig::new(bs, Codec::Lzjb).accounting_only().with_threads(2));
        p.import_file_parallel("f", &blocks, 20 * bs as u64);
        let serial = {
            let mut s = ZPool::new(PoolConfig::new(bs, Codec::Lzjb).accounting_only());
            s.import_file("f", blocks.iter().cloned(), 20 * bs as u64);
            s
        };
        assert_eq!(p.stats(), serial.stats());
    }

    #[test]
    fn empty_import_creates_empty_file() {
        let mut p = ZPool::new(PoolConfig::new(512, Codec::Off).with_threads(8));
        p.import_file_parallel("f", &[], 0);
        assert!(p.has_file("f"));
        assert_eq!(p.file_len("f"), Some(0));
        assert_eq!(p.stats().unique_blocks, 0);
    }

    #[test]
    fn cdc_import_is_bit_identical_across_threads() {
        use crate::config::ChunkStrategy;
        use squirrel_hash::cdc::CdcParams;
        let bs = 1024;
        let blocks = test_blocks(bs, 48);
        let len = 48 * bs as u64;
        let mk = |threads| {
            PoolConfig::new(bs, Codec::Lz4)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(2048)))
                .with_threads(threads)
        };
        let mut reference = ZPool::new(mk(1));
        reference.import_file_parallel("f", &blocks, len);
        let ref_stats = reference.stats();
        reference.snapshot("s");
        let ref_wire = reference.send_latest().expect("snapshot").encode();
        for threads in [2, 8] {
            let mut p = ZPool::new(mk(threads));
            p.import_file_parallel("f", &blocks, len);
            assert_eq!(p.stats(), ref_stats, "threads={threads}");
            assert_eq!(p.block_refs("f"), reference.block_refs("f"), "threads={threads}");
            assert!(p.check_refcounts());
            p.snapshot("s");
            assert_eq!(
                p.send_latest().expect("snapshot").encode(),
                ref_wire,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cdc_sparse_import_respects_holes() {
        use crate::config::ChunkStrategy;
        use squirrel_hash::cdc::CdcParams;
        let bs = 512;
        let sparse: Vec<(u64, Vec<u8>)> = vec![
            (1, (0..bs).map(|j| (j % 9) as u8).collect()),
            (2, (0..bs).map(|j| (j % 11) as u8).collect()),
            (7, vec![5u8; bs]),
        ];
        let mut p = ZPool::new(
            PoolConfig::new(bs, Codec::Lzjb)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(1024)))
                .with_threads(2),
        );
        p.import_blocks_parallel("c", &sparse);
        // Gaps read as zeros; a chunk never spans the hole between runs.
        assert_eq!(p.read_block("c", 0).expect("file"), vec![0u8; bs]);
        assert_eq!(p.read_block("c", 3).expect("file"), vec![0u8; bs]);
        for (idx, d) in &sparse {
            assert_eq!(p.read_block("c", *idx).expect("file"), *d, "block {idx}");
        }
        assert!(p.check_refcounts());
    }

    #[test]
    fn cdc_import_dedups_shifted_content_better_than_fixed() {
        use crate::config::ChunkStrategy;
        use squirrel_hash::cdc::CdcParams;
        // A 64-byte prefix insertion shifts every fixed block boundary, so
        // fixed-block dedup finds nothing; Gear boundaries resynchronize a
        // few chunks in and the rest of the corpus dedups.
        let bs = 512;
        let n = 64usize;
        let base: Vec<u8> = (0..(n * bs) as u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        let mut shifted = vec![0x77u8; 64];
        shifted.extend_from_slice(&base[..n * bs - 64]);
        let to_blocks =
            |data: &[u8]| -> Vec<Vec<u8>> { data.chunks(bs).map(|c| c.to_vec()).collect() };
        let growth = |cfg: PoolConfig| {
            let mut p = ZPool::new(cfg);
            p.import_file_parallel("v1", &to_blocks(&base), (n * bs) as u64);
            let before = p.stats().physical_bytes;
            p.import_file_parallel("v2", &to_blocks(&shifted), (n * bs) as u64);
            p.stats().physical_bytes - before
        };
        let fixed_growth = growth(PoolConfig::new(bs, Codec::Off));
        let cdc_growth = growth(
            PoolConfig::new(bs, Codec::Off)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(2048))),
        );
        assert!(
            cdc_growth < fixed_growth / 2,
            "cdc grew {cdc_growth} vs fixed {fixed_growth}"
        );
    }
}
