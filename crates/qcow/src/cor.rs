//! The copy-on-read cache layer (the paper's VMI cache, Figure 1 middle).

use crate::disk::{ReadLog, VirtualDisk};
use crate::ImageError;
use squirrel_obs::{Counter, Metrics};
use std::collections::HashMap;
use std::sync::Arc;

/// A block-granular copy-on-read cache over a backing layer.
///
/// Cold path: a miss fetches the whole containing block from the backing
/// layer, stores it, and serves the request — after one boot the cache holds
/// the boot working set. Warm path: hits never touch the backing layer.
/// `prepopulate` installs a warmed cache directly (Squirrel's ccVolume
/// case); `prepopulate_shared` does so without copying, sharing the caller's
/// buffer. Cached blocks are immutable `Arc<[u8]>` payloads, so draining the
/// cache into the pool (`into_blocks`) and re-warming another cache from
/// pool reads are refcount bumps, not copies.
///
/// Optional trace-driven readahead: `set_readahead(n)` makes every miss
/// also fetch the next `n` uncached blocks. Boot traces are strongly
/// sequential (the paper's Figure 11 traces replay in offset order within a
/// burst), so readahead converts per-block round trips into batched
/// transfers.
pub struct CorCache<B: VirtualDisk> {
    block_size: usize,
    blocks: HashMap<u64, Arc<[u8]>>,
    backing: B,
    log: Option<ReadLog>,
    /// Blocks fetched ahead of a demand miss (0 = disabled).
    readahead: usize,
    /// Bytes fetched from the backing layer since creation (the network
    /// traffic a cold boot causes).
    pub fetched_bytes: u64,
    /// Number of backing fetches.
    pub fetch_count: u64,
    fills: Counter,
    fill_bytes: Counter,
    readahead_fills: Counter,
}

impl<B: VirtualDisk> CorCache<B> {
    pub fn new(backing: B, block_size: usize) -> Self {
        Self::try_new(backing, block_size).expect("valid block size")
    }

    /// Fallible [`new`](Self::new): rejects block sizes that are not a
    /// power of two of at least 512 bytes.
    pub fn try_new(backing: B, block_size: usize) -> Result<Self, ImageError> {
        if !block_size.is_power_of_two() || block_size < 512 {
            return Err(ImageError::BadGranule { bytes: block_size });
        }
        Ok(CorCache {
            block_size,
            blocks: HashMap::new(),
            backing,
            log: None,
            readahead: 0,
            fetched_bytes: 0,
            fetch_count: 0,
            fills: Counter::default(),
            fill_bytes: Counter::default(),
            readahead_fills: Counter::default(),
        })
    }

    /// Attach observability: backing fetches record `cor_fills_total` and
    /// `cor_fill_bytes_total` on `metrics`; fetches triggered by readahead
    /// additionally record `cor_readahead_fills_total`.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.fills = metrics.counter("cor_fills_total");
        self.fill_bytes = metrics.counter("cor_fill_bytes_total");
        self.readahead_fills = metrics.counter("cor_readahead_fills_total");
    }

    /// Fetch up to `blocks` additional uncached blocks after every demand
    /// miss (0 disables readahead, the default). Readahead fetches count
    /// into `fetched_bytes` / `fetch_count` and the read log like demand
    /// fetches — they are real backing traffic.
    pub fn set_readahead(&mut self, blocks: usize) {
        self.readahead = blocks;
    }

    pub fn readahead(&self) -> usize {
        self.readahead
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of cached blocks.
    pub fn cached_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Cached bytes (the VMI cache size).
    pub fn cached_bytes(&self) -> u64 {
        (self.blocks.len() * self.block_size) as u64
    }

    /// True once `offset..offset+len` is fully cached.
    pub fn covers(&self, offset: u64, len: u64) -> bool {
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + len.max(1) - 1) / bs;
        (first..=last).all(|b| self.blocks.contains_key(&b))
    }

    /// Install a warmed block (Squirrel's pre-replicated caches).
    pub fn prepopulate(&mut self, block_idx: u64, data: &[u8]) {
        self.try_prepopulate(block_idx, data).expect("block-sized data")
    }

    /// Fallible [`prepopulate`](Self::prepopulate): rejects data whose
    /// length is not exactly one block.
    pub fn try_prepopulate(&mut self, block_idx: u64, data: &[u8]) -> Result<(), ImageError> {
        if data.len() != self.block_size {
            return Err(ImageError::BadBlockLength {
                expected: self.block_size,
                got: data.len(),
            });
        }
        self.blocks.insert(block_idx, data.to_vec().into());
        Ok(())
    }

    /// Zero-copy [`prepopulate`](Self::prepopulate): installs a warmed block
    /// sharing the caller's buffer (e.g. the payload a ccVolume read just
    /// produced) instead of copying it.
    pub fn prepopulate_shared(&mut self, block_idx: u64, data: Arc<[u8]>) {
        self.try_prepopulate_shared(block_idx, data).expect("block-sized data")
    }

    /// Fallible [`prepopulate_shared`](Self::prepopulate_shared).
    pub fn try_prepopulate_shared(
        &mut self,
        block_idx: u64,
        data: Arc<[u8]>,
    ) -> Result<(), ImageError> {
        if data.len() != self.block_size {
            return Err(ImageError::BadBlockLength {
                expected: self.block_size,
                got: data.len(),
            });
        }
        self.blocks.insert(block_idx, data);
        Ok(())
    }

    /// A shared reference to a cached block, if present (refcount bump).
    pub fn shared_block(&self, block_idx: u64) -> Option<Arc<[u8]>> {
        self.blocks.get(&block_idx).map(Arc::clone)
    }

    /// Enable logging of backing fetches.
    pub fn log_backing_reads(&mut self) {
        self.log = Some(Vec::new());
    }

    pub fn take_log(&mut self) -> ReadLog {
        match self.log.take() {
            Some(l) => {
                self.log = Some(Vec::new());
                l
            }
            None => ReadLog::default(),
        }
    }

    pub fn backing(&mut self) -> &mut B {
        &mut self.backing
    }

    /// Drain the cache contents (block index, data), e.g. to persist the
    /// cache after a registration boot. Hands out the shared payloads
    /// themselves — no copies.
    pub fn into_blocks(self) -> Vec<(u64, Arc<[u8]>)> {
        let mut v: Vec<_> = self.blocks.into_iter().collect();
        v.sort_unstable_by_key(|(i, _)| *i);
        v
    }

    /// Copy-on-read one whole block from the backing layer into the cache,
    /// charging fetch accounting and the read log.
    fn fetch_block(&mut self, block: u64) {
        let bs = self.block_size as u64;
        let mut data = vec![0u8; self.block_size];
        if let Some(log) = &mut self.log {
            log.push((block * bs, self.block_size as u32));
        }
        self.backing.read_at(block * bs, &mut data);
        self.fetched_bytes += self.block_size as u64;
        self.fetch_count += 1;
        self.fills.inc();
        self.fill_bytes.add(self.block_size as u64);
        self.blocks.insert(block, data.into());
    }
}

impl<B: VirtualDisk> VirtualDisk for CorCache<B> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        let bs = self.block_size as u64;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let block = abs / bs;
            let within = (abs % bs) as usize;
            let take = (self.block_size - within).min(buf.len() - pos);
            if !self.blocks.contains_key(&block) {
                // Miss: copy-on-read the full block, then optionally run
                // ahead of the (sequential) trace.
                self.fetch_block(block);
                for k in 1..=self.readahead as u64 {
                    let ahead = block + k;
                    if self.blocks.contains_key(&ahead) || ahead * bs >= self.backing.len() {
                        continue;
                    }
                    self.fetch_block(ahead);
                    self.readahead_fills.inc();
                }
            }
            let data = self.blocks.get(&block).expect("just inserted");
            buf[pos..pos + take].copy_from_slice(&data[within..within + take]);
            pos += take;
        }
    }

    fn len(&self) -> u64 {
        self.backing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn base(n: usize) -> MemDisk {
        MemDisk::new((0..n).map(|i| (i % 251) as u8).collect())
    }

    #[test]
    fn cold_read_populates_cache() {
        let mut cor = CorCache::new(base(4096), 1024);
        let mut buf = [0u8; 8];
        cor.read_at(100, &mut buf);
        assert_eq!(buf[0], 100);
        assert_eq!(cor.cached_blocks(), 1);
        assert_eq!(cor.fetched_bytes, 1024);
    }

    #[test]
    fn warm_read_never_touches_backing() {
        let mut cor = CorCache::new(base(4096), 1024);
        let mut buf = [0u8; 8];
        cor.read_at(100, &mut buf);
        let fetched = cor.fetched_bytes;
        cor.read_at(200, &mut buf); // same block
        cor.read_at(108, &mut buf);
        assert_eq!(cor.fetched_bytes, fetched, "no extra fetches");
    }

    #[test]
    fn prepopulated_cache_is_warm() {
        let mut inner = base(2048);
        let mut block0 = vec![0u8; 1024];
        inner.read_at(0, &mut block0);
        let mut cor = CorCache::new(inner, 1024);
        cor.prepopulate(0, &block0);
        let mut buf = [0u8; 16];
        cor.read_at(10, &mut buf);
        assert_eq!(cor.fetched_bytes, 0, "prepopulated block serves locally");
        assert_eq!(buf[0], 10);
    }

    #[test]
    fn covers_reports_cached_ranges() {
        let mut cor = CorCache::new(base(4096), 1024);
        assert!(!cor.covers(0, 100));
        let mut buf = [0u8; 1];
        cor.read_at(0, &mut buf);
        assert!(cor.covers(0, 1024));
        assert!(!cor.covers(0, 1025));
    }

    #[test]
    fn straddling_read_fetches_each_block_once() {
        let mut cor = CorCache::new(base(8192), 1024);
        cor.log_backing_reads();
        let mut buf = [0u8; 2000];
        cor.read_at(600, &mut buf);
        let log = cor.take_log();
        assert_eq!(log, vec![(0, 1024), (1024, 1024), (2048, 1024)]);
        let want: Vec<u8> = (600u32..2600).map(|i| (i % 251) as u8).collect();
        assert_eq!(buf.to_vec(), want);
    }

    #[test]
    fn into_blocks_sorted() {
        let mut cor = CorCache::new(base(8192), 1024);
        let mut buf = [0u8; 1];
        cor.read_at(5000, &mut buf);
        cor.read_at(100, &mut buf);
        let blocks = cor.into_blocks();
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].0 < blocks[1].0);
    }

    #[test]
    fn fallible_constructors_report_errors() {
        assert_eq!(
            CorCache::try_new(base(1024), 1000).err(),
            Some(crate::ImageError::BadGranule { bytes: 1000 })
        );
        let mut cor = CorCache::new(base(2048), 1024);
        assert_eq!(
            cor.try_prepopulate(0, &[1, 2, 3]).unwrap_err(),
            crate::ImageError::BadBlockLength { expected: 1024, got: 3 }
        );
        let e: Box<dyn std::error::Error> =
            Box::new(crate::ImageError::BadGranule { bytes: 7 });
        assert_eq!(e.to_string(), "granule of 7 bytes is not a power of two >= 512");
    }

    #[test]
    fn metrics_count_backing_fills() {
        let reg = squirrel_obs::MetricsRegistry::new();
        let mut cor = CorCache::new(base(4096), 1024);
        cor.set_metrics(&reg.handle());
        let mut buf = [0u8; 8];
        cor.read_at(100, &mut buf); // miss
        cor.read_at(100, &mut buf); // hit: no fill
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cor_fills_total"), Some(1));
        assert_eq!(snap.counter("cor_fill_bytes_total"), Some(1024));
    }

    #[test]
    fn readahead_prefetches_sequential_blocks() {
        let reg = squirrel_obs::MetricsRegistry::new();
        let mut cor = CorCache::new(base(8192), 1024);
        cor.set_metrics(&reg.handle());
        cor.set_readahead(2);
        let mut buf = [0u8; 8];
        cor.read_at(0, &mut buf); // demand block 0, readahead 1 and 2
        assert_eq!(cor.cached_blocks(), 3);
        assert_eq!(cor.fetch_count, 3);
        // The readahead window makes the next sequential reads warm.
        cor.read_at(1024, &mut buf);
        cor.read_at(2048, &mut buf);
        assert_eq!(cor.fetch_count, 3, "sequential reads hit prefetched blocks");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cor_fills_total"), Some(3));
        assert_eq!(snap.counter("cor_readahead_fills_total"), Some(2));
        // Readahead never runs past the end of the backing layer.
        cor.read_at(7000, &mut buf); // demand block 6; block 7 is the last
        assert_eq!(cor.cached_blocks(), 5);
        // Prefetched data is correct, not just present.
        cor.read_at(1500, &mut buf);
        assert_eq!(buf[0], (1500 % 251) as u8);
    }

    #[test]
    fn readahead_skips_already_cached_blocks() {
        let mut cor = CorCache::new(base(8192), 1024);
        cor.set_readahead(3);
        let mut block = vec![0u8; 1024];
        base(8192).read_at(2048, &mut block);
        cor.prepopulate(2, &block);
        let mut buf = [0u8; 1];
        cor.read_at(0, &mut buf); // demand 0; readahead 1, 3 (2 cached)
        assert_eq!(cor.cached_blocks(), 4);
        assert_eq!(cor.fetch_count, 3, "cached block 2 not refetched");
    }

    #[test]
    fn prepopulate_shared_aliases_the_buffer() {
        let mut cor = CorCache::new(base(2048), 1024);
        let mut block0 = vec![0u8; 1024];
        base(2048).read_at(0, &mut block0);
        let payload: Arc<[u8]> = block0.into();
        cor.prepopulate_shared(0, Arc::clone(&payload));
        let cached = cor.shared_block(0).expect("cached");
        assert!(Arc::ptr_eq(&cached, &payload), "zero-copy install");
        let mut buf = [0u8; 4];
        cor.read_at(10, &mut buf);
        assert_eq!(cor.fetched_bytes, 0, "prepopulated block serves locally");
        assert_eq!(buf[0], 10);
        assert!(cor.try_prepopulate_shared(1, vec![0u8; 3].into()).is_err());
    }

    #[test]
    fn chain_cow_over_cor_over_base() {
        // The full Figure-1 chain: CoW → CoR cache → base.
        use crate::cow::CowImage;
        let mut chain = CowImage::with_cluster_size(CorCache::new(base(16384), 1024), 1024);
        let mut buf = [0u8; 64];
        chain.read_at(1000, &mut buf);
        chain.write_at(1000, &[9u8; 4]);
        chain.read_at(1000, &mut buf);
        assert_eq!(&buf[..4], &[9, 9, 9, 9]);
        assert_eq!(buf[4], (1004 % 251) as u8);
        assert!(chain.backing().cached_blocks() > 0, "cache warmed through the chain");
    }
}
