//! Cross-crate integrity tests: the wire format, checksum scrubbing, and
//! data-path verification guard the whole propagation pipeline.

use squirrel_repro::compress::Codec;
use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use squirrel_repro::zfs::{PoolConfig, SendStream, ZPool};
use std::sync::Arc;

fn corpus() -> Arc<Corpus> {
    Arc::new(Corpus::generate(CorpusConfig {
        n_images: 6,
        scale: 2048,
        ..CorpusConfig::azure(2048, 313)
    }))
}

#[test]
fn cache_streams_survive_the_wire_format_end_to_end() {
    // Build a scVolume from real corpus caches, ship it over the binary
    // wire format, and verify the replica byte-for-byte.
    let corpus = corpus();
    let bs = 16 * 1024;
    let mut scvol = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)));
    for img in corpus.iter() {
        let cache = img.cache();
        scvol.import_file(
            &format!("cache-{}", img.id()),
            cache.blocks(bs),
            cache.bytes(),
        );
        scvol.snapshot(&format!("s{}", img.id()));
    }

    let mut replica = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)));
    let tags: Vec<String> = scvol.snapshot_tags().iter().map(|s| s.to_string()).collect();
    let mut prev: Option<String> = None;
    for tag in &tags {
        let stream = scvol.send_between(prev.as_deref(), tag).expect("send");
        let bytes = stream.encode();
        let decoded = SendStream::decode(&bytes).expect("decode");
        replica.recv(&decoded).expect("recv");
        prev = Some(tag.clone());
    }

    for img in corpus.iter() {
        let name = format!("cache-{}", img.id());
        let blocks = img.cache().blocks_count(bs);
        for b in 0..blocks {
            assert_eq!(
                scvol.read_block(&name, b),
                replica.read_block(&name, b),
                "{name} block {b}"
            );
        }
    }
    assert!(replica.check_refcounts());
    assert!(replica.scrub().is_clean());
}

#[test]
fn scrub_catches_corruption_in_a_replicated_cache() {
    let corpus = corpus();
    let bs = 16 * 1024;
    let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Lz4));
    let img = corpus.image(0);
    pool.import_file("cache-0", img.cache().blocks(bs), img.cache().bytes());
    assert!(pool.scrub().is_clean());

    let victim = pool
        .block_refs("cache-0")
        .expect("file")
        .into_iter()
        .flatten()
        .next()
        .expect("at least one block")
        .key;
    assert!(pool.inject_corruption(victim));
    let report = pool.scrub();
    assert_eq!(report.corrupt, vec![victim]);
}

#[test]
fn full_system_boot_data_path_verifies_after_churn() {
    // Register, knock a node offline, register more, rejoin, then verify
    // actual bytes through the chain — the strongest end-to-end check.
    let corpus = corpus();
    let mut sq = Squirrel::new(
        SquirrelConfig::builder().compute_nodes(3).block_size(16 * 1024).build(),
        Arc::clone(&corpus),
    );
    sq.register(0).expect("r0");
    sq.node_offline(2).expect("offline");
    sq.register(1).expect("r1");
    sq.register(2).expect("r2");
    sq.node_rejoin(2).expect("rejoin");
    assert!(sq.check_replication().is_consistent());
    for img in 0..3 {
        for node in 0..3 {
            let v = sq.verify_boot(node, img).expect("verify");
            assert!(v.bytes_verified > 0, "node {node} image {img}");
        }
    }
}
