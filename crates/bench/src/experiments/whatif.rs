//! What-if scenario from the paper's Section 4.1: the Azure community
//! catalog has no Windows images ("likely due to licensing reasons"); the
//! paper argues that adding them would only add a constant factor, because
//! Windows boot working sets deduplicate *with each other* even though they
//! share nothing with Linux.
//!
//! This experiment builds two equal-sized corpora — one with the Azure
//! census (no Windows) and one with the EC2 census (~5% Windows) — stores
//! all caches in a 64 KiB cVolume, and compares the footprints.

use crate::config::ExperimentConfig;
use crate::csvout::{mib, Table};
use squirrel_compress::Codec;
use squirrel_dataset::{ec2_census, Corpus, CorpusConfig};
use squirrel_zfs::{PoolConfig, SpaceStats, ZPool};

/// Footprints of the two catalogs.
#[derive(Clone, Copy, Debug)]
pub struct WindowsWhatIf {
    pub azure: SpaceStats,
    pub with_windows: SpaceStats,
}

fn store_caches(corpus: &Corpus, bs: usize) -> SpaceStats {
    let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)).accounting_only());
    for img in corpus.iter() {
        let cache = img.cache();
        pool.import_file(&format!("c-{}", img.id()), cache.blocks(bs), cache.bytes());
    }
    pool.stats()
}

/// Run the comparison at the paper's 64 KiB operating point.
pub fn run_whatif_windows(cfg: &ExperimentConfig) -> WindowsWhatIf {
    let bs = 64 * 1024;
    let azure_corpus = cfg.corpus();
    let ec2_corpus = Corpus::generate(CorpusConfig {
        n_images: cfg.images,
        scale: cfg.scale,
        seed: cfg.seed,
        census: ec2_census(),
        ..CorpusConfig::azure(cfg.scale, cfg.seed)
    });
    let azure = store_caches(&azure_corpus, bs);
    let with_windows = store_caches(&ec2_corpus, bs);

    let mut t = Table::new(&["catalog", "cvol_disk_mib", "ddt_mem_mib", "unique_blocks"]);
    for (name, s) in [("Azure census (no Windows)", &azure), ("EC2 census (incl. Windows)", &with_windows)]
    {
        t.push(vec![
            name.to_string(),
            mib(s.total_disk_bytes() as f64),
            mib(s.ddt_memory_bytes as f64),
            s.unique_blocks.to_string(),
        ]);
    }
    let factor =
        with_windows.total_disk_bytes() as f64 / azure.total_disk_bytes().max(1) as f64;
    t.push(vec![
        "windows overhead factor".to_string(),
        format!("{factor:.2}x"),
        String::new(),
        String::new(),
    ]);
    t.print("What-if: Windows images in the mix (paper Section 4.1)");
    t.write(&cfg.out_dir, "whatif_windows").expect("csv");
    WindowsWhatIf { azure, with_windows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_adds_a_constant_factor_not_a_blowup() {
        let cfg = ExperimentConfig { out_dir: None, ..ExperimentConfig::smoke() };
        let w = run_whatif_windows(&cfg);
        let factor =
            w.with_windows.total_disk_bytes() as f64 / w.azure.total_disk_bytes() as f64;
        // Windows caches dedup among themselves: the mixed catalog costs
        // more (new distinct base content) but stays within a small factor.
        assert!(factor > 0.8, "factor {factor}");
        assert!(factor < 3.0, "factor {factor} — must be a constant factor, not a blowup");
    }

    #[test]
    fn windows_images_dedup_with_each_other() {
        // A Windows-heavy catalog must still dedup internally.
        let cfg = ExperimentConfig::smoke();
        let corpus = Corpus::generate(CorpusConfig {
            n_images: cfg.images,
            scale: cfg.scale,
            seed: cfg.seed,
            census: vec![squirrel_dataset::CensusEntry {
                family: squirrel_dataset::OsFamily::Windows,
                count: cfg.images,
            }],
            ..CorpusConfig::azure(cfg.scale, cfg.seed)
        });
        let stats = store_caches(&corpus, 16 * 1024);
        let logical_blocks = corpus
            .iter()
            .map(|i| i.cache().bytes().div_ceil(16 * 1024))
            .sum::<u64>();
        assert!(
            stats.unique_blocks * 2 < logical_blocks,
            "unique {} vs logical {logical_blocks}",
            stats.unique_blocks
        );
    }
}
