//! Sharded dedup table: the DDT split across fixed shards by hash prefix.
//!
//! The motivation mirrors [`SharedArcCache`](crate::sharedarc::SharedArcCache):
//! content hashes are uniformly distributed, so `key % SHARDS` spreads
//! entries evenly and each shard stays small. That buys the ingest hot path
//! three things over one monolithic map:
//!
//! * **Parallel probes** — stage 1's new-key probe and the scrub/read paths
//!   take `&self`, so pool workers query different shards (different cache
//!   lines, independent probe sequences) with no coordination at all.
//! * **Cheaper growth** — a rehash touches one shard (1/16th of the
//!   entries), not the whole table, so commit latency spikes shrink.
//! * **Batched reservation** — [`reserve`](ShardedDedupTable::reserve)
//!   pre-sizes every shard once per ingest batch from the stage-1 scan,
//!   instead of growing incrementally under `add_ref`.
//!
//! Determinism: all mutation happens through `&mut self` from the serial
//! commit stage, and the physical allocator (`alloc_cursor`) is a single
//! global cursor — so allocation order, offsets, and accounting are
//! bit-identical to the serial [`DedupTable`](crate::ddt::DedupTable) fed
//! the same operation sequence, which the differential proptest below
//! checks operation by operation.

use crate::ddt::{BlockKey, DdtEntry, SharedPayload};
use squirrel_hash::FnvHashMap;

/// Fixed shard count. A power of two so `key % SHARDS` compiles to a mask;
/// 16 keeps per-shard maps small without bloating the empty-table footprint.
const SHARDS: usize = 16;

/// The sharded dedup table. Drop-in for [`DedupTable`](crate::ddt::DedupTable):
/// identical observable behaviour (entries, refcounts, allocation order,
/// accounting), different interior layout.
pub struct ShardedDedupTable {
    shards: Vec<FnvHashMap<BlockKey, DdtEntry>>,
    /// Next physical allocation offset — global and advanced only from the
    /// serial commit path, so first-occurrence allocation order survives
    /// sharding exactly.
    alloc_cursor: u64,
    /// Total compressed bytes currently referenced.
    physical_bytes: u64,
}

impl Default for ShardedDedupTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedDedupTable {
    pub fn new() -> Self {
        ShardedDedupTable {
            shards: (0..SHARDS).map(|_| FnvHashMap::default()).collect(),
            alloc_cursor: 0,
            physical_bytes: 0,
        }
    }

    #[inline]
    fn shard_of(key: BlockKey) -> usize {
        (key % SHARDS as u128) as usize
    }

    /// Number of unique blocks.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total compressed bytes of all entries.
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    #[inline]
    pub fn get(&self, key: &BlockKey) -> Option<&DdtEntry> {
        self.shards[Self::shard_of(*key)].get(key)
    }

    /// Pre-size every shard for `additional` incoming unique keys (spread
    /// evenly — hash keys are uniform). One reservation per ingest batch
    /// replaces incremental growth under the commit loop.
    pub fn reserve(&mut self, additional: usize) {
        let per_shard = additional.div_ceil(SHARDS);
        for s in &mut self.shards {
            s.reserve(per_shard);
        }
    }

    /// Add one reference to `key`, inserting a fresh entry (with
    /// `(psize, lsize, payload)` produced by `make`) when the block is new.
    /// Returns `true` when the block was new.
    pub fn add_ref(
        &mut self,
        key: BlockKey,
        make: impl FnOnce() -> (u32, u32, Option<SharedPayload>),
    ) -> bool {
        match self.shards[Self::shard_of(key)].entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().refcount += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let (psize, lsize, data) = make();
                let phys = self.alloc_cursor;
                self.alloc_cursor += psize as u64;
                self.physical_bytes += psize as u64;
                v.insert(DdtEntry { refcount: 1, psize, lsize, phys, data });
                true
            }
        }
    }

    /// Drop one reference; frees the entry at zero. Returns `true` when the
    /// entry was freed.
    pub fn release(&mut self, key: &BlockKey) -> bool {
        let shard = &mut self.shards[Self::shard_of(*key)];
        let entry = shard.get_mut(key).expect("release of unknown block");
        debug_assert!(entry.refcount > 0);
        entry.refcount -= 1;
        if entry.refcount == 0 {
            let psize = entry.psize as u64;
            shard.remove(key);
            self.physical_bytes -= psize;
            true
        } else {
            false
        }
    }

    /// Swap the stored payload of `key`, keeping `physical_bytes` accounting
    /// exact (the old psize is released, the new one charged). Refcount and
    /// physical offset are untouched. Returns `false` when the key is absent.
    pub(crate) fn replace_payload(
        &mut self,
        key: BlockKey,
        psize: u32,
        data: Option<SharedPayload>,
    ) -> bool {
        let Some(entry) = self.shards[Self::shard_of(key)].get_mut(&key) else {
            return false;
        };
        self.physical_bytes = self.physical_bytes - entry.psize as u64 + psize as u64;
        entry.psize = psize;
        entry.data = data;
        true
    }

    /// Relocate `key`'s block to a fresh extent at the (global) allocation
    /// cursor; see [`DedupTable::reassign_phys`](crate::ddt::DedupTable::reassign_phys)
    /// for semantics. Returns `(old_phys, psize)`, or `None` when absent.
    pub fn reassign_phys(&mut self, key: &BlockKey) -> Option<(u64, u32)> {
        let entry = self.shards[Self::shard_of(*key)].get_mut(key)?;
        let old = entry.phys;
        entry.phys = self.alloc_cursor;
        self.alloc_cursor += entry.psize as u64;
        Some((old, entry.psize))
    }

    /// Sum of all refcounts (diagnostic; equals the number of live block
    /// pointers across files and snapshots).
    pub fn total_refs(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|e| e.refcount)
            .sum()
    }

    /// Iterate `(key, entry)` pairs, shard by shard. Iteration order differs
    /// from the serial table (and is unspecified, like any hash map's);
    /// order-sensitive callers sort, exactly as they did before sharding.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockKey, &DdtEntry)> {
        self.shards.iter().flat_map(|s| s.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddt::DedupTable;

    fn payload(n: u32) -> impl FnOnce() -> (u32, u32, Option<SharedPayload>) {
        move || (n, n, Some(vec![0xabu8; n as usize].into()))
    }

    #[test]
    fn add_ref_dedups() {
        let mut t = ShardedDedupTable::new();
        assert!(t.add_ref(1, payload(100)));
        assert!(!t.add_ref(1, payload(100)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1).expect("entry").refcount, 2);
        assert_eq!(t.physical_bytes(), 100);
    }

    #[test]
    fn allocation_is_global_and_sequential() {
        // Keys landing in different shards still allocate from one cursor,
        // in arrival order.
        let mut t = ShardedDedupTable::new();
        t.add_ref(0, payload(10)); // shard 0
        t.add_ref(5, payload(20)); // shard 5
        t.add_ref(16, payload(30)); // shard 0 again
        assert_eq!(t.get(&0).expect("e").phys, 0);
        assert_eq!(t.get(&5).expect("e").phys, 10);
        assert_eq!(t.get(&16).expect("e").phys, 30);
    }

    #[test]
    fn release_frees_at_zero() {
        let mut t = ShardedDedupTable::new();
        t.add_ref(7, payload(64));
        t.add_ref(7, payload(64));
        assert!(!t.release(&7));
        assert!(t.release(&7));
        assert!(t.is_empty());
        assert_eq!(t.physical_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "release of unknown block")]
    fn release_unknown_panics() {
        ShardedDedupTable::new().release(&99);
    }

    #[test]
    fn reserve_is_behaviour_neutral() {
        let mut t = ShardedDedupTable::new();
        t.reserve(1000);
        assert!(t.is_empty());
        t.add_ref(3, payload(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn differential_fixed_sequences() {
        use super::tests_support::differential_ops;
        differential_ops(&[(0, 1, 10), (0, 17, 20), (0, 1, 10), (2, 1, 1), (0, 33, 5)]);
        differential_ops(&[(0, 5, 8), (2, 5, 1), (0, 5, 8), (0, 21, 8), (2, 5, 1)]);
        // Reverse-dedup relocation (op 3) interleaved with the others.
        differential_ops(&[(0, 1, 10), (0, 17, 20), (3, 1, 0), (0, 33, 5), (3, 99, 0)]);
    }

    #[test]
    fn differential_replace_payload() {
        let mut serial = DedupTable::new();
        let mut sharded = ShardedDedupTable::new();
        for k in [1u128, 17, 33, 4, 20] {
            serial.add_ref(k, payload(100));
            sharded.add_ref(k, payload(100));
        }
        assert_eq!(
            serial.replace_payload(17, 40, None),
            sharded.replace_payload(17, 40, None)
        );
        assert_eq!(
            serial.replace_payload(999, 40, None),
            sharded.replace_payload(999, 40, None),
            "absent key"
        );
        assert_eq!(serial.physical_bytes(), sharded.physical_bytes());
    }
}

#[cfg(test)]
mod proptests {
    use super::tests_support::differential_ops;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random op soup through both tables: observable state must agree
        /// after every single operation.
        #[test]
        fn sharded_matches_serial(
            ops in proptest::collection::vec(
                (0u8..4, 0u128..48, 1u32..256),
                1..200,
            )
        ) {
            differential_ops(&ops);
        }
    }
}

#[cfg(test)]
mod tests_support {
    use super::*;
    use crate::ddt::DedupTable;

    /// Shared driver for unit and property differential tests.
    pub(super) fn differential_ops(ops: &[(u8, BlockKey, u32)]) {
        let mut serial = DedupTable::new();
        let mut sharded = ShardedDedupTable::new();
        for &(op, key, size) in ops {
            let mk = move || (size, size, Some(vec![0x5au8; size as usize].into()));
            match op % 4 {
                0 | 1 => {
                    assert_eq!(serial.add_ref(key, mk), sharded.add_ref(key, mk));
                }
                2 => {
                    if serial.get(&key).is_some() {
                        assert_eq!(serial.release(&key), sharded.release(&key));
                    }
                }
                _ => {
                    assert_eq!(serial.reassign_phys(&key), sharded.reassign_phys(&key));
                }
            }
            assert_eq!(serial.len(), sharded.len());
            assert_eq!(serial.physical_bytes(), sharded.physical_bytes());
        }
        let mut a: Vec<(BlockKey, u64, u32, u32, u64)> = serial
            .iter()
            .map(|(k, e)| (*k, e.refcount, e.psize, e.lsize, e.phys))
            .collect();
        let mut b: Vec<(BlockKey, u64, u32, u32, u64)> = sharded
            .iter()
            .map(|(k, e)| (*k, e.refcount, e.psize, e.lsize, e.phys))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
