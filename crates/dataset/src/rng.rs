//! Tiny deterministic generators for content synthesis.
//!
//! Atom generation is the hot inner loop of every corpus sweep; seeding a
//! ChaCha-based `StdRng` per 512-byte atom would dominate runtime. SplitMix64
//! is statistically plenty for content texture and costs a handful of ALU
//! ops. `rand` is still used at corpus level where speed does not matter.

/// SplitMix64: fast, seedable, full-period 64-bit generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive a generator from several seed words (order matters).
    pub fn from_parts(parts: &[u64]) -> Self {
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for &p in parts {
            s = s.rotate_left(23) ^ p.wrapping_mul(0xff51_afd7_ed55_8ccd);
            s = s.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        }
        SplitMix64 { state: s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply trick: unbiased enough for content synthesis.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// Approximate Zipf sampler over `[0, n)` with exponent `s` (~1.0), using
/// inverse-CDF on the continuous Zipf approximation. Heavy head, long tail —
/// the classic shape of software-package popularity.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Normalizing constant of the continuous approximation.
    h_n: f64,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0 && s > 0.0 && (s - 1.0).abs() > 1e-9, "n>0, s!=1");
        let h = |x: f64| (x.powf(1.0 - s) - 1.0) / (1.0 - s);
        Zipf { n, s, h_n: h(n as f64 + 0.5) }
    }

    /// The support size `n` (ranks are `[0, n)`).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.unit_f64() * self.h_n;
        // Invert H(x) = (x^(1-s) - 1)/(1-s).
        let x = (u * (1.0 - self.s) + 1.0).powf(1.0 / (1.0 - self.s));
        (x as u64).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn from_parts_order_sensitive() {
        let a = SplitMix64::from_parts(&[1, 2]).next_u64();
        let b = SplitMix64::from_parts(&[2, 1]).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
    }

    #[test]
    fn unit_f64_in_range_and_uniform_ish() {
        let mut rng = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let z = Zipf::new(10_000, 1.1);
        let mut rng = SplitMix64::new(11);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 10_000);
            if r < 100 {
                head += 1;
            }
            total += 1;
        }
        let frac = head as f64 / total as f64;
        assert!(frac > 0.3, "head fraction {frac}");
    }

    #[test]
    fn zipf_reaches_tail() {
        let z = Zipf::new(1000, 1.05);
        let mut rng = SplitMix64::new(5);
        let max = (0..50_000).map(|_| z.sample(&mut rng)).max().unwrap_or(0);
        assert!(max > 500, "max rank {max}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
