//! Chaos-soak bench: simulated days of register/boot/gc under a seeded
//! [`FaultPlan`](squirrel_core::FaultPlan), with churn, partitions and bit
//! rot injected throughout and the self-healing workflows run on a cadence
//! (`squirrel_core::chaos_soak`).
//!
//! For each worker-thread count the soak replays the *same* fault schedule
//! on a fresh system; the resulting [`ChaosReport`]s must compare equal —
//! every fault decision, retry, repair and read checksum is bit-identical —
//! and each run must converge to a consistent, scrub-clean state after the
//! final repair pass. Both properties are asserted here, so a passing bench
//! *is* the acceptance check.
//!
//! Results land in `results/BENCH_chaos.json`.

use crate::config::ExperimentConfig;
use crate::csvout::fmt_f;
use crate::experiments::bootstorm::thread_sweep;
use squirrel_core::{chaos_soak, ChaosConfig, ChaosReport};

/// Soak length in simulated days.
pub const SOAK_DAYS: u64 = 15;
/// Compute nodes under churn.
pub const SOAK_NODES: u32 = 6;

/// One thread count's soak.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    pub threads: usize,
    pub wall_secs: f64,
    pub report: ChaosReport,
}

fn soak_config(cfg: &ExperimentConfig, threads: usize) -> ChaosConfig {
    ChaosConfig {
        days: SOAK_DAYS,
        // One image registers per day; more than `days` images never land.
        images: cfg.images.min(12),
        nodes: SOAK_NODES,
        seed: cfg.seed,
        threads,
        ..ChaosConfig::default()
    }
}

/// Sweep the thread counts, assert convergence and bit-identical reports,
/// and persist `BENCH_chaos.json` under the configured output directory.
pub fn run_chaos(cfg: &ExperimentConfig) -> Vec<ChaosRun> {
    let runs: Vec<ChaosRun> = thread_sweep(cfg)
        .into_iter()
        .map(|threads| {
            let t = std::time::Instant::now();
            let report = chaos_soak(&soak_config(cfg, threads));
            ChaosRun { threads, wall_secs: t.elapsed().as_secs_f64(), report }
        })
        .collect();

    let first = &runs[0];
    for run in &runs {
        assert!(run.report.converged, "threads={}: soak did not converge", run.threads);
        assert!(run.report.scrub_clean, "threads={}: pools not scrub-clean", run.threads);
        assert_eq!(
            run.report, first.report,
            "threads={} diverged from threads={}",
            run.threads, first.threads
        );
    }

    for run in &runs {
        let r = &run.report;
        println!(
            "chaos threads={}: {} days, {} faults injected, {} blocks repaired, \
             {} nodes re-synced, {} degraded boots; converged={} ({:.2}s wall)",
            run.threads,
            r.days,
            r.fault.total_injected(),
            r.blocks_repaired,
            r.sync_repaired_nodes,
            r.degraded_boots,
            r.converged,
            run.wall_secs,
        );
    }

    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_chaos.json");
        std::fs::write(&path, render_json(cfg, &runs)).expect("write BENCH_chaos.json");
        println!("chaos bench written to {}", path.display());
    }
    runs
}

/// Hand-rolled JSON (the workspace is std-only by policy).
fn render_json(cfg: &ExperimentConfig, runs: &[ChaosRun]) -> String {
    let r = &runs[0].report;
    let f = &r.fault;
    let entries: Vec<String> = runs
        .iter()
        .map(|run| {
            format!(
                "    {{\"threads\": {}, \"wall_secs\": {}}}",
                run.threads,
                fmt_f(run.wall_secs)
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": {},\n  \"days\": {},\n  \"images\": {},\n  \"nodes\": {SOAK_NODES},\n  \
         \"converged\": {},\n  \"scrub_clean\": {},\n  \
         \"consistent_before_final_repair\": {},\n  \
         \"deterministic_across_threads\": true,\n  \
         \"read_checksum\": \"{}\",\n  \
         \"faults_injected\": {},\n  \
         \"fault_breakdown\": {{\"net_drops\": {}, \"net_duplicates\": {}, \
         \"net_transients\": {}, \"stream_corruptions\": {}, \"recv_crashes\": {}, \
         \"block_corruptions\": {}, \"offlines\": {}, \"rejoins\": {}, \"flaps\": {}, \
         \"partitions\": {}, \"heals\": {}, \"retries\": {}, \"giveups\": {}}},\n  \
         \"repair\": {{\"blocks_repaired\": {}, \"blocks_unrepaired\": {}, \
         \"repair_wire_bytes\": {}, \"sync_repaired_nodes\": {}, \"rejoin_failures\": {}}},\n  \
         \"workflows\": {{\"registrations\": {}, \"boots\": {}, \"warm_boots\": {}, \
         \"degraded_boots\": {}, \"storms\": {}, \"gc_runs\": {}, \"churn_applied\": {}}},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        r.days,
        r.registrations,
        r.converged,
        r.scrub_clean,
        r.consistent_before_final_repair,
        r.read_checksum,
        f.total_injected(),
        f.net_drops,
        f.net_duplicates,
        f.net_transients,
        f.stream_corruptions,
        f.recv_crashes,
        f.block_corruptions,
        f.offlines,
        f.rejoins,
        f.flaps,
        f.partitions,
        f.heals,
        f.retries,
        f.giveups,
        r.blocks_repaired,
        r.blocks_unrepaired,
        r.repair_wire_bytes,
        r.sync_repaired_nodes,
        r.rejoin_failures,
        r.registrations,
        r.boots,
        r.warm_boots,
        r.degraded_boots,
        r.storms,
        r.gc_runs,
        r.churn_applied,
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_converges_and_is_deterministic() {
        let cfg = ExperimentConfig::smoke();
        let runs = run_chaos(&cfg);
        assert_eq!(runs.len(), 3);
        assert!(runs[0].report.fault.total_injected() > 0);
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let cfg = ExperimentConfig { threads: 1, ..ExperimentConfig::smoke() };
        let runs = vec![ChaosRun {
            threads: 1,
            wall_secs: 0.5,
            report: chaos_soak(&soak_config(&cfg, 1)),
        }];
        let json = render_json(&cfg, &runs);
        for key in [
            "\"converged\": true",
            "\"scrub_clean\": true",
            "\"deterministic_across_threads\": true",
            "\"faults_injected\"",
            "\"blocks_repaired\"",
            "\"read_checksum\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
