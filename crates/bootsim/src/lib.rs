//! Trace-driven VM boot simulator — the machinery behind the paper's
//! Figure 11 (boot time vs cVolume block size) and the boot-time entries of
//! Table-like summaries.
//!
//! The simulator replays a boot read trace (from `squirrel-dataset`) through
//! a QCOW2-style request chain against one of four storage backends and
//! integrates I/O time over an explicit device model:
//!
//! * [`Backend::WarmCacheXfs`] — the warmed VMI cache as a compact plain
//!   file: short seeks, sequential transfers.
//! * [`Backend::BaseImageXfs`] — the classic CoW-over-local-VMI baseline:
//!   the boot working set is spread across the multi-GB image, so seeks are
//!   long.
//! * [`Backend::ColdCache`] — first boot: every miss crosses the network to
//!   the storage nodes and is written back to the local cache.
//! * [`Backend::DedupVolume`] — the warmed cache inside a dedup+gzip ZFS
//!   cVolume: DDT lookups, record-sized reads at scattered physical
//!   locations, whole-record decompression, and an ARC that keeps popular
//!   (cross-VMI shared) records resident.
//!
//! [`BootSim::boot_measured`] additionally replays a trace against a layout
//! *measured* from a real `squirrel-zfs` pool ([`MeasuredVolumeParams`]):
//! every seek is the actual head move between allocator-assigned extents,
//! which is how forward- vs reverse-dedup placement is priced.
//!
//! Mechanisms reproduced (paper Section 4.2.3): QCOW2's 64 KiB cluster
//! over-fetch acting as free prefetch; dedup-induced scattering punishing
//! small records; whole-record decompression punishing records larger than
//! the cluster size (why 128 KiB boots slower than 64 KiB).

mod model;
mod sim;

pub use model::{CpuModel, DiskModel, PageCache};
pub use sim::{Backend, BootReport, BootSim, DedupVolumeParams, MeasuredVolumeParams};
