//! Cross-crate integration: the qualitative shapes of the paper's figures
//! must hold on a small corpus. These are the claims the reproduction is
//! judged by — who wins, by roughly what factor, where crossovers fall.

use squirrel_repro::compress::Codec;
use squirrel_repro::dataset::analysis::{sweep, CompressionSampling, ContentSet};
use squirrel_repro::dataset::{Corpus, CorpusConfig};

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_images: 24,
        scale: 4096,
        ..CorpusConfig::azure(4096, 2014)
    })
}

fn stats(c: &Corpus, set: ContentSet, bs: usize) -> squirrel_repro::dataset::analysis::SweepStats {
    sweep(c, set, bs, Codec::Gzip(6), CompressionSampling::default(), 0)
}

#[test]
fn figure2_dedup_and_gzip_trends_oppose() {
    let c = corpus();
    let small = stats(&c, ContentSet::Caches, 2048);
    let large = stats(&c, ContentSet::Caches, 65536);
    // Dedup improves with smaller blocks; gzip improves with larger ones.
    assert!(small.dedup_ratio() >= large.dedup_ratio());
    assert!(large.compression_ratio() > small.compression_ratio());
}

#[test]
fn figure3_codec_ordering() {
    let c = corpus();
    let ratio = |codec| {
        sweep(&c, ContentSet::Caches, 32768, codec, CompressionSampling::default(), 0)
            .compression_ratio()
    };
    let g6 = ratio(Codec::Gzip(6));
    let lzjb = ratio(Codec::Lzjb);
    let lz4 = ratio(Codec::Lz4);
    assert!(g6 > lzjb, "gzip-6 {g6} must beat lzjb {lzjb}");
    assert!(g6 > lz4, "gzip-6 {g6} must beat lz4 {lz4}");
}

#[test]
fn figure4_ccr_has_interior_plateau_for_caches() {
    // The paper's headline insight: smaller blocks do NOT always help.
    let c = corpus();
    let ccr = |bs| stats(&c, ContentSet::Caches, bs).ccr();
    let at_1k = ccr(1024);
    let at_32k = ccr(32768);
    assert!(
        at_32k > 0.85 * at_1k,
        "CCR must not collapse at large blocks: 32k {at_32k} vs 1k {at_1k}"
    );
}

#[test]
fn figure12_caches_far_more_similar_than_images() {
    let c = corpus();
    let caches = stats(&c, ContentSet::Caches, 16384).cross_similarity();
    let images = stats(&c, ContentSet::Images, 16384).cross_similarity();
    assert!(
        caches > 1.5 * images,
        "caches {caches} vs images {images}"
    );
    assert!(caches > 0.4, "caches similarity {caches}");
}

#[test]
fn table1_reduction_chain() {
    let c = corpus();
    let caches = stats(&c, ContentSet::Caches, 131072);
    let original: u64 = c.iter().map(|i| i.virtual_bytes()).sum();
    let nonzero: u64 = c.iter().map(|i| i.nonzero_bytes()).sum();
    let cache_raw = caches.nonzero_bytes();
    let cache_ccr = caches.deduped_compressed_bytes();
    // The four-step reduction of Table 1, each step significant.
    assert!(nonzero * 5 < original, "sparseness: {nonzero} vs {original}");
    assert!(cache_raw * 4 < nonzero, "working sets: {cache_raw} vs {nonzero}");
    assert!(cache_ccr * 2 < cache_raw, "CCR: {cache_ccr} vs {cache_raw}");
}

#[test]
fn caches_add_fewer_unique_blocks_than_images() {
    // Figure 13's mechanism, stated per-image.
    let c = corpus();
    let caches = stats(&c, ContentSet::Caches, 16384);
    let images = stats(&c, ContentSet::Images, 16384);
    let cache_unique_frac = caches.unique_blocks as f64 / caches.nonzero_blocks as f64;
    let image_unique_frac = images.unique_blocks as f64 / images.nonzero_blocks as f64;
    assert!(
        cache_unique_frac < image_unique_frac,
        "caches {cache_unique_frac} vs images {image_unique_frac}"
    );
}
