//! Canonical Huffman entropy stage of the gzip-like codec.
//!
//! Frame layout:
//! * u32 LE: decoded length in bytes;
//! * u16 LE: byte count of the RLE-coded code-length table;
//! * RLE table: each byte encodes `(run, value)` — high nibble is run length
//!   minus one (1..=16 repeats), low nibble the 4-bit code length — covering
//!   all 256 symbols (0 = unused, 1..=15 = code length);
//! * LSB-first bitstream of canonical codes.
//!
//! Like DEFLATE, the code-length table is itself compressed, so the framing
//! overhead stays small but nonzero — small blocks still pay relatively more
//! header, one of the two mechanisms behind the paper's Figure 2 trend.

use crate::bitio::{BitReader, BitWriter};

const MAX_CODE_LEN: u32 = 15;

/// Build Huffman code lengths for `freq` (256 symbols), depth-limited to
/// [`MAX_CODE_LEN`] by iteratively flattening the histogram (zlib's trick).
fn build_lengths(freq: &[u64; 256]) -> [u8; 256] {
    let mut f = *freq;
    loop {
        let lengths = try_build_lengths(&f);
        if lengths.iter().all(|&l| (l as u32) <= MAX_CODE_LEN) {
            return lengths;
        }
        for v in f.iter_mut() {
            if *v > 0 {
                *v = (*v >> 2) + 1;
            }
        }
    }
}

/// One Huffman construction pass; may exceed the depth limit.
fn try_build_lengths(freq: &[u64; 256]) -> [u8; 256] {
    // Node arena: first 256 are leaves, internal nodes appended after.
    // Weights live in the heap entries; nodes only need their children.
    #[derive(Clone, Copy)]
    struct Node {
        left: u16,
        right: u16,
    }
    let mut nodes: Vec<Node> = (0..256)
        .map(|_| Node { left: u16::MAX, right: u16::MAX })
        .collect();

    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u16)>> = freq
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0)
        .map(|(s, &w)| std::cmp::Reverse((w, s as u16)))
        .collect();

    let mut lengths = [0u8; 256];
    match heap.len() {
        0 => return lengths,
        1 => {
            // Single distinct symbol: give it a 1-bit code.
            let std::cmp::Reverse((_, s)) = heap.pop().expect("one element");
            lengths[s as usize] = 1;
            return lengths;
        }
        _ => {}
    }

    while heap.len() > 1 {
        let std::cmp::Reverse((w1, n1)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((w2, n2)) = heap.pop().expect("len > 1");
        let id = nodes.len() as u16;
        nodes.push(Node { left: n1, right: n2 });
        heap.push(std::cmp::Reverse((w1 + w2, id)));
    }
    let root = heap.pop().expect("root").0 .1;

    // Iterative depth-first traversal assigning depths to leaves.
    let mut stack = vec![(root, 0u8)];
    while let Some((id, depth)) = stack.pop() {
        let node = nodes[id as usize];
        if node.left == u16::MAX {
            lengths[id as usize] = depth.max(1);
        } else {
            stack.push((node.left, depth + 1));
            stack.push((node.right, depth + 1));
        }
    }
    lengths
}

/// Canonical code assignment: shorter codes first, ties by symbol order.
/// Codes are stored bit-reversed so they can be emitted LSB-first.
fn assign_codes(lengths: &[u8; 256]) -> [u16; 256] {
    let mut count = [0u16; (MAX_CODE_LEN + 1) as usize];
    for &l in lengths.iter() {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next = [0u16; (MAX_CODE_LEN + 2) as usize];
    let mut code = 0u16;
    for l in 1..=MAX_CODE_LEN as usize {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    let mut codes = [0u16; 256];
    for s in 0..256 {
        let l = lengths[s] as usize;
        if l > 0 {
            let c = next[l];
            next[l] += 1;
            codes[s] = reverse_bits(c, l as u32);
        }
    }
    codes
}

#[inline]
fn reverse_bits(v: u16, n: u32) -> u16 {
    v.reverse_bits() >> (16 - n)
}

/// Entropy-code `data` (any byte stream).
pub fn huffman_compress(data: &[u8]) -> Vec<u8> {
    let mut freq = [0u64; 256];
    for &b in data {
        freq[b as usize] += 1;
    }
    let lengths = build_lengths(&freq);
    let codes = assign_codes(&lengths);

    let rle = rle_encode_lengths(&lengths);
    let mut w = BitWriter::with_capacity(data.len() / 2 + rle.len() + 8);
    // Header goes through the bit writer byte-aligned (it is first).
    for b in (data.len() as u32).to_le_bytes() {
        w.write(b as u64, 8);
    }
    for b in (rle.len() as u16).to_le_bytes() {
        w.write(b as u64, 8);
    }
    for &b in &rle {
        w.write(b as u64, 8);
    }
    for &b in data {
        let s = b as usize;
        w.write(codes[s] as u64, lengths[s] as u32);
    }
    w.finish()
}

/// RLE over the 256 code-length nibbles: one byte per run, high nibble =
/// run length minus one (1..=16), low nibble = code length.
fn rle_encode_lengths(lengths: &[u8; 256]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    let mut i = 0usize;
    while i < 256 {
        let v = lengths[i];
        let mut run = 1usize;
        while run < 16 && i + run < 256 && lengths[i + run] == v {
            run += 1;
        }
        out.push((((run - 1) as u8) << 4) | v);
        i += run;
    }
    out
}

fn rle_decode_lengths(rle: &[u8]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let mut i = 0usize;
    for &b in rle {
        let run = (b >> 4) as usize + 1;
        let v = b & 0x0f;
        for slot in lengths[i..].iter_mut().take(run) {
            *slot = v;
        }
        i += run;
    }
    assert_eq!(i, 256, "corrupt code-length table");
    lengths
}

/// Decode a [`huffman_compress`] frame.
pub fn huffman_decompress(frame: &[u8]) -> Vec<u8> {
    assert!(frame.len() >= 7, "huffman frame too short: {}", frame.len());
    let n = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
    let rle_len = u16::from_le_bytes(frame[4..6].try_into().expect("2 bytes")) as usize;
    let body_start = 6 + rle_len;
    let lengths = rle_decode_lengths(&frame[6..body_start]);

    // Canonical decode tables: for each length, the first canonical code and
    // the index of its first symbol in the length-sorted symbol list.
    let mut count = [0u16; (MAX_CODE_LEN + 1) as usize];
    for &l in lengths.iter() {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut first_code = [0u32; (MAX_CODE_LEN + 2) as usize];
    let mut first_sym = [0u16; (MAX_CODE_LEN + 2) as usize];
    let mut code = 0u32;
    let mut sym_base = 0u16;
    for l in 1..=MAX_CODE_LEN as usize {
        code = (code + count[l - 1] as u32) << 1;
        first_code[l] = code;
        first_sym[l] = sym_base;
        sym_base += count[l];
    }
    // Symbols sorted by (length, symbol) — canonical order.
    let mut sorted = Vec::with_capacity(sym_base as usize);
    for l in 1..=MAX_CODE_LEN as usize {
        for (s, &sl) in lengths.iter().enumerate() {
            if sl as usize == l {
                sorted.push(s as u8);
            }
        }
    }

    let mut r = BitReader::new(&frame[body_start..]);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Accumulate MSB-first code value until it falls within a length class.
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            code = (code << 1) | r.read_bit() as u32;
            len += 1;
            assert!(len <= MAX_CODE_LEN as usize, "corrupt huffman stream");
            let idx = code.wrapping_sub(first_code[len]);
            if idx < count[len] as u32 {
                out.push(sorted[(first_sym[len] as u32 + idx) as usize]);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8]) {
        let frame = huffman_compress(data);
        assert_eq!(huffman_decompress(&frame), data);
    }

    #[test]
    fn roundtrip_empty() {
        rt(b"");
    }

    #[test]
    fn roundtrip_single_symbol() {
        rt(b"aaaaaaaaaaaaaaaaaaaaaaaa");
        rt(b"a");
    }

    #[test]
    fn roundtrip_two_symbols() {
        rt(b"ababbbabababaabbbb");
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        rt(&data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% one symbol: entropy well under 1 bit/byte.
        let mut data = vec![0u8; 10_000];
        for i in (0..data.len()).step_by(20) {
            data[i] = (i / 20) as u8;
        }
        let frame = huffman_compress(&data);
        assert!(frame.len() < data.len() / 2, "{}", frame.len());
        rt(&data);
    }

    #[test]
    fn depth_limit_respected_on_exponential_freqs() {
        // Fibonacci-like frequencies force deep trees; the flattening loop
        // must cap them at MAX_CODE_LEN.
        let mut freq = [0u64; 256];
        let mut a = 1u64;
        let mut b = 2u64;
        for f in freq.iter_mut().take(40) {
            *f = a;
            let c = a + b;
            a = b;
            b = c.min(1 << 55);
        }
        let lengths = build_lengths(&freq);
        assert!(lengths.iter().all(|&l| (l as u32) <= MAX_CODE_LEN));
        // And all used symbols got codes.
        for (s, &l) in lengths.iter().enumerate().take(40) {
            assert!(l > 0, "symbol {s}");
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freq = [0u64; 256];
        for (s, f) in freq.iter_mut().enumerate() {
            *f = (s as u64 % 17) + 1;
        }
        let lengths = build_lengths(&freq);
        let codes = assign_codes(&lengths);
        // Check pairwise prefix-freeness on the bit-reversed (LSB-first) codes.
        for a in 0..256 {
            for b in 0..256 {
                if a == b {
                    continue;
                }
                let (la, lb) = (lengths[a] as u32, lengths[b] as u32);
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                let mask = (1u16 << la) - 1;
                assert!(
                    (codes[a] & mask) != (codes[b] & mask) || la == lb && codes[a] != codes[b],
                    "code {a} is a prefix of {b}"
                );
            }
        }
    }

    #[test]
    fn corrupt_stream_panics_not_hangs() {
        let mut frame = huffman_compress(b"hello world hello world");
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        // Either decodes to garbage of the right length or panics; must not hang.
        let _ = std::panic::catch_unwind(|| huffman_decompress(&frame));
    }
}
