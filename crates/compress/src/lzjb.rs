//! An LZJB-style codec (the scheme ZFS historically used for `compression=on`).
//!
//! Original implementation of the well-known format family: a control byte
//! carries eight flags; a set flag introduces a two-byte copy token packing a
//! 6-bit match length (lengths 3..=66) and a 10-bit backward offset
//! (1..=1024). Match candidates come from a 1 KiB last-occurrence table
//! hashed on a 3-byte prefix — one probe, no chains, which is what makes the
//! codec fast and its ratio modest, exactly the Figure 3 trade-off.

const MATCH_BITS: u32 = 6;
const MATCH_MIN: usize = 3;
const MATCH_MAX: usize = MATCH_MIN + (1 << MATCH_BITS) - 1; // 66
const OFFSET_MASK: usize = (1 << (16 - MATCH_BITS)) - 1; // 1023 -> offsets 1..=1024
const TABLE_SIZE: usize = 1024;

#[inline]
fn hash(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) << 16 | (data[i + 1] as u32) << 8 | (data[i + 2] as u32);
    (v.wrapping_mul(0x9e37_79b1) >> 22) as usize % TABLE_SIZE
}

/// Compress `data`; output may be larger than input on incompressible data
/// (the framing layer falls back to raw storage in that case).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n + n / 8 + 2);
    let mut table = [0usize; TABLE_SIZE];
    let mut table_set = [false; TABLE_SIZE];

    let mut i = 0usize;
    let mut ctrl_pos = out.len();
    out.push(0);
    let mut ctrl_bit = 0u8;

    while i < n {
        if ctrl_bit == 8 {
            ctrl_bit = 0;
            ctrl_pos = out.len();
            out.push(0);
        }
        let mut emitted_match = false;
        if i + MATCH_MIN <= n {
            let h = hash(data, i);
            let cand = table[h];
            let valid = table_set[h];
            table[h] = i;
            table_set[h] = true;
            if valid && cand < i {
                let offset = i - cand;
                if offset <= OFFSET_MASK + 1 {
                    let max_len = (n - i).min(MATCH_MAX);
                    let mut l = 0usize;
                    while l < max_len && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l >= MATCH_MIN {
                        out[ctrl_pos] |= 1 << ctrl_bit;
                        let token = (((l - MATCH_MIN) as u16) << (16 - MATCH_BITS))
                            | ((offset - 1) as u16);
                        out.extend_from_slice(&token.to_be_bytes());
                        i += l;
                        emitted_match = true;
                    }
                }
            }
        }
        if !emitted_match {
            out.push(data[i]);
            i += 1;
        }
        ctrl_bit += 1;
    }
    out
}

/// Decompress an LZJB stream of known decoded length.
pub fn decompress(src: &[u8], expected_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < src.len() && out.len() < expected_len {
        let ctrl = src[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expected_len || pos >= src.len() {
                break;
            }
            if ctrl & (1 << bit) != 0 {
                let token = u16::from_be_bytes([src[pos], src[pos + 1]]);
                pos += 2;
                let len = (token >> (16 - MATCH_BITS)) as usize + MATCH_MIN;
                let offset = (token as usize & OFFSET_MASK) + 1;
                let start = out.len() - offset;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(src[pos]);
                pos += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()), data);
    }

    #[test]
    fn roundtrip_basic() {
        rt(b"");
        rt(b"z");
        rt(b"hello hello hello hello");
    }

    #[test]
    fn roundtrip_runs() {
        rt(&vec![0xaa; 5000]);
    }

    #[test]
    fn max_match_split() {
        rt(&vec![1u8; MATCH_MAX * 4 + 7]);
    }

    #[test]
    fn offset_window_limit() {
        // Repeat at distance > 1024 is invisible to lzjb; must still roundtrip.
        let mut data = vec![0u8; 3000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 7) as u8;
        }
        rt(&data);
    }

    #[test]
    fn compresses_repetitive_input() {
        let data: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(4096).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 2, "{}", c.len());
    }

    #[test]
    fn token_encoding_boundaries() {
        // Exercise offset exactly 1 and exactly 1024.
        let mut data = Vec::new();
        data.extend_from_slice(&[9u8; 10]); // offset-1 matches
        data.extend(std::iter::repeat_n(0u8, 1024));
        data.extend_from_slice(&[9u8; 10]);
        rt(&data);
    }
}
