//! Data-center model: nodes, network links with per-node transfer ledgers,
//! IP multicast, and a glusterfs-like striped + replicated parallel file
//! system — the environment of the paper's Section 4.4 experiment.
//!
//! The DAS-4 deployment the paper measures has 64 compute nodes and 4
//! storage nodes running glusterfs with two levels of striping and two of
//! replication, connected by 1 GbE and QDR InfiniBand. Figure 18 charges
//! every byte that reaches a compute node's NIC; this crate implements that
//! ledger plus the storage-side distribution of reads.
//!
//! Beyond the flat DAS-4 model, the crate carries a failure-domain
//! [`Topology`] (region → datacenter → rack → node) with hierarchy-aware
//! link costs, CRUSH-style deterministic placement, and an
//! [`ErasureCodedVolume`] that stripes objects into k+m Reed–Solomon shards
//! spread across distinct racks — the substrate for correlated-failure
//! (rack/datacenter loss) chaos experiments.

mod erasure;
mod netsim;
mod parallelfs;
mod rscode;
mod topology;

pub use erasure::{
    EcConfig, EcError, EcReadReport, EcRepairReport, EcStats, EcWriteReport, ErasureCodedVolume,
};
pub use netsim::{
    LinkKind, NetError, Network, NodeId, NodeRole, TrafficLedger, TransferReport, TransferShape,
};
pub use parallelfs::{GlusterConfig, GlusterVolume};
pub use rscode::{rs_encode, rs_reconstruct, RsError};
pub use topology::{Domain, LinkScope, Topology, TopologyConfig};
