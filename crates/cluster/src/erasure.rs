//! An erasure-coded shared volume: k+m Reed–Solomon shards placed across
//! failure domains by the cluster [`Topology`].
//!
//! This replaces flat replication for the scVolume's *physical* layer:
//! where [`GlusterVolume`](crate::parallelfs::GlusterVolume) writes every
//! byte to `replicas` bricks, an [`ErasureCodedVolume`] stripes an object
//! into `k` data + `m` parity shards (storage overhead `(k+m)/k` instead of
//! `replicas`×) and places each stripe's shards on distinct racks via
//! CRUSH-style hashing ([`Topology::place`]). Reads serve from any `k`
//! reachable, intact shards; losing a data shard triggers
//! reconstruct-from-parity, charged to the network ledger as real (often
//! cross-domain) bytes. Repair re-materializes lost shards — and relocates
//! shards stranded in a downed domain onto replacement nodes in live
//! domains.
//!
//! Every byte stored is real: shard payloads live in the volume, every
//! decode is actual GF(256) arithmetic, and every read verifies the
//! decoded object against its recorded checksum — a degraded read can
//! *fail*, but it can never return wrong bytes.

use crate::netsim::{NetError, Network, NodeId};
use crate::rscode::{rs_encode, rs_reconstruct, RsError};
use std::collections::BTreeMap;

/// FNV-1a 64-bit — the shard/object integrity hash (std-only, this crate
/// stays a leaf).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Geometry of the erasure code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcConfig {
    /// Data shards per stripe.
    pub k: u32,
    /// Parity shards per stripe (the code tolerates any `m` losses).
    pub m: u32,
    /// Bytes per shard per stripe; a stripe covers `k * shard_unit` bytes
    /// of object data.
    pub shard_unit: u64,
}

impl Default for EcConfig {
    /// 4+2 over 64 KiB shard units: tolerates a whole rack when shards
    /// spread over ≥ 3 racks, at 1.5× storage overhead (vs 2× replication).
    fn default() -> Self {
        EcConfig { k: 4, m: 2, shard_unit: 64 * 1024 }
    }
}

/// Errors from the erasure-coded volume.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EcError {
    /// Invalid k/m geometry or mismatched shard lengths (see [`RsError`]).
    Code(RsError),
    /// A network transfer failed.
    Net(NetError),
    /// No object of that name.
    UnknownObject(String),
    /// Fewer than `k` shards of a stripe are reachable and intact.
    NotEnoughShards { object: String, stripe: u32, available: u32, needed: u32 },
    /// The decoded object failed its integrity check (never returned as
    /// data: the read errors instead).
    Corrupt(String),
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::Code(e) => write!(f, "erasure coding failed: {e}"),
            EcError::Net(e) => write!(f, "shard transfer failed: {e}"),
            EcError::UnknownObject(name) => write!(f, "no such object {name}"),
            EcError::NotEnoughShards { object, stripe, available, needed } => write!(
                f,
                "object {object} stripe {stripe}: {available} shards reachable, {needed} needed"
            ),
            EcError::Corrupt(name) => write!(f, "object {name} decoded to corrupt bytes"),
        }
    }
}

impl std::error::Error for EcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcError::Code(e) => Some(e),
            EcError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RsError> for EcError {
    fn from(e: RsError) -> Self {
        EcError::Code(e)
    }
}

impl From<NetError> for EcError {
    fn from(e: NetError) -> Self {
        EcError::Net(e)
    }
}

/// One stored shard: where it lives and (if present) its bytes.
#[derive(Clone, Debug)]
struct Shard {
    home: NodeId,
    /// `None` while the shard is lost: the home was unreachable at write
    /// time, or repair hasn't re-materialized it yet.
    data: Option<Vec<u8>>,
    checksum: u64,
}

impl Shard {
    fn is_healthy(&self) -> bool {
        self.data.as_deref().is_some_and(|d| fnv1a(d) == self.checksum)
    }
}

#[derive(Clone, Debug)]
struct StoredObject {
    len: u64,
    checksum: u64,
    /// `stripes[s]` holds `k + m` shards; `[0, k)` are data, `[k, k+m)`
    /// parity.
    stripes: Vec<Vec<Shard>>,
}

/// Counters accumulated over the volume's lifetime (all updated from the
/// serial orchestration path — deterministic at any thread count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EcStats {
    /// Reads fully served by the k data shards.
    pub direct_reads: u64,
    /// Reads that had to reconstruct at least one data shard from parity.
    pub degraded_reads: u64,
    /// Data shards rebuilt from parity during reads.
    pub read_reconstructions: u64,
    /// Shards re-materialized by repair passes.
    pub shards_rematerialized: u64,
    /// Shards relocated out of unreachable domains by repair passes.
    pub shards_relocated: u64,
    /// Bytes repair passes moved over the network.
    pub repair_bytes: u64,
    /// The subset of `repair_bytes` that crossed a failure-domain boundary.
    pub cross_domain_repair_bytes: u64,
}

/// What one read looked like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcReadReport {
    /// The object's bytes, verified against the stored checksum.
    pub data: Vec<u8>,
    /// Payload bytes that crossed the network to serve this read.
    pub net_bytes: u64,
    /// Seconds of the slowest shard transfer (shards stream in parallel).
    pub degraded: bool,
    /// Data shards reconstructed from parity.
    pub reconstructed: u64,
}

/// Outcome of one write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EcWriteReport {
    pub stripes: u32,
    /// Shards stored with real bytes on their home node.
    pub shards_stored: u32,
    /// Shards whose home was unreachable at write time (left lost; repair
    /// re-materializes them).
    pub shards_missed: u32,
    /// Payload bytes charged to the network.
    pub net_bytes: u64,
}

/// Outcome of one scrub-and-repair pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EcRepairReport {
    pub stripes_scanned: u64,
    /// Lost or corrupt shards rebuilt onto a (possibly new) home.
    pub shards_rematerialized: u64,
    /// Healthy shards moved out of an unreachable domain.
    pub shards_relocated: u64,
    /// Stripes with fewer than `k` usable donors — left for a later pass
    /// (or for [`ErasureCodedVolume::rewrite_object`] from an
    /// authoritative copy).
    pub unrepaired_stripes: u64,
    /// Objects owning at least one unrepaired stripe.
    pub unrepaired_objects: Vec<String>,
    pub repair_bytes: u64,
    pub cross_domain_repair_bytes: u64,
}

/// The erasure-coded shared volume. See the module docs.
pub struct ErasureCodedVolume {
    config: EcConfig,
    /// Storage nodes eligible to host shards, in id order.
    candidates: Vec<NodeId>,
    objects: BTreeMap<String, StoredObject>,
    stats: EcStats,
}

impl ErasureCodedVolume {
    /// Build over `candidates` (the storage nodes). Panics unless
    /// `k`, `m` are nonzero, `k + m <= 255`, and there are at least `k + m`
    /// candidate nodes — fewer would force co-located shards and the
    /// fault-tolerance claim would be vacuous.
    pub fn new(config: EcConfig, candidates: Vec<NodeId>) -> Self {
        assert!(
            config.k > 0 && config.m > 0 && config.k + config.m <= 255,
            "bad erasure geometry k={} m={}",
            config.k,
            config.m
        );
        assert!(
            candidates.len() as u32 >= config.k + config.m,
            "need at least k+m={} shard hosts, got {}",
            config.k + config.m,
            candidates.len()
        );
        assert!(config.shard_unit > 0, "shard unit must be nonzero");
        ErasureCodedVolume { config, candidates, objects: BTreeMap::new(), stats: EcStats::default() }
    }

    pub fn config(&self) -> EcConfig {
        self.config
    }

    pub fn stats(&self) -> EcStats {
        self.stats
    }

    pub fn has_object(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }

    pub fn object_len(&self, name: &str) -> Option<u64> {
        self.objects.get(name).map(|o| o.len)
    }

    pub fn object_names(&self) -> impl Iterator<Item = &str> {
        self.objects.keys().map(|s| s.as_str())
    }

    /// Drop `name` and its shards (deregistration). Returns whether the
    /// object existed.
    pub fn remove_object(&mut self, name: &str) -> bool {
        self.objects.remove(name).is_some()
    }

    /// Shard homes of `name`, per stripe — for placement assertions.
    pub fn shard_homes(&self, name: &str) -> Option<Vec<Vec<NodeId>>> {
        self.objects
            .get(name)
            .map(|o| o.stripes.iter().map(|s| s.iter().map(|sh| sh.home).collect()).collect())
    }

    /// Placement key for a stripe: stable under everything but the object
    /// name and stripe index.
    fn stripe_key(name: &str, stripe: usize) -> u64 {
        fnv1a(name.as_bytes()) ^ (stripe as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Store `data` as `name`, striping into k data + m parity shards per
    /// stripe, placed across distinct racks. Shards whose home is
    /// unreachable from `client` are recorded as lost (not silently written
    /// through a partition); the write itself never fails on partitions —
    /// repair re-materializes the losses, exactly like a real object store
    /// acking a quorum write.
    pub fn write(
        &mut self,
        net: &mut Network,
        client: NodeId,
        name: &str,
        data: &[u8],
    ) -> Result<EcWriteReport, EcError> {
        let k = self.config.k as usize;
        let m = self.config.m as usize;
        let stripe_data = self.config.shard_unit as usize * k;
        let mut report = EcWriteReport::default();
        let mut stripes = Vec::new();
        // An empty object still gets one (padded, all-zero) stripe so reads
        // and scrubs have something to verify.
        let source: &[u8] = if data.is_empty() { &[0u8] } else { data };
        for (s, chunk) in source.chunks(stripe_data.max(1)).enumerate() {
            let mut padded = chunk.to_vec();
            padded.resize(stripe_data, 0);
            let shards_data: Vec<Vec<u8>> = padded
                .chunks(self.config.shard_unit as usize)
                .map(<[u8]>::to_vec)
                .collect();
            let parity = rs_encode(k, m, &shards_data)?;
            let homes = net.topology().place(Self::stripe_key(name, s), &self.candidates, k + m);
            debug_assert_eq!(homes.len(), k + m);
            let mut stripe = Vec::with_capacity(k + m);
            for (i, bytes) in shards_data.iter().chain(parity.iter()).enumerate() {
                let home = homes[i];
                let checksum = fnv1a(bytes);
                if home == client || net.is_reachable(client, home) {
                    if home != client {
                        net.try_unicast(client, home, bytes.len() as u64)?;
                        report.net_bytes += bytes.len() as u64;
                    }
                    report.shards_stored += 1;
                    stripe.push(Shard { home, data: Some(bytes.clone()), checksum });
                } else {
                    report.shards_missed += 1;
                    stripe.push(Shard { home, data: None, checksum });
                }
            }
            stripes.push(stripe);
            report.stripes += 1;
        }
        self.objects.insert(
            name.to_string(),
            StoredObject { len: data.len() as u64, checksum: fnv1a(data), stripes },
        );
        Ok(report)
    }

    /// Read `name` back for `client`, from any `k` reachable intact shards
    /// per stripe (data shards preferred — a healthy volume never decodes).
    /// Reconstruction charges the parity transfers to the ledger like any
    /// other byte; the decoded object is verified against the stored
    /// checksum before it is returned.
    pub fn try_read(
        &mut self,
        net: &mut Network,
        client: NodeId,
        name: &str,
    ) -> Result<EcReadReport, EcError> {
        let k = self.config.k as usize;
        let m = self.config.m as usize;
        let obj = self
            .objects
            .get(name)
            .ok_or_else(|| EcError::UnknownObject(name.to_string()))?;
        let mut out = Vec::with_capacity(obj.len as usize);
        let mut net_bytes = 0u64;
        let mut degraded = false;
        let mut reconstructed = 0u64;
        // Decide every transfer first (reads must not charge a stripe and
        // then die on the next one): for each stripe pick the k serving
        // shards, erroring before any byte moves.
        let mut plan: Vec<Vec<usize>> = Vec::with_capacity(obj.stripes.len());
        for (s, stripe) in obj.stripes.iter().enumerate() {
            let usable: Vec<usize> = (0..k + m)
                .filter(|&i| {
                    let sh = &stripe[i];
                    sh.is_healthy() && (sh.home == client || net.is_reachable(sh.home, client))
                })
                .collect();
            if usable.len() < k {
                return Err(EcError::NotEnoughShards {
                    object: name.to_string(),
                    stripe: s as u32,
                    available: usable.len() as u32,
                    needed: k as u32,
                });
            }
            plan.push(usable.into_iter().take(k).collect());
        }
        for (stripe, serving) in obj.stripes.iter().zip(&plan) {
            for &i in serving {
                let sh = &stripe[i];
                if sh.home != client {
                    let len = sh.data.as_ref().expect("healthy").len() as u64;
                    net.try_unicast(sh.home, client, len)?;
                    net_bytes += len;
                }
            }
            if serving.iter().take(k).eq((0..k).collect::<Vec<_>>().iter()) {
                for &i in serving {
                    out.extend_from_slice(stripe[i].data.as_ref().expect("healthy"));
                }
            } else {
                degraded = true;
                let mut shards: Vec<Option<Vec<u8>>> = (0..k + m)
                    .map(|i| {
                        if serving.contains(&i) {
                            stripe[i].data.clone()
                        } else {
                            None
                        }
                    })
                    .collect();
                reconstructed += (0..k).filter(|i| shards[*i].is_none()).count() as u64;
                rs_reconstruct(k, m, &mut shards)?;
                for shard in shards.into_iter().take(k) {
                    out.extend_from_slice(&shard.expect("reconstructed"));
                }
            }
        }
        out.truncate(obj.len as usize);
        if fnv1a(&out) != obj.checksum {
            return Err(EcError::Corrupt(name.to_string()));
        }
        if degraded {
            self.stats.degraded_reads += 1;
            self.stats.read_reconstructions += reconstructed;
        } else {
            self.stats.direct_reads += 1;
        }
        Ok(EcReadReport { data: out, net_bytes, degraded, reconstructed })
    }

    /// Are all shards of all objects present and intact? (Reachability is a
    /// network question, not a data-health one: a partition degrades reads
    /// but does not make the volume dirty.)
    pub fn is_clean(&self) -> bool {
        self.objects
            .values()
            .all(|o| o.stripes.iter().all(|s| s.iter().all(Shard::is_healthy)))
    }

    /// Lost or corrupt shards across all objects.
    pub fn unhealthy_shards(&self) -> u64 {
        self.objects
            .values()
            .flat_map(|o| &o.stripes)
            .flat_map(|s| s.iter())
            .filter(|sh| !sh.is_healthy())
            .count() as u64
    }

    /// Fault hook: flip one byte of the `nth` stored shard (mod the shard
    /// population, objects in name order). Returns the victim's
    /// `(object, stripe, shard)` or `None` while the volume is empty or
    /// every shard is already lost.
    pub fn corrupt_nth_shard(&mut self, nth: u64) -> Option<(String, u32, u32)> {
        let present: Vec<(String, u32, u32)> = self
            .objects
            .iter()
            .flat_map(|(name, o)| {
                o.stripes.iter().enumerate().flat_map(move |(s, stripe)| {
                    stripe.iter().enumerate().filter_map(move |(i, sh)| {
                        sh.data.as_ref().map(|_| (name.clone(), s as u32, i as u32))
                    })
                })
            })
            .collect();
        if present.is_empty() {
            return None;
        }
        let (name, s, i) = present[(nth % present.len() as u64) as usize].clone();
        let shard = &mut self.objects.get_mut(&name).expect("present").stripes[s as usize]
            [i as usize];
        if let Some(data) = shard.data.as_mut() {
            data[0] ^= 0xff;
        }
        Some((name, s, i))
    }

    /// Scrub every stripe and repair what a pass can: rebuild lost or
    /// corrupt shards from any `k` healthy donors reachable from
    /// `coordinator`, and relocate shards stranded on unreachable nodes
    /// onto replacement hosts in reachable domains. Donor gathers and
    /// replacement placements are charged to the ledger; the cross-domain
    /// share is tallied separately. Stripes with fewer than `k` reachable
    /// donors are left unrepaired (see
    /// [`EcRepairReport::unrepaired_objects`]).
    pub fn scrub_and_repair(
        &mut self,
        net: &mut Network,
        coordinator: NodeId,
    ) -> EcRepairReport {
        let k = self.config.k as usize;
        let m = self.config.m as usize;
        let mut report = EcRepairReport::default();
        let names: Vec<String> = self.objects.keys().cloned().collect();
        for name in names {
            let mut object_unrepaired = false;
            let stripe_count = self.objects[&name].stripes.len();
            for s in 0..stripe_count {
                report.stripes_scanned += 1;
                let reachable = |n: NodeId, net: &Network| {
                    n == coordinator || net.is_reachable(coordinator, n)
                };
                // Victims: lost/corrupt shards anywhere, plus healthy
                // shards stranded behind a domain cut (relocated out).
                let (donors, victims): (Vec<usize>, Vec<usize>) = {
                    let stripe = &self.objects[&name].stripes[s];
                    let donors = (0..k + m)
                        .filter(|&i| stripe[i].is_healthy() && reachable(stripe[i].home, net))
                        .collect::<Vec<_>>();
                    let victims = (0..k + m)
                        .filter(|&i| !stripe[i].is_healthy() || !reachable(stripe[i].home, net))
                        .collect::<Vec<_>>();
                    (donors, victims)
                };
                if victims.is_empty() {
                    continue;
                }
                if donors.len() < k {
                    report.unrepaired_stripes += 1;
                    object_unrepaired = true;
                    continue;
                }
                // Gather k donors to the coordinator and rebuild the full
                // stripe.
                let mut shards: Vec<Option<Vec<u8>>> = vec![None; k + m];
                let mut gather_err = false;
                for &i in donors.iter().take(k) {
                    let (home, data) = {
                        let sh = &self.objects[&name].stripes[s][i];
                        (sh.home, sh.data.clone().expect("healthy donor"))
                    };
                    if home != coordinator {
                        let len = data.len() as u64;
                        match net.try_unicast(home, coordinator, len) {
                            Ok(_) => {
                                report.repair_bytes += len;
                                if net.scope(home, coordinator)
                                    != crate::topology::LinkScope::IntraRack
                                {
                                    report.cross_domain_repair_bytes += len;
                                }
                            }
                            Err(_) => {
                                gather_err = true;
                                break;
                            }
                        }
                    }
                    shards[i] = Some(data);
                }
                if gather_err || rs_reconstruct(k, m, &mut shards).is_err() {
                    report.unrepaired_stripes += 1;
                    object_unrepaired = true;
                    continue;
                }
                // Replacement homes for stranded victims: reachable
                // candidates not hosting a retained shard, rack-spread by
                // the placement hash.
                let retained: std::collections::BTreeSet<NodeId> = (0..k + m)
                    .filter(|i| !victims.contains(i))
                    .map(|i| self.objects[&name].stripes[s][i].home)
                    .collect();
                let avail: Vec<NodeId> = self
                    .candidates
                    .iter()
                    .copied()
                    .filter(|&n| reachable(n, net) && !retained.contains(&n))
                    .collect();
                let mut replacements = net
                    .topology()
                    .place(Self::stripe_key(&name, s), &avail, victims.len())
                    .into_iter();
                for &i in &victims {
                    let (old_home, was_healthy) = {
                        let sh = &self.objects[&name].stripes[s][i];
                        (sh.home, sh.is_healthy())
                    };
                    let home = if reachable(old_home, net) {
                        old_home
                    } else {
                        match replacements.next() {
                            Some(n) => n,
                            None => {
                                report.unrepaired_stripes += 1;
                                object_unrepaired = true;
                                continue;
                            }
                        }
                    };
                    let data = shards[i].clone().expect("reconstructed");
                    if home != coordinator {
                        let len = data.len() as u64;
                        if net.try_unicast(coordinator, home, len).is_err() {
                            report.unrepaired_stripes += 1;
                            object_unrepaired = true;
                            continue;
                        }
                        report.repair_bytes += len;
                        if net.scope(coordinator, home) != crate::topology::LinkScope::IntraRack {
                            report.cross_domain_repair_bytes += len;
                        }
                    }
                    let checksum = fnv1a(&data);
                    let sh = &mut self.objects.get_mut(&name).expect("present").stripes[s][i];
                    sh.home = home;
                    sh.data = Some(data);
                    sh.checksum = checksum;
                    if was_healthy {
                        report.shards_relocated += 1;
                    } else {
                        report.shards_rematerialized += 1;
                    }
                }
            }
            if object_unrepaired {
                report.unrepaired_objects.push(name);
            }
        }
        self.stats.shards_rematerialized += report.shards_rematerialized;
        self.stats.shards_relocated += report.shards_relocated;
        self.stats.repair_bytes += report.repair_bytes;
        self.stats.cross_domain_repair_bytes += report.cross_domain_repair_bytes;
        report
    }

    /// Rewrite `name` wholesale from an authoritative copy (the scVolume
    /// catalog) — the escape hatch when a stripe lost more than `m` shards
    /// and parity cannot bring it back.
    pub fn rewrite_object(
        &mut self,
        net: &mut Network,
        client: NodeId,
        name: &str,
        data: &[u8],
    ) -> Result<EcWriteReport, EcError> {
        self.objects.remove(name);
        self.write(net, client, name, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::LinkKind;
    use crate::topology::TopologyConfig;

    /// 4 compute + 8 storage over 4 racks: storage nodes 4..12, two per
    /// rack (node i in rack i%4).
    fn setup() -> (Network, ErasureCodedVolume) {
        let net = Network::with_topology(
            LinkKind::GbE,
            4,
            8,
            TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 },
        );
        let vol = ErasureCodedVolume::new(EcConfig::default(), (4..12).collect());
        (net, vol)
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn roundtrip_is_exact_and_direct() {
        let (mut net, mut vol) = setup();
        let data = payload(300_000);
        let w = vol.write(&mut net, 0, "obj", &data).unwrap();
        assert_eq!(w.shards_missed, 0);
        assert!(w.net_bytes > 0);
        let r = vol.try_read(&mut net, 1, "obj").unwrap();
        assert_eq!(r.data, data);
        assert!(!r.degraded);
        assert_eq!(vol.stats().direct_reads, 1);
        assert_eq!(vol.object_len("obj"), Some(300_000));
    }

    #[test]
    fn stripes_spread_across_distinct_racks() {
        let (mut net, mut vol) = setup();
        vol.write(&mut net, 0, "obj", &payload(600_000)).unwrap();
        for stripe in vol.shard_homes("obj").unwrap() {
            assert_eq!(stripe.len(), 6);
            let racks: std::collections::BTreeSet<u32> =
                stripe.iter().map(|&n| net.topology().rack_of(n)).collect();
            assert!(racks.len() >= 4, "6 shards over 4 racks use every rack: {stripe:?}");
        }
    }

    #[test]
    fn rack_loss_degrades_but_reads_are_byte_identical() {
        let (mut net, mut vol) = setup();
        let data = payload(500_000);
        vol.write(&mut net, 0, "obj", &data).unwrap();
        let healthy = vol.try_read(&mut net, 1, "obj").unwrap();
        // Client 1 lives in rack 1; take rack 0 down (client keeps its own
        // rack so it can still reach the survivors).
        assert_eq!(net.topology().rack_of(1), 1);
        net.rack_down(0);
        let degraded = vol.try_read(&mut net, 1, "obj").unwrap();
        assert_eq!(degraded.data, healthy.data, "degraded read is byte-identical");
        assert!(degraded.degraded, "rack 0 hosted data shards");
        assert!(degraded.reconstructed > 0);
        assert!(vol.stats().degraded_reads > 0);
        net.heal_all();
    }

    #[test]
    fn more_than_m_unreachable_shards_is_a_typed_error() {
        let (mut net, mut vol) = setup();
        vol.write(&mut net, 0, "obj", &payload(100_000)).unwrap();
        // Cut the client off from every storage node: 0 reachable < k.
        for n in 4..12 {
            net.partition(1, n);
        }
        match vol.try_read(&mut net, 1, "obj") {
            Err(EcError::NotEnoughShards { available: 0, needed: 4, .. }) => {}
            other => panic!("expected NotEnoughShards, got {other:?}"),
        }
        net.heal_all();
    }

    #[test]
    fn corrupt_shard_is_detected_and_repaired_in_place() {
        let (mut net, mut vol) = setup();
        let data = payload(200_000);
        vol.write(&mut net, 0, "obj", &data).unwrap();
        assert!(vol.is_clean());
        let victim = vol.corrupt_nth_shard(3).expect("shards exist");
        assert!(!vol.is_clean());
        assert_eq!(vol.unhealthy_shards(), 1);
        let rep = vol.scrub_and_repair(&mut net, 4);
        assert_eq!(rep.shards_rematerialized, 1, "{victim:?}: {rep:?}");
        assert!(rep.repair_bytes > 0);
        assert!(vol.is_clean());
        // Reads after repair serve the original bytes.
        assert_eq!(vol.try_read(&mut net, 2, "obj").unwrap().data, data);
    }

    #[test]
    fn repair_relocates_shards_out_of_a_downed_rack() {
        let (mut net, mut vol) = setup();
        let data = payload(400_000);
        vol.write(&mut net, 0, "obj", &data).unwrap();
        net.rack_down(0);
        // Coordinator in rack 1 (storage node 5): shards homed in rack 0
        // are stranded and must move to reachable racks.
        let rep = vol.scrub_and_repair(&mut net, 5);
        assert!(rep.shards_relocated > 0, "{rep:?}");
        assert_eq!(rep.unrepaired_stripes, 0, "{rep:?}");
        assert!(rep.cross_domain_repair_bytes > 0, "relocation crosses racks");
        for stripe in vol.shard_homes("obj").unwrap() {
            for home in stripe {
                assert_ne!(net.topology().rack_of(home), 0, "no shard left in the dead rack");
            }
        }
        // With the rack still down, reads are now direct again.
        let r = vol.try_read(&mut net, 1, "obj").unwrap();
        assert_eq!(r.data, data);
        net.heal_all();
    }

    #[test]
    fn write_through_partition_records_losses_and_repair_heals() {
        let (mut net, mut vol) = setup();
        let data = payload(250_000);
        // Client 0 cannot reach storage nodes 4 and 8 (rack 0).
        net.partition(0, 4);
        net.partition(0, 8);
        let w = vol.write(&mut net, 0, "obj", &data).unwrap();
        assert!(w.shards_missed > 0, "{w:?}");
        assert!(!vol.is_clean());
        // Degraded but correct read from a different client.
        let r = vol.try_read(&mut net, 2, "obj").unwrap();
        assert_eq!(r.data, data);
        net.heal_all();
        let rep = vol.scrub_and_repair(&mut net, 4);
        assert_eq!(rep.shards_rematerialized, u64::from(w.shards_missed), "{rep:?}");
        assert!(vol.is_clean());
    }

    #[test]
    fn rewrite_object_recovers_from_beyond_parity_loss() {
        let (mut net, mut vol) = setup();
        let data = payload(150_000);
        vol.write(&mut net, 0, "obj", &data).unwrap();
        // Rot more shards than parity can absorb.
        for nth in 0..4 {
            vol.corrupt_nth_shard(nth);
        }
        let rep = vol.scrub_and_repair(&mut net, 4);
        if rep.unrepaired_stripes > 0 {
            assert_eq!(rep.unrepaired_objects, vec!["obj".to_string()]);
            vol.rewrite_object(&mut net, 4, "obj", &data).unwrap();
        }
        assert!(vol.is_clean());
        assert_eq!(vol.try_read(&mut net, 1, "obj").unwrap().data, data);
    }

    #[test]
    fn empty_object_roundtrips() {
        let (mut net, mut vol) = setup();
        vol.write(&mut net, 0, "empty", &[]).unwrap();
        assert_eq!(vol.object_len("empty"), Some(0));
        let r = vol.try_read(&mut net, 1, "empty").unwrap();
        assert!(r.data.is_empty());
    }

    #[test]
    fn unknown_object_and_display() {
        let (mut net, mut vol) = setup();
        assert!(matches!(
            vol.try_read(&mut net, 0, "ghost"),
            Err(EcError::UnknownObject(_))
        ));
        let e: Box<dyn std::error::Error> = Box::new(EcError::NotEnoughShards {
            object: "o".into(),
            stripe: 2,
            available: 3,
            needed: 4,
        });
        assert_eq!(e.to_string(), "object o stripe 2: 3 shards reachable, 4 needed");
    }
}
