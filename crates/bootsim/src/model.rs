//! Device and CPU cost models.

/// Rotational-disk timing, defaults shaped on the DAS-4/VU nodes (two 7200
/// RPM SATA disks in software RAID-0).
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Minimum cost of any non-contiguous access (track-to-track + rotation).
    pub min_seek_ms: f64,
    /// Additional full-stroke seek cost; actual seeks interpolate by
    /// distance^0.4, the classic seek-curve shape.
    pub max_extra_seek_ms: f64,
    /// Distance treated as contiguous (readahead window).
    pub contiguous_bytes: u64,
    /// Span used to normalize seek distances (the device's busy region).
    pub span_bytes: u64,
    /// Sequential throughput, MB/s.
    pub seq_mbps: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            min_seek_ms: 0.8,
            max_extra_seek_ms: 7.2,
            contiguous_bytes: 512 * 1024,
            span_bytes: 64 << 30,
            seq_mbps: 210.0,
        }
    }
}

impl DiskModel {
    /// Seconds to read `len` bytes at `phys`, given the previous head
    /// position `prev_end`.
    pub fn read_seconds(&self, prev_end: u64, phys: u64, len: u64) -> f64 {
        let dist = prev_end.abs_diff(phys);
        let seek_s = if dist <= self.contiguous_bytes {
            0.0
        } else {
            let frac = (dist as f64 / self.span_bytes as f64).min(1.0);
            (self.min_seek_ms + self.max_extra_seek_ms * frac.powf(0.4)) / 1000.0
        };
        seek_s + len as f64 / (self.seq_mbps * 1e6)
    }
}

/// CPU-side costs of the boot path.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Fixed OS work per boot (kernel + userspace init), seconds. The paper
    /// reports <20 s average boots; I/O accounts for the rest.
    pub os_boot_seconds: f64,
    /// Dedup-table lookup: base cost plus a per-doubling term as the table
    /// grows (hash walk + deeper ZAP trees).
    pub ddt_lookup_base_us: f64,
    pub ddt_lookup_per_log2_us: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            os_boot_seconds: 14.0,
            ddt_lookup_base_us: 1.5,
            ddt_lookup_per_log2_us: 0.35,
        }
    }
}

impl CpuModel {
    /// Seconds for one DDT lookup in a table of `entries`.
    pub fn ddt_lookup_seconds(&self, entries: u64) -> f64 {
        let log2 = (entries.max(1) as f64).log2();
        (self.ddt_lookup_base_us + self.ddt_lookup_per_log2_us * log2) / 1e6
    }
}

/// A host page cache at fixed granule size: hits are free, capacity is
/// unbounded (boot working sets are far smaller than node RAM).
#[derive(Clone, Debug)]
pub struct PageCache {
    granule: u64,
    cached: std::collections::HashSet<u64>,
}

impl PageCache {
    pub fn new(granule: u64) -> Self {
        assert!(granule.is_power_of_two());
        PageCache { granule, cached: std::collections::HashSet::new() }
    }

    /// True if `offset..offset+len` is fully resident.
    pub fn contains(&self, offset: u64, len: u64) -> bool {
        let first = offset / self.granule;
        let last = (offset + len.max(1) - 1) / self.granule;
        (first..=last).all(|g| self.cached.contains(&g))
    }

    /// Mark `offset..offset+len` resident.
    pub fn insert(&mut self, offset: u64, len: u64) {
        let first = offset / self.granule;
        let last = (offset + len.max(1) - 1) / self.granule;
        for g in first..=last {
            self.cached.insert(g);
        }
    }

    pub fn resident_bytes(&self) -> u64 {
        self.cached.len() as u64 * self.granule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_reads_have_no_seek() {
        let d = DiskModel::default();
        let t = d.read_seconds(1000, 1000, 64 * 1024);
        let transfer = 65536.0 / (d.seq_mbps * 1e6);
        assert!((t - transfer).abs() < 1e-12);
    }

    #[test]
    fn far_seeks_cost_more_than_near() {
        let d = DiskModel::default();
        let near = d.read_seconds(0, 2 << 20, 4096);
        let far = d.read_seconds(0, 32 << 30, 4096);
        assert!(far > near, "{far} vs {near}");
        assert!(far < 0.010, "bounded by max seek: {far}");
    }

    #[test]
    fn seek_curve_monotone_in_distance() {
        let d = DiskModel::default();
        let mut prev = 0.0;
        for shift in 20..36 {
            let t = d.read_seconds(0, 1u64 << shift, 0);
            assert!(t >= prev, "shift {shift}");
            prev = t;
        }
    }

    #[test]
    fn ddt_lookup_grows_with_table() {
        let c = CpuModel::default();
        assert!(c.ddt_lookup_seconds(1 << 20) > c.ddt_lookup_seconds(1 << 10));
        assert!(c.ddt_lookup_seconds(1) > 0.0);
    }

    #[test]
    fn page_cache_hits_after_insert() {
        let mut pc = PageCache::new(4096);
        assert!(!pc.contains(0, 1));
        pc.insert(100, 5000);
        assert!(pc.contains(0, 4096));
        assert!(pc.contains(4096, 1024));
        assert!(!pc.contains(12288, 1));
        assert_eq!(pc.resident_bytes(), 2 * 4096);
    }

    #[test]
    fn page_cache_granule_rounding() {
        let mut pc = PageCache::new(4096);
        pc.insert(4095, 2); // straddles two granules
        assert!(pc.contains(0, 8192));
    }
}
