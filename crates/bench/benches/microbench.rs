//! Criterion micro-benchmarks for every substrate's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squirrel_bootsim::{Backend, BootSim, DedupVolumeParams};
use squirrel_compress::{compress, decompress, Codec};
use squirrel_core::paper_scale_trace;
use squirrel_curvefit::{fit_linear, fit_mmf};
use squirrel_dataset::{Corpus, CorpusConfig};
use squirrel_hash::{sha256, ContentHash};
use squirrel_qcow::{CorCache, CowImage, MemDisk, VirtualDisk};
use squirrel_zfs::{PoolConfig, ZPool};

fn content_block(n: usize) -> Vec<u8> {
    // Mixed texture matching corpus content (compressible + filler).
    let corpus = Corpus::generate(CorpusConfig::test_corpus(1, 5));
    let img = corpus.image(0);
    let mut buf = vec![0u8; n];
    img.read_at(0, &mut buf);
    buf
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [4096usize, 65536] {
        let data = content_block(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
        g.bench_with_input(BenchmarkId::new("content_hash_short", size), &data, |b, d| {
            b.iter(|| ContentHash::of(d).short())
        });
    }
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    let data = content_block(65536);
    for codec in [Codec::Gzip(6), Codec::Gzip(9), Codec::Lzjb, Codec::Lz4] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("compress", codec.name()), &data, |b, d| {
            b.iter(|| compress(codec, d))
        });
        let frame = compress(codec, &data);
        g.bench_with_input(BenchmarkId::new("decompress", codec.name()), &frame, |b, f| {
            b.iter(|| decompress(f, data.len()))
        });
    }
    g.finish();
}

fn bench_dataset(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset");
    let corpus = Corpus::generate(CorpusConfig::test_corpus(4, 9));
    let img = corpus.image(0);
    g.throughput(Throughput::Bytes(65536));
    g.bench_function("image_block_64k", |b| {
        let mut idx = 0u64;
        b.iter(|| {
            let blk = img.block(65536, idx % img.nonzero_blocks(65536));
            idx += 1;
            blk
        })
    });
    g.finish();
}

fn bench_zfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("zfs");
    let block = content_block(16384);
    g.throughput(Throughput::Bytes(block.len() as u64));
    g.bench_function("write_block_unique", |b| {
        let mut pool = ZPool::new(PoolConfig::new(16384, Codec::Lz4));
        pool.create_file("f");
        let mut i = 0u64;
        let mut blk = block.clone();
        b.iter(|| {
            blk[0] = blk[0].wrapping_add(1); // force uniqueness
            pool.write_block("f", i % 4096, &blk);
            i += 1;
        })
    });
    g.bench_function("write_block_dedup_hit", |b| {
        let mut pool = ZPool::new(PoolConfig::new(16384, Codec::Lz4));
        pool.create_file("f");
        pool.write_block("f", 0, &block);
        let mut i = 1u64;
        b.iter(|| {
            pool.write_block("f", 1 + i % 4096, &block);
            i += 1;
        })
    });
    g.bench_function("snapshot_send_recv", |b| {
        b.iter(|| {
            let mut src = ZPool::new(PoolConfig::new(16384, Codec::Lz4));
            src.create_file("f");
            for i in 0..8u64 {
                let mut blk = block.clone();
                blk[1] = i as u8;
                src.write_block("f", i, &blk);
            }
            src.snapshot("s");
            let stream = src.send_between(None, "s").expect("send");
            let mut dst = ZPool::new(PoolConfig::new(16384, Codec::Lz4));
            dst.recv(&stream).expect("recv");
            dst
        })
    });
    g.finish();
}

/// Ingest pipeline micro-number. The full thread sweep — phase breakdown,
/// determinism check, speedup gate, `results/BENCH_ingest.json` — lives in
/// the `ingest` experiment (`squirrel-experiments ingest`); this keeps a
/// criterion-tracked throughput figure on the same workload builder.
fn bench_ingest(c: &mut Criterion) {
    let bs = squirrel_bench::experiments::ingest::INGEST_BLOCK_SIZE;
    let n_blocks = 192usize;
    let (blocks, _census) = squirrel_bench::experiments::ingest::build_workload(
        n_blocks,
        bs,
        squirrel_bench::experiments::ingest::DEDUP_PCT,
        squirrel_bench::experiments::ingest::ZERO_PCT,
        21,
    );
    let logical = (n_blocks * bs) as u64;

    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Bytes((n_blocks * bs) as u64));
    g.bench_function("import_file_serial", |b| {
        b.iter(|| {
            let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)));
            pool.import_file("f", blocks.iter().cloned(), logical);
            pool
        })
    });
    // One persistent worker pool across iterations, the production shape.
    let workers = squirrel_hash::par::WorkerPool::new(8);
    g.bench_function("import_file_parallel_t8", |b| {
        b.iter(|| {
            let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)).with_threads(8));
            pool.set_worker_pool(workers.clone());
            pool.import_file_parallel("f", &blocks, logical);
            pool
        })
    });
    g.finish();
}

fn bench_qcow(c: &mut Criterion) {
    let mut g = c.benchmark_group("qcow");
    let base: Vec<u8> = content_block(1 << 20);
    g.throughput(Throughput::Bytes(65536));
    g.bench_function("cow_chain_read_64k", |b| {
        let mut chain = CowImage::new(CorCache::new(MemDisk::new(base.clone()), 65536));
        let mut buf = vec![0u8; 65536];
        let mut off = 0u64;
        b.iter(|| {
            chain.read_at(off % (1 << 20), &mut buf);
            off += 65536;
        })
    });
    g.finish();
}

fn bench_bootsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootsim");
    let trace = paper_scale_trace(132 << 20, 1);
    let sim = BootSim::new();
    g.bench_function("boot_dedup_volume_132mb_ws", |b| {
        b.iter(|| sim.boot(&trace, &Backend::DedupVolume(DedupVolumeParams::new(65536))))
    });
    g.bench_function("boot_baseline_132mb_ws", |b| {
        b.iter(|| sim.boot(&trace, &Backend::BaseImageXfs { image_bytes: 27 << 30 }))
    });
    g.finish();
}

fn bench_curvefit(c: &mut Criterion) {
    let mut g = c.benchmark_group("curvefit");
    let xs: Vec<f64> = (1..=300).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.05 * x + (x * 0.1).sin() * 0.01).collect();
    g.bench_function("fit_linear_300pts", |b| b.iter(|| fit_linear(&xs, &ys)));
    g.bench_function("fit_mmf_300pts", |b| b.iter(|| fit_mmf(&xs, &ys)));
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_compress,
    bench_dataset,
    bench_zfs,
    bench_ingest,
    bench_qcow,
    bench_bootsim,
    bench_curvefit
);
criterion_main!(benches);
