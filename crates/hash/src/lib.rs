//! Content hashing substrate for the Squirrel reproduction.
//!
//! ZFS-style deduplication is content addressed: every block is identified by
//! a cryptographic digest of its bytes. The paper's ZFS deployment uses
//! SHA-256 for dedup checksums, so this crate provides a from-scratch
//! FIPS 180-4 SHA-256 ([`sha256`], [`Sha256`]) plus cheap non-cryptographic
//! hashes ([`Fnv1a64`], [`mix64`]) for hot in-memory tables where HashDoS is
//! not a concern (see the Rust Performance Book's hashing chapter).

pub mod cdc;
mod fast;
pub mod par;
mod sha256;

pub use fast::{mix64, FnvBuildHasher, FnvHashMap, FnvHashSet, Fnv1a64};
pub use sha256::{sha256, Sha256};

/// Word-wise all-zero test, the fast path of ZFS-style zero-block elision.
///
/// Reads the buffer in 64-byte groups of `u64` words — OR-accumulated per
/// group so the optimizer can vectorize, with an early exit at the first
/// nonzero group, so data blocks (the common ingest case) bail out after
/// one cache line instead of traversing the whole block. Byte-wise tail
/// for lengths that are not a multiple of 8.
#[inline]
pub fn is_zero_block(data: &[u8]) -> bool {
    let mut groups = data.chunks_exact(64);
    for g in groups.by_ref() {
        let mut acc = 0u64;
        for w in g.chunks_exact(8) {
            acc |= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        }
        if acc != 0 {
            return false;
        }
    }
    let tail = groups.remainder();
    let mut words = tail.chunks_exact(8);
    let mut acc = 0u64;
    for w in words.by_ref() {
        acc |= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
    }
    acc == 0 && words.remainder().iter().all(|&b| b == 0)
}

/// Hash a batch of blocks across `threads` workers (0 = all cores),
/// returning digests in input order.
pub fn hash_blocks<B>(blocks: &[B], threads: usize) -> Vec<ContentHash>
where
    B: AsRef<[u8]> + Sync,
{
    par::parallel_map(blocks, threads, |_i, b| ContentHash::of(b.as_ref()))
}

/// A 256-bit content digest identifying a block's bytes.
///
/// This is the dedup key: two blocks with equal `ContentHash` are treated as
/// the same block (hash collisions are assumed not to occur, as in ZFS when
/// `dedup=sha256` without `verify`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Hash `data` into a `ContentHash` using SHA-256.
    #[inline]
    pub fn of(data: &[u8]) -> Self {
        ContentHash(sha256(data))
    }

    /// Fused zero-scan + hash: `None` for an all-zero block (which dedup
    /// elides without hashing), otherwise the digest. The zero probe exits
    /// at the first nonzero cache line, so a data block pays essentially
    /// one memory traversal — the hash — instead of a full scan plus a
    /// hash as with a standalone [`is_zero_block`] pre-pass.
    #[inline]
    pub fn of_nonzero(data: &[u8]) -> Option<Self> {
        if is_zero_block(data) {
            None
        } else {
            Some(Self::of(data))
        }
    }

    /// First 128 bits of the digest, for compact in-memory table keys.
    ///
    /// 128 bits keep the collision probability negligible (< 2^-60 for 10^9
    /// blocks) while halving table key size versus the full digest.
    #[inline]
    pub fn short(&self) -> u128 {
        u128::from_le_bytes(self.0[..16].try_into().expect("32-byte digest"))
    }

    /// Hex rendering of the full digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({}..)", &self.to_hex()[..16])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_of_matches_sha256() {
        assert_eq!(ContentHash::of(b"abc").0, sha256(b"abc"));
    }

    #[test]
    fn short_is_prefix() {
        let h = ContentHash::of(b"squirrel");
        let bytes = h.short().to_le_bytes();
        assert_eq!(&bytes[..], &h.0[..16]);
    }

    #[test]
    fn hex_roundtrip_length_and_chars() {
        let h = ContentHash::of(b"");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(
            hex,
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(ContentHash::of(b"a"), ContentHash::of(b"b"));
    }

    #[test]
    fn debug_is_compact() {
        let d = format!("{:?}", ContentHash::of(b"x"));
        assert!(d.starts_with("ContentHash("));
        assert!(d.len() < 40);
    }

    #[test]
    fn zero_block_detection() {
        assert!(is_zero_block(&[]));
        assert!(is_zero_block(&[0u8; 64]));
        assert!(is_zero_block(&[0u8; 13])); // non-multiple-of-8 tail
        let mut buf = [0u8; 64];
        buf[63] = 1;
        assert!(!is_zero_block(&buf));
        let mut buf = [0u8; 13];
        buf[12] = 1;
        assert!(!is_zero_block(&buf));
        buf[12] = 0;
        buf[0] = 1;
        assert!(!is_zero_block(&buf));
    }

    #[test]
    fn of_nonzero_fuses_zero_probe_and_hash() {
        assert_eq!(ContentHash::of_nonzero(&[0u8; 4096]), None);
        assert_eq!(ContentHash::of_nonzero(&[]), None);
        let mut buf = vec![0u8; 4096];
        buf[4095] = 7;
        assert_eq!(ContentHash::of_nonzero(&buf), Some(ContentHash::of(&buf)));
        // Nonzero byte in the first group too (early-exit path).
        buf[0] = 9;
        assert_eq!(ContentHash::of_nonzero(&buf), Some(ContentHash::of(&buf)));
    }

    #[test]
    fn hash_blocks_matches_serial_at_any_thread_count() {
        let blocks: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 100]).collect();
        let serial: Vec<ContentHash> =
            blocks.iter().map(|b| ContentHash::of(b)).collect();
        for threads in [1, 2, 8] {
            assert_eq!(hash_blocks(&blocks, threads), serial);
        }
    }
}
