//! Figure 11: average boot time versus cVolume block size, with the three
//! reference lines (qcow2-over-XFS baseline, cold cache, warm cache on XFS).
//!
//! The cVolume parameters fed to the boot simulator are *measured* from a
//! real pool holding the whole cache corpus at each block size (compressed
//! fraction, DDT entries, pool span, cross-shared fraction), then projected
//! to paper volume by the corpus scale factor.

use crate::config::{ExperimentConfig, BOOT_BS_SWEEP};
use crate::csvout::{fmt_f, Table};
use squirrel_bootsim::{Backend, BootSim, DedupVolumeParams};
use squirrel_compress::Codec;
use squirrel_core::paper_scale_trace;
use squirrel_dataset::Corpus;
use squirrel_zfs::{PoolConfig, ZPool};

/// Measured cVolume parameters at one block size.
#[derive(Clone, Copy, Debug)]
pub struct CvolMeasurement {
    pub block_size: usize,
    pub compressed_fraction: f64,
    pub ddt_entries_projected: u64,
    pub pool_physical_projected: u64,
    pub mean_shared_fraction: f64,
}

/// Store all caches into a pool at `bs` and measure the simulator inputs.
pub fn measure_cvol(corpus: &Corpus, bs: usize) -> CvolMeasurement {
    let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)).accounting_only());
    for img in corpus.iter() {
        let cache = img.cache();
        pool.import_file(&format!("c-{}", img.id()), cache.blocks(bs), cache.bytes());
    }
    let stats = pool.stats();
    let scale = corpus.config().scale;
    let shared: f64 = corpus
        .iter()
        .filter_map(|img| pool.file_shared_fraction(&format!("c-{}", img.id()), 1))
        .sum::<f64>()
        / corpus.len().max(1) as f64;
    CvolMeasurement {
        block_size: bs,
        compressed_fraction: (stats.physical_bytes as f64
            / (stats.unique_blocks.max(1) * stats.block_size) as f64)
            .clamp(0.02, 1.0),
        // Entry count scales with corpus bytes; project to the 607-image,
        // full-volume catalog.
        ddt_entries_projected: (stats.unique_blocks as f64
            * scale as f64
            * 607.0
            / corpus.len().max(1) as f64) as u64,
        pool_physical_projected: (stats.physical_bytes as f64
            * scale as f64
            * 607.0
            / corpus.len().max(1) as f64) as u64,
        mean_shared_fraction: shared,
    }
}

/// One Figure 11 row.
#[derive(Clone, Copy, Debug)]
pub struct BootPoint {
    pub block_size: usize,
    pub warm_zfs_s: f64,
    pub qcow2_xfs_s: f64,
    pub cold_xfs_s: f64,
    pub warm_xfs_s: f64,
}

/// Boot a sample of images against each backend and average.
pub fn fig11_points(cfg: &ExperimentConfig, block_sizes: &[usize], sample: usize) -> Vec<BootPoint> {
    let corpus = cfg.corpus();
    let sim = BootSim::new();
    let scale = corpus.config().scale;
    let sample: Vec<u32> = (0..corpus.len() as u32)
        .step_by((corpus.len() / sample.max(1)).max(1))
        .collect();

    // The three flat reference lines are block-size independent.
    let mut base_sum = 0.0;
    let mut cold_sum = 0.0;
    let mut warmx_sum = 0.0;
    for &id in &sample {
        let img = corpus.image(id);
        let ws = img.cache().bytes() * scale;
        let image_bytes = img.virtual_bytes() * scale;
        let trace = paper_scale_trace(ws, id as u64);
        base_sum += sim
            .boot(&trace, &Backend::BaseImageXfs { image_bytes })
            .total_seconds;
        cold_sum += sim
            .boot(&trace, &Backend::ColdCache { net_mbps: 112.0, image_bytes })
            .total_seconds;
        warmx_sum += sim.boot(&trace, &Backend::WarmCacheXfs).total_seconds;
    }
    let n = sample.len() as f64;
    let (base, cold, warmx) = (base_sum / n, cold_sum / n, warmx_sum / n);

    block_sizes
        .iter()
        .map(|&bs| {
            let m = measure_cvol(&corpus, bs);
            let mut zfs_sum = 0.0;
            for &id in &sample {
                let img = corpus.image(id);
                let ws = img.cache().bytes() * scale;
                let trace = paper_scale_trace(ws, id as u64);
                let params = DedupVolumeParams {
                    record_size: bs as u64,
                    compressed_fraction: m.compressed_fraction,
                    ddt_entries: m.ddt_entries_projected,
                    pool_physical_bytes: m.pool_physical_projected.max(1),
                    shared_fraction: m.mean_shared_fraction,
                    ..DedupVolumeParams::new(bs as u64)
                };
                zfs_sum += sim
                    .boot(&trace, &Backend::DedupVolume(params))
                    .total_seconds;
            }
            BootPoint {
                block_size: bs,
                warm_zfs_s: zfs_sum / n,
                qcow2_xfs_s: base,
                cold_xfs_s: cold,
                warm_xfs_s: warmx,
            }
        })
        .collect()
}

/// Render + persist Figure 11.
pub fn run_fig11(cfg: &ExperimentConfig) -> Vec<BootPoint> {
    let pts = fig11_points(cfg, &BOOT_BS_SWEEP, 24);
    let mut t = Table::new(&[
        "block_kb",
        "warm_caches_zfs_s",
        "qcow2_xfs_s",
        "cold_caches_xfs_s",
        "warm_caches_xfs_s",
    ]);
    for p in &pts {
        t.push(vec![
            (p.block_size / 1024).to_string(),
            fmt_f(p.warm_zfs_s),
            fmt_f(p.qcow2_xfs_s),
            fmt_f(p.cold_xfs_s),
            fmt_f(p.warm_xfs_s),
        ]);
    }
    t.print("Figure 11: average boot time from deduplicated, compressed VMI caches");
    t.write(&cfg.out_dir, "fig11").expect("csv");
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_shape_holds_on_smoke_corpus() {
        let pts = fig11_points(&ExperimentConfig::smoke(), &[1024, 65536, 131072], 4);
        let (p1k, p64k, p128k) = (&pts[0], &pts[1], &pts[2]);
        // Small blocks much slower; 128 KiB slower than 64 KiB; warm beats
        // baseline at the sweet spot; cold is the slowest reference line.
        assert!(p1k.warm_zfs_s > 1.3 * p64k.warm_zfs_s, "{pts:?}");
        assert!(p128k.warm_zfs_s > p64k.warm_zfs_s, "{pts:?}");
        assert!(p64k.warm_zfs_s < p64k.qcow2_xfs_s, "{pts:?}");
        assert!(p64k.cold_xfs_s > p64k.qcow2_xfs_s, "{pts:?}");
        assert!(p64k.warm_xfs_s < p64k.qcow2_xfs_s, "{pts:?}");
    }

    #[test]
    fn measured_params_move_with_block_size() {
        let corpus = ExperimentConfig::smoke().corpus();
        let small = measure_cvol(&corpus, 4096);
        let large = measure_cvol(&corpus, 65536);
        assert!(small.ddt_entries_projected > large.ddt_entries_projected);
        assert!(small.compressed_fraction > large.compressed_fraction, "small blocks compress worse");
    }
}
