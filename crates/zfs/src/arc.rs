//! An ARC-style read cache: a byte-bounded LRU of decompressed records.
//!
//! ZFS serves repeated reads of hot records from the ARC without touching
//! the device or re-inflating gzip. On Squirrel compute nodes this is what
//! keeps the popular cross-VMI shared records resident, masking the dedup
//! scattering penalty (the `hot_fraction` the boot simulator consumes). The
//! real structure is adaptive (MRU/MFU ghost lists); for the behaviours the
//! reproduction measures, a plain LRU with byte accounting suffices and is
//! documented as such.

use crate::ddt::{BlockKey, SharedPayload};
use crate::pool::ZPool;
use squirrel_obs::{Counter, Metrics};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArcStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl ArcStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Doubly-linked LRU over block keys with byte-capacity eviction.
pub struct ArcCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// key -> (data, prev, next); the list is threaded through the map.
    entries: HashMap<BlockKey, Entry>,
    head: Option<BlockKey>, // most recent
    tail: Option<BlockKey>, // least recent
    stats: ArcStats,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_copied: Counter,
}

struct Entry {
    /// Shared with the pool's decompression output (and any other reader
    /// holding the block): a cache hit hands out another reference, the
    /// bytes themselves are never duplicated.
    data: SharedPayload,
    prev: Option<BlockKey>,
    next: Option<BlockKey>,
}

impl ArcCache {
    pub fn new(capacity_bytes: u64) -> Self {
        ArcCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            head: None,
            tail: None,
            stats: ArcStats::default(),
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
            bytes_copied: Counter::default(),
        }
    }

    /// Attach observability: hits/misses/evictions additionally accumulate
    /// into `arc_*_total` counters on `metrics`. `arc_bytes_copied_total`
    /// charges every payload byte the cache duplicates — the shared-payload
    /// read path keeps it at zero (regression-tested).
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.hits = metrics.counter("arc_hits_total");
        self.misses = metrics.counter("arc_misses_total");
        self.evictions = metrics.counter("arc_evictions_total");
        self.bytes_copied = metrics.counter("arc_bytes_copied_total");
    }

    pub fn stats(&self) -> ArcStats {
        self.stats
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn unlink(&mut self, key: BlockKey) {
        let (prev, next) = {
            let e = &self.entries[&key];
            (e.prev, e.next)
        };
        match prev {
            Some(p) => self.entries.get_mut(&p).expect("linked prev").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.entries.get_mut(&n).expect("linked next").prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, key: BlockKey) {
        let old_head = self.head;
        {
            let e = self.entries.get_mut(&key).expect("entry exists");
            e.prev = None;
            e.next = old_head;
        }
        if let Some(h) = old_head {
            self.entries.get_mut(&h).expect("old head").prev = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }

    /// Get a record, moving it to the front on hit. The returned reference
    /// points at the shared payload; clone the `Arc` (a refcount bump) to
    /// keep it past the borrow.
    pub fn get(&mut self, key: BlockKey) -> Option<&SharedPayload> {
        if self.entries.contains_key(&key) {
            self.stats.hits += 1;
            self.hits.inc();
            self.unlink(key);
            self.push_front(key);
            Some(&self.entries[&key].data)
        } else {
            self.stats.misses += 1;
            self.misses.inc();
            None
        }
    }

    /// Insert a record (no-op if present), evicting LRU entries to fit.
    /// Takes ownership of a payload reference: the caller's buffer is
    /// shared, not copied.
    pub fn insert(&mut self, key: BlockKey, data: SharedPayload) {
        if self.entries.contains_key(&key) {
            return;
        }
        let size = data.len() as u64;
        if size > self.capacity_bytes {
            // Larger than the whole cache: bypass *before* evicting anything
            // — flushing residents for a record that can never fit would only
            // destroy the working set.
            return;
        }
        while self.used_bytes + size > self.capacity_bytes {
            let Some(victim) = self.tail else { break };
            self.unlink(victim);
            let e = self.entries.remove(&victim).expect("tail entry");
            self.used_bytes -= e.data.len() as u64;
            self.stats.evictions += 1;
            self.evictions.inc();
        }
        self.used_bytes += size;
        self.entries.insert(key, Entry { data, prev: None, next: None });
        self.push_front(key);
    }

    /// Read a block through the cache: hit serves from memory, miss reads
    /// (and decompresses) from the pool and caches the result. Returns
    /// `None` when the file does not exist. Holes bypass the cache and are
    /// served as the pool's shared zero block (they cost nothing to
    /// materialize).
    ///
    /// Zero-copy on both paths: a hit hands out another reference to the
    /// cached payload, a miss caches the very buffer the pool's
    /// decompression just produced. No payload bytes are duplicated
    /// (see `arc_bytes_copied_total`).
    pub fn read_through(
        &mut self,
        pool: &ZPool,
        file: &str,
        block_idx: u64,
    ) -> Option<SharedPayload> {
        match pool.block_ref(file, block_idx)? {
            None => Some(pool.zero_block_shared()),
            Some(r) => {
                if let Some(data) = self.get(r.key) {
                    return Some(Arc::clone(data));
                }
                let data = pool.read_block_shared(file, block_idx)?;
                self.insert(r.key, Arc::clone(&data));
                Some(data)
            }
        }
    }

    /// Legacy copying read for callers that need an owned, mutable buffer.
    /// This is the only ARC path that duplicates payload bytes; every copy
    /// is charged to `arc_bytes_copied_total` so tests can assert the hot
    /// path performs none.
    pub fn read_through_owned(
        &mut self,
        pool: &ZPool,
        file: &str,
        block_idx: u64,
    ) -> Option<Vec<u8>> {
        let data = self.read_through(pool, file, block_idx)?;
        self.bytes_copied.add(data.len() as u64);
        Some(data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use squirrel_compress::Codec;

    fn shared(fill: u8, n: usize) -> SharedPayload {
        vec![fill; n].into()
    }

    #[test]
    fn hit_after_insert() {
        let mut arc = ArcCache::new(1024);
        arc.insert(1, shared(7, 100));
        assert_eq!(arc.get(1).map(|d| d[0]), Some(7));
        assert_eq!(arc.stats().hits, 1);
        assert_eq!(arc.used_bytes(), 100);
    }

    #[test]
    fn lru_eviction_order() {
        let mut arc = ArcCache::new(250);
        arc.insert(1, shared(1, 100));
        arc.insert(2, shared(2, 100));
        // Touch 1 so 2 becomes LRU.
        assert!(arc.get(1).is_some());
        arc.insert(3, shared(3, 100)); // evicts 2
        assert!(arc.get(2).is_none());
        assert!(arc.get(1).is_some());
        assert!(arc.get(3).is_some());
        assert_eq!(arc.stats().evictions, 1);
    }

    #[test]
    fn oversized_record_bypasses() {
        let mut arc = ArcCache::new(50);
        arc.insert(1, shared(1, 100));
        assert!(arc.is_empty());
        assert_eq!(arc.used_bytes(), 0);
    }

    /// Regression test for the eviction-ordering bug: `insert` used to run
    /// the LRU eviction loop *before* the oversized-bypass check, so one
    /// payload larger than the whole cache flushed every resident entry and
    /// then bypassed anyway. A bypass must leave the residents (and the
    /// eviction counter) untouched.
    #[test]
    fn oversized_insert_into_warm_cache_keeps_residents() {
        let mut arc = ArcCache::new(250);
        arc.insert(1, shared(1, 100));
        arc.insert(2, shared(2, 100));
        arc.insert(9, shared(9, 300)); // larger than the cache: bypass
        assert_eq!(arc.len(), 2, "residents must survive the bypass");
        assert_eq!(arc.used_bytes(), 200);
        assert_eq!(arc.stats().evictions, 0, "a bypass evicts nothing");
        assert!(arc.get(1).is_some());
        assert!(arc.get(2).is_some());
        assert!(arc.get(9).is_none());
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut arc = ArcCache::new(1000);
        arc.insert(1, shared(1, 100));
        arc.insert(1, shared(9, 100));
        assert_eq!(arc.get(1).map(|d| d[0]), Some(1), "first contents kept");
        assert_eq!(arc.used_bytes(), 100);
    }

    #[test]
    fn eviction_chain_under_pressure() {
        let mut arc = ArcCache::new(300);
        for k in 0..10u128 {
            arc.insert(k, shared(k as u8, 100));
        }
        assert_eq!(arc.len(), 3);
        assert_eq!(arc.used_bytes(), 300);
        // The three most recent survive.
        assert!(arc.get(9).is_some());
        assert!(arc.get(8).is_some());
        assert!(arc.get(7).is_some());
        assert!(arc.get(0).is_none());
    }

    #[test]
    fn read_through_hits_skip_pool_decompression() {
        let mut pool = ZPool::new(PoolConfig::new(512, Codec::Gzip(6)));
        pool.create_file("f");
        pool.write_block("f", 0, &[42u8; 512]);
        pool.write_block("f", 2, &[0u8; 512]); // hole via zero write
        let mut arc = ArcCache::new(1 << 20);
        let a = arc.read_through(&pool, "f", 0).expect("file");
        let b = arc.read_through(&pool, "f", 0).expect("file");
        assert_eq!(a, b);
        assert_eq!(arc.stats().hits, 1);
        assert_eq!(arc.stats().misses, 1);
        // Holes are served as zeros without caching.
        let hole = arc.read_through(&pool, "f", 2).expect("file");
        assert_eq!(&hole[..], &[0u8; 512][..]);
        assert!(arc.read_through(&pool, "missing", 0).is_none());
    }

    /// Regression test for the double-copy bug: a hit used to `to_vec()` and
    /// a miss used to `clone()` before insert. With shared payloads the warm
    /// read is the *same allocation* as the cached entry (`Arc::ptr_eq`) and
    /// `arc_bytes_copied_total` stays zero; only the legacy owned accessor
    /// copies.
    #[test]
    fn read_through_copies_zero_payload_bytes() {
        let registry = squirrel_obs::MetricsRegistry::new();
        let mut pool = ZPool::new(PoolConfig::new(512, Codec::Lz4));
        pool.create_file("f");
        pool.write_block("f", 0, &[7u8; 512]);
        let mut arc = ArcCache::new(1 << 20);
        arc.set_metrics(&registry.handle());

        let miss = arc.read_through(&pool, "f", 0).expect("file");
        let hit = arc.read_through(&pool, "f", 0).expect("file");
        // Both reads alias the single cached buffer: no bytes duplicated.
        assert!(Arc::ptr_eq(&miss, &hit));
        assert!(Arc::ptr_eq(&miss, &arc.entries[&pool.block_ref("f", 0).unwrap().unwrap().key].data));
        assert_eq!(registry.snapshot().counter("arc_bytes_copied_total"), Some(0));

        // Hole reads alias the pool's shared zero block.
        let z1 = arc.read_through(&pool, "f", 9).expect("hole");
        let z2 = pool.zero_block_shared();
        assert!(Arc::ptr_eq(&z1, &z2));
        assert_eq!(registry.snapshot().counter("arc_bytes_copied_total"), Some(0));

        // The legacy owned accessor is the only copying path, and it pays
        // the counter.
        let owned = arc.read_through_owned(&pool, "f", 0).expect("file");
        assert_eq!(owned, vec![7u8; 512]);
        assert_eq!(registry.snapshot().counter("arc_bytes_copied_total"), Some(512));
    }

    #[test]
    fn read_through_dedups_cache_space_across_files() {
        // Two files sharing a block share one ARC entry (keyed by content).
        let mut pool = ZPool::new(PoolConfig::new(512, Codec::Lz4));
        pool.create_file("a");
        pool.create_file("b");
        pool.write_block("a", 0, &[9u8; 512]);
        pool.write_block("b", 0, &[9u8; 512]);
        let mut arc = ArcCache::new(1 << 20);
        arc.read_through(&pool, "a", 0).expect("file");
        arc.read_through(&pool, "b", 0).expect("file");
        assert_eq!(arc.len(), 1, "content-addressed: one entry");
        assert_eq!(arc.stats().hits, 1, "second file hits the shared entry");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Byte accounting and capacity bounds hold under arbitrary
        /// insert/get interleavings.
        #[test]
        fn capacity_never_exceeded(
            ops in proptest::collection::vec((0u128..20, 1usize..200, any::<bool>()), 1..100)
        ) {
            let mut arc = ArcCache::new(500);
            for (key, size, is_get) in ops {
                if is_get {
                    let _ = arc.get(key);
                } else {
                    arc.insert(key, vec![0u8; size].into());
                }
                prop_assert!(arc.used_bytes() <= 500);
                // Recompute used bytes from entries for consistency.
                let real: u64 = (0..20u128)
                    .filter_map(|k| arc.entries.get(&k).map(|e| e.data.len() as u64))
                    .sum();
                prop_assert_eq!(real, arc.used_bytes());
            }
        }
    }
}
