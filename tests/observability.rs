//! The observability layer's determinism contract, end to end: the metric
//! snapshot of a full workflow sequence is bit-identical at any thread
//! count, and round-trips through both export formats.

use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use squirrel_repro::obs::MetricsSnapshot;
use std::sync::Arc;

/// Register, boot warm and cold, knock a node out, rejoin it, GC, and
/// measure the ARC — every workflow that records metrics.
fn run_workflows(threads: usize) -> Squirrel {
    // Census-head corpus: one dominant family, so consecutive caches share
    // records (the ARC measurement needs genuine cross-image hits).
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        scale: 1024,
        ..CorpusConfig::test_corpus(8, 99)
    }));
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(4)
            .block_size(16 * 1024)
            .threads(threads)
            .build(),
        corpus,
    );
    sq.register(0).expect("r0");
    sq.node_offline(3).expect("offline");
    sq.register(1).expect("r1");
    for node in 0..3 {
        sq.boot(node, 0).expect("warm boot");
    }
    sq.boot(0, 5).expect("cold boot");
    sq.node_rejoin(3).expect("rejoin");
    sq.advance_days(30);
    sq.register(2).expect("r2");
    let _ = sq.gc();
    sq.verify_boot(1, 0).expect("verify");
    sq.measure_arc_hit_rate(0, &[0, 1, 2], 64 << 20).expect("arc");
    sq
}

#[test]
fn snapshots_are_bit_identical_across_thread_counts() {
    let reference = run_workflows(1).metrics().snapshot();
    assert!(!reference.counters.is_empty());
    assert!(!reference.events.is_empty());
    let reference_json = reference.to_json();
    for threads in [2, 8] {
        let snap = run_workflows(threads).metrics().snapshot();
        assert_eq!(snap, reference, "threads={threads}");
        assert_eq!(snap.to_json(), reference_json, "threads={threads}");
    }
}

#[test]
fn one_snapshot_answers_the_acceptance_questions() {
    // One `snapshot()` call after the quickstart workflow must report the
    // register wire bytes, per-node boot hit/miss counts, DDT size, and
    // ARC hit rate.
    let sq = run_workflows(0);
    let snap = sq.metrics().snapshot();
    assert!(snap.counter("squirrel_register_wire_bytes_total").expect("wire") > 0);
    assert_eq!(snap.counter("squirrel_boot_total{node=\"0\",result=\"warm\"}"), Some(1));
    assert_eq!(snap.counter("squirrel_boot_total{node=\"0\",result=\"cold\"}"), Some(1));
    assert_eq!(snap.counter("squirrel_boot_total{node=\"2\",result=\"warm\"}"), Some(1));
    assert!(snap.gauge_u64("squirrel_scvol_ddt_entries").expect("ddt") > 0);
    let hit_rate = snap.gauge_f64("squirrel_arc_hit_rate").expect("hit rate");
    assert!((0.0..=1.0).contains(&hit_rate));
    assert!(hit_rate > 0.0, "cross-image boots must share records");
}

#[test]
fn real_system_snapshot_round_trips_through_both_formats() {
    let snap = run_workflows(0).metrics().snapshot();
    let json = MetricsSnapshot::from_json(&snap.to_json()).expect("json parse");
    assert_eq!(json, snap);
    // Prometheus text carries no journal; everything else survives.
    let prom = MetricsSnapshot::from_prometheus(&snap.to_prometheus()).expect("prom parse");
    assert_eq!(prom.counters, snap.counters);
    assert_eq!(prom.gauges, snap.gauges);
    assert_eq!(prom.histograms, snap.histograms);
}

#[test]
fn disabled_metrics_skip_the_whole_pipeline() {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: 4,
        scale: 2048,
        ..CorpusConfig::azure(2048, 99)
    }));
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(2)
            .block_size(16 * 1024)
            .metrics(false)
            .build(),
        corpus,
    );
    sq.register(0).expect("register");
    sq.boot(1, 0).expect("boot");
    let _ = sq.gc();
    assert_eq!(sq.metrics().snapshot(), MetricsSnapshot::default());
    assert!(sq.metrics().wall_times().is_empty());
}
