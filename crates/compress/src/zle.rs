//! ZLE (zero-length encoding): ZFS's cheapest codec, compressing only runs
//! of zero bytes. Useful as an ablation point between `off` and the LZ
//! codecs — VM images are full of zeroed regions even inside nonzero
//! blocks (slack space, bss segments).
//!
//! Format: a token byte; values 0..=127 mean "copy the next `token + 1`
//! literal bytes"; values 128..=255 mean "emit `token - 126` zero bytes"
//! (runs of 2..=129; single zeros travel as literals).

/// Compress `data` (may expand on zero-free input; the framing layer falls
/// back to raw storage in that case).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0usize;
    while i < data.len() {
        // Count a zero run.
        let mut z = 0usize;
        while i + z < data.len() && data[i + z] == 0 && z < 129 {
            z += 1;
        }
        if z >= 2 {
            out.push((z + 126) as u8);
            i += z;
            continue;
        }
        // Literal run: until the next zero *pair* or 128 bytes.
        let start = i;
        let mut len = 0usize;
        while i + len < data.len() && len < 128 {
            if data[i + len] == 0
                && i + len + 1 < data.len()
                && data[i + len + 1] == 0
            {
                break;
            }
            len += 1;
        }
        debug_assert!(len > 0);
        out.push((len - 1) as u8);
        out.extend_from_slice(&data[start..start + len]);
        i += len;
    }
    out
}

/// Decompress a ZLE stream of known decoded length.
pub fn decompress(src: &[u8], expected_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while i < src.len() && out.len() < expected_len {
        let token = src[i];
        i += 1;
        if token < 128 {
            let n = token as usize + 1;
            out.extend_from_slice(&src[i..i + n]);
            i += n;
        } else {
            let n = token as usize - 126;
            out.resize(out.len() + n, 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()), data, "len {}", data.len());
    }

    #[test]
    fn roundtrip_basic() {
        rt(b"");
        rt(b"a");
        rt(b"\0");
        rt(b"abc\0\0\0\0def");
        rt(&[0u8; 1000]);
    }

    #[test]
    fn roundtrip_alternating() {
        let data: Vec<u8> = (0..500).map(|i| if i % 3 == 0 { 0 } else { i as u8 }).collect();
        rt(&data);
    }

    #[test]
    fn long_zero_runs_shrink_massively() {
        let mut data = vec![1u8; 100];
        data.extend_from_slice(&[0u8; 4000]);
        data.extend_from_slice(&[2u8; 100]);
        let c = compress(&data);
        assert!(c.len() < 300, "{}", c.len());
        rt(&data);
    }

    #[test]
    fn single_zeros_are_literals() {
        // "a\0b" must not produce a zero-run token.
        rt(b"a\0b\0c");
    }

    #[test]
    fn max_run_boundaries() {
        rt(&[0u8; 129]);
        rt(&[0u8; 130]);
        rt(&[7u8; 128]);
        rt(&[7u8; 129]);
    }

    #[test]
    fn incompressible_expands_bounded() {
        let data: Vec<u8> = (1..=255u8).cycle().take(1024).collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 128 + 2, "{}", c.len());
    }
}
