//! Squirrel: scatter hoarding VM image contents on IaaS compute nodes.
//!
//! This crate is the paper's primary contribution: a *fully replicated*
//! storage architecture that keeps the deduplicated, compressed boot caches
//! of **all** registered VM images on **every** compute node of the data
//! center, so that any VM can boot anywhere without touching the network.
//!
//! Architecture (paper Figure 5): the storage nodes run a parallel file
//! system holding the full VMIs plus one *scVolume* — a dedup+gzip ZFS pool
//! of VMI caches. Every compute node runs a *ccVolume*, a replica of the
//! scVolume kept in sync via incremental snapshot streams.
//!
//! Workflows implemented here:
//!
//! * [`Squirrel::register`] — first-boot the image on a storage node behind
//!   a copy-on-read cache, move the captured boot working set into the
//!   scVolume, snapshot it, and multicast the incremental snapshot diff to
//!   all online compute nodes (Section 3.2, Figure 6).
//! * [`Squirrel::boot`] — chain a copy-on-write image over the node's
//!   ccVolume; warm caches boot with *zero* network traffic, missing caches
//!   fall back to CoW-over-parallel-FS (Section 3.3, Figure 7).
//! * [`Squirrel::deregister`] + [`Squirrel::gc`] — delete the cache and
//!   collect snapshots older than the `n`-day propagation window, always
//!   keeping the latest (Section 3.4).
//! * [`Squirrel::node_offline`] / [`Squirrel::node_rejoin`] — lagging nodes
//!   catch up with an incremental stream when their last snapshot is still
//!   within the window, or fall back to full re-replication (Section 3.5).
//! * [`Squirrel::boot_storm`] — M concurrent boots of one image, served
//!   zero-copy from the hoarded ccVolumes through a shard-locked ARC; the
//!   read phase fans out over worker threads with bit-identical results at
//!   any thread count.

//! * [`Squirrel::set_fault_plan`] + the `scrub_and_repair` family — a
//!   seeded, deterministic fault schedule ([`squirrel_faults`]) drives
//!   drops, duplicates, in-flight bit flips, crashed receives, rotten
//!   blocks and churn; recovery is transactional recv, bounded
//!   retry-with-backoff, scrub-and-repair from intact replicas, and
//!   degraded boots that fall back to shared storage.
//! * [`Squirrel::run_fleet`] — a fleet-scale soak on the [`sched`]
//!   discrete-event core: Zipf + diurnal demand over an elastic fleet,
//!   popularity decay feeding budget enforcement, and per-day
//!   latency/byte roll-ups in a [`FleetReport`].

pub mod chaos;
mod dist;
pub mod fleet;
pub mod sched;
mod system;
mod trace;

pub use chaos::{chaos_soak, ChaosConfig, ChaosReport};
pub use fleet::{run_fleet, run_fleet_with_metrics, FleetConfig, FleetDay, FleetReport};
pub use sched::{EventQueue, Scheduled};
pub use dist::{DistributionPolicy, TransferLeg, TransferPlan};
pub use squirrel_faults::{FaultConfig, FaultPlan, FaultReport};
pub use squirrel_cluster::{EcRepairReport, EcStats, TopologyConfig};
pub use system::{
    BootOutcome, BootStormReport, BootVerification, BudgetReport, EvictReport, GcReport,
    HoardBudget, NodeReplication, RegisterReport, RegistrationInfo, RehoardReport, RejoinOutcome,
    RepairReport, ReplicationReport, SharedStorage, Squirrel, SquirrelConfig,
    SquirrelConfigBuilder, SquirrelError, SyncRepairReport,
};
pub use trace::paper_scale_trace;
