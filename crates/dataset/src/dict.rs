//! Shared vocabulary giving atoms their compressible texture.
//!
//! Real VM image content (binaries, config, libraries) compresses roughly
//! 2–3x under gzip, and larger blocks compress better because repeats span
//! further than small blocks can see. We reproduce that by synthesizing atom
//! bytes as a mix of dictionary words (repeated across the whole corpus) and
//! incompressible filler. The word/filler balance below is calibrated by the
//! `calibration` tests in `analysis.rs` to land in the paper's ratio range.

use crate::rng::SplitMix64;

/// Number of words in the corpus-wide dictionary.
pub const DICT_WORDS: usize = 16384;
/// Word lengths span 4..=12 bytes.
const WORD_MIN: usize = 4;
const WORD_MAX: usize = 12;

/// Probability that the next emitted token is a dictionary word rather than
/// random filler. Calibrated for gzip-6 ≈ 2.5x on 128 KiB blocks.
pub const WORD_PROB: f64 = 0.85;

/// The corpus-wide word dictionary, generated once per corpus seed.
pub struct Dictionary {
    /// Flat word bytes plus offsets, to keep the whole thing in two
    /// allocations.
    bytes: Vec<u8>,
    offsets: Vec<u32>,
}

impl Dictionary {
    /// Build the dictionary for `corpus_seed`.
    pub fn new(corpus_seed: u64) -> Self {
        let mut rng = SplitMix64::from_parts(&[corpus_seed, 0xd1c7]);
        let mut bytes = Vec::with_capacity(DICT_WORDS * (WORD_MIN + WORD_MAX) / 2);
        let mut offsets = Vec::with_capacity(DICT_WORDS + 1);
        offsets.push(0u32);
        for _ in 0..DICT_WORDS {
            let len = rng.range(WORD_MIN as u64, WORD_MAX as u64 + 1) as usize;
            for _ in 0..len {
                // Printable-ish alphabet: mimics the byte histogram skew of
                // real file-system content (ASCII-heavy with binary sprinkle).
                let b = match rng.below(10) {
                    0..=6 => rng.range(b'a' as u64, b'z' as u64 + 1) as u8,
                    7 => rng.range(b'0' as u64, b'9' as u64 + 1) as u8,
                    8 => b'/',
                    _ => rng.next_u64() as u8,
                };
                bytes.push(b);
            }
            offsets.push(bytes.len() as u32);
        }
        Dictionary { bytes, offsets }
    }

    /// Word `idx` (0-based).
    #[inline]
    pub fn word(&self, idx: usize) -> &[u8] {
        let start = self.offsets[idx] as usize;
        let end = self.offsets[idx + 1] as usize;
        &self.bytes[start..end]
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pick a word index with a quadratically skewed distribution: a hot head
    /// (frequent words compress extremely well) plus a long tail.
    #[inline]
    pub fn skewed_index(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.unit_f64();
        ((u * u * self.len() as f64) as usize).min(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Dictionary::new(1);
        let b = Dictionary::new(1);
        let c = Dictionary::new(2);
        assert_eq!(a.word(17), b.word(17));
        assert_eq!(a.word(4095), b.word(4095));
        assert_ne!(
            (0..64).map(|i| a.word(i).to_vec()).collect::<Vec<_>>(),
            (0..64).map(|i| c.word(i).to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn word_lengths_in_range() {
        let d = Dictionary::new(3);
        for i in 0..d.len() {
            let l = d.word(i).len();
            assert!((WORD_MIN..=WORD_MAX).contains(&l), "word {i} len {l}");
        }
    }

    #[test]
    fn skewed_index_prefers_head() {
        let d = Dictionary::new(5);
        let mut rng = SplitMix64::new(8);
        let mut head = 0;
        for _ in 0..10_000 {
            if d.skewed_index(&mut rng) < DICT_WORDS / 10 {
                head += 1;
            }
        }
        // sqrt(0.1) ≈ 0.316 of samples land in the first decile.
        assert!((2500..4000).contains(&head), "head {head}");
    }

    #[test]
    fn dict_has_expected_size() {
        let d = Dictionary::new(9);
        assert_eq!(d.len(), DICT_WORDS);
        assert!(!d.is_empty());
    }
}
