//! Cross-crate integration: the complete Squirrel lifecycle over the real
//! substrate stack (dataset → qcow CoR → zfs scVol → send/recv → ccVols →
//! bootsim), exercising the paper's Sections 3.2–3.5 end to end.

use squirrel_repro::core::{RejoinOutcome, Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn system(images: u32, nodes: u32, seed: u64) -> Squirrel {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: images,
        scale: 4096,
        ..CorpusConfig::azure(4096, seed)
    }));
    Squirrel::new(
        SquirrelConfig::builder().compute_nodes(nodes).block_size(16 * 1024).build(),
        corpus,
    )
}

#[test]
fn register_boot_deregister_cycle() {
    let mut sq = system(10, 4, 1);
    for img in 0..10 {
        let r = sq.register(img).expect("register");
        assert_eq!(r.nodes_updated, 4);
    }
    assert!(sq.check_replication().is_consistent());

    // Everything boots warm everywhere with zero network traffic.
    sq.network_mut().reset_ledgers();
    for node in 0..4 {
        for img in 0..10 {
            let out = sq.boot(node, img).expect("boot");
            assert!(out.warm, "node {node} image {img}");
        }
    }
    assert_eq!(sq.network().compute_rx_total(), 0);

    // Deregistration propagates with the next registration... which there is
    // none here, so scVol shrinks but ccVols lag (by design).
    for img in 0..10 {
        sq.deregister(img).expect("deregister");
    }
    assert_eq!(sq.registered_images().len(), 0);
}

#[test]
fn cache_contents_survive_the_propagation_pipeline() {
    // The bytes a compute node serves from its ccVolume must equal the
    // image's actual content: CoR capture → compress → dedup → snapshot →
    // send → recv → decompress is a long pipeline to get right.
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: 4,
        scale: 4096,
        ..CorpusConfig::azure(4096, 33)
    }));
    let mut sq = Squirrel::new(
        SquirrelConfig::builder().compute_nodes(2).block_size(16 * 1024).build(),
        Arc::clone(&corpus),
    );
    sq.register(0).expect("register");

    // Verify warm boots possible on both nodes and replication holds.
    assert!(sq.boot(0, 0).expect("boot").warm);
    assert!(sq.boot(1, 0).expect("boot").warm);
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn interleaved_churn_preserves_replication() {
    let mut sq = system(12, 5, 9);
    sq.register(0).expect("r0");
    sq.node_offline(1).expect("off 1");
    sq.register(1).expect("r1");
    sq.node_offline(3).expect("off 3");
    sq.advance_days(2);
    sq.register(2).expect("r2");
    sq.deregister(0).expect("deregister 0");
    sq.register(3).expect("r3");

    assert!(matches!(
        sq.node_rejoin(1).expect("rejoin 1"),
        RejoinOutcome::Incremental { .. }
    ));
    assert!(matches!(
        sq.node_rejoin(3).expect("rejoin 3"),
        RejoinOutcome::Incremental { .. }
    ));
    assert!(sq.check_replication().is_consistent(), "all nodes mirror the scVolume");

    // The deregistered image's cache must be gone from ccVolumes too (the
    // deletion rode along with the r3 diff).
    assert_eq!(sq.ccvol_file_count(0), Some(3));
    assert_eq!(sq.ccvol_file_count(1), Some(3));
}

#[test]
fn gc_window_controls_rejoin_strategy() {
    let mut sq = system(8, 3, 4);
    sq.register(0).expect("r0");
    sq.node_offline(2).expect("offline");

    // Stay inside the window: incremental.
    sq.advance_days(3);
    sq.register(1).expect("r1");
    let _ = sq.gc();
    assert!(matches!(
        sq.node_rejoin(2).expect("rejoin"),
        RejoinOutcome::Incremental { .. }
    ));

    // Leave for longer than the window: full replication.
    sq.node_offline(2).expect("offline again");
    sq.advance_days(20);
    sq.register(2).expect("r2");
    sq.advance_days(20);
    sq.register(3).expect("r3");
    let _ = sq.gc();
    assert!(matches!(
        sq.node_rejoin(2).expect("rejoin"),
        RejoinOutcome::FullReplication { .. }
    ));
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn scvolume_stays_small_as_catalog_grows() {
    // The scatter-hoarding feasibility argument at integration level: disk
    // grows far slower than raw cache volume.
    let mut sq = system(16, 1, 5);
    let mut raw = 0u64;
    for img in 0..16 {
        let r = sq.register(img).expect("register");
        raw += r.cache_bytes;
    }
    let disk = sq.scvol_stats().total_disk_bytes();
    // At test scale each cache is only a couple of blocks, so dedup has
    // less to work with than at paper volume; still expect a clear win.
    assert!(
        (disk as f64) < 0.75 * raw as f64,
        "cVolume {disk} must be well under raw {raw}"
    );
}

#[test]
fn determinism_across_runs() {
    let mut a = system(6, 2, 77);
    let mut b = system(6, 2, 77);
    for img in 0..6 {
        let ra = a.register(img).expect("a");
        let rb = b.register(img).expect("b");
        assert_eq!(ra.cache_bytes, rb.cache_bytes);
        assert_eq!(ra.diff_wire_bytes, rb.diff_wire_bytes);
    }
    assert_eq!(
        a.scvol_stats().total_disk_bytes(),
        b.scvol_stats().total_disk_bytes()
    );
}
