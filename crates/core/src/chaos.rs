//! Seeded chaos soak: simulated days of register/boot/gc under a
//! deterministic [`FaultPlan`], with churn, partitions and bit rot injected
//! every step and the self-healing workflows run on a fixed cadence.
//!
//! The soak is the capstone check of the fault tentpole: for a pinned seed
//! the whole run — every fault decision, every retry, every repair, every
//! read checksum — is bit-identical at any worker-thread count, and the
//! system must converge to a consistent, scrub-clean state once the final
//! repair pass runs. Nothing in the driver consults wall clocks or ambient
//! randomness; the seed is the only source of nondeterminism.

use crate::dist::DistributionPolicy;
use crate::system::{HoardBudget, SharedStorage, Squirrel, SquirrelConfig};
use squirrel_cluster::{NodeId, TopologyConfig};
use squirrel_dataset::{Corpus, CorpusConfig};
use squirrel_faults::{ChurnEvent, FaultConfig, FaultPlan, FaultReport, PartitionEvent};
use squirrel_hash::ContentHash;
use std::sync::Arc;

/// Shape of one soak run. Everything is derived from `seed`; two configs
/// that compare equal produce bit-identical [`ChaosReport`]s.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Simulated days to run.
    pub days: u64,
    /// Corpus size; one image is registered per day until they run out.
    pub images: u32,
    /// Compute nodes.
    pub nodes: u32,
    /// Master seed for both the corpus and the fault plan.
    pub seed: u64,
    /// Worker threads (`0` = all cores). Results are bit-identical at any
    /// setting.
    pub threads: usize,
    /// VMs per periodic boot storm.
    pub storm_vms: u32,
    /// Fault probabilities and retry policy.
    pub faults: FaultConfig,
    /// Per-node hoard budget. When limited, an enforcement pass runs after
    /// every registration and once more after the final repair, so the soak
    /// converges *under* budget pressure, not just under faults.
    pub budget: HoardBudget,
    /// How registration diffs and cache restores travel — every policy must
    /// survive the same chaos and converge to the same replicated state.
    pub distribution: DistributionPolicy,
    /// Failure-domain layout. Flat (one rack) keeps the classic soak; a
    /// multi-rack layout arms correlated domain outages — whole racks and
    /// datacenters dropping off the network from the same seeded plan.
    pub topology: TopologyConfig,
    /// Storage nodes backing the shared tier.
    pub storage_nodes: u32,
    /// Physical layer of the shared tier (replicated gluster or
    /// erasure-coded k+m shards spread across the topology's racks).
    pub storage: SharedStorage,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            days: 18,
            images: 10,
            nodes: 6,
            seed: 42,
            threads: 0,
            storm_vms: 8,
            faults: FaultConfig::chaos(),
            budget: HoardBudget::unlimited(),
            distribution: DistributionPolicy::Unicast,
            topology: TopologyConfig::flat(),
            storage_nodes: 4,
            storage: SharedStorage::Replicated,
        }
    }
}

/// Outcome of one soak. Pure integers, booleans and hex strings — `Eq`
/// equality between two reports *is* the determinism witness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct ChaosReport {
    pub days: u64,
    /// Registrations attempted (one per day while images remain).
    pub registrations: u64,
    /// Individual boots attempted (not counting storms).
    pub boots: u64,
    pub warm_boots: u64,
    /// Boots (and storm VMs) served degraded: cache present but corrupt,
    /// fell back to shared storage.
    pub degraded_boots: u64,
    pub storms: u64,
    pub gc_runs: u64,
    /// Churn events applied (offline/rejoin/flap).
    pub churn_applied: u64,
    /// Rejoins that failed (partitioned link or rejected stream) and were
    /// left for a later repair pass.
    pub rejoin_failures: u64,
    /// Corrupt records restored from an intact replica, over all passes.
    pub blocks_repaired: u64,
    /// Corrupt-record observations no pass could heal at the time.
    pub blocks_unrepaired: u64,
    /// Wire bytes moved by repair re-fetches and catch-up streams.
    pub repair_wire_bytes: u64,
    /// Lagging nodes pulled back in sync, over all passes.
    pub sync_repaired_nodes: u64,
    /// Whole-cache evictions the budget enforcement passes performed
    /// (always zero with an unlimited budget).
    pub budget_evictions: u64,
    /// Whether every node ended the run within its hoard budget
    /// (vacuously true with an unlimited budget).
    pub within_budget: bool,
    /// Rack outages applied (a rack's boundary links cut as one event).
    pub rack_outages: u64,
    /// Datacenter outages applied.
    pub dc_outages: u64,
    /// Cold reads the erasure-coded tier served degraded (reconstructed
    /// through parity; byte-identity is checked on every such read).
    pub ec_degraded_reads: u64,
    /// Data shards rebuilt from parity during degraded reads.
    pub ec_shards_reconstructed: u64,
    /// Shards repair passes re-materialized or relocated across domains.
    pub ec_shards_rematerialized: u64,
    /// Bytes the EC repair passes moved.
    pub ec_repair_bytes: u64,
    /// The subset of `ec_repair_bytes` that crossed a rack boundary.
    pub ec_cross_domain_repair_bytes: u64,
    /// Whether the replication invariant already held before the final
    /// repair pass (it usually doesn't — that's the point of the soak).
    pub consistent_before_final_repair: bool,
    /// The capstone assertion: after heal-all + final repair, every online
    /// node mirrors the scVolume.
    pub converged: bool,
    /// Every pool finished scrub-clean.
    pub scrub_clean: bool,
    /// Hash over every workflow outcome in order (registration tags, boot
    /// results, storm read checksums, error strings) — the run's
    /// determinism witness.
    pub read_checksum: String,
    /// Everything the plan injected.
    pub fault: FaultReport,
}

/// Run one chaos soak. See the module docs for the determinism contract.
pub fn chaos_soak(cfg: &ChaosConfig) -> ChaosReport {
    let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(cfg.images, cfg.seed)));
    let mut sq = Squirrel::new(
        SquirrelConfig {
            compute_nodes: cfg.nodes,
            storage_nodes: cfg.storage_nodes,
            block_size: 16 * 1024,
            threads: cfg.threads,
            hoard_budget: cfg.budget,
            distribution: cfg.distribution,
            topology: cfg.topology,
            shared_storage: cfg.storage,
            ..Default::default()
        },
        corpus,
    );
    sq.set_fault_plan(FaultPlan::new(cfg.seed, cfg.faults));
    let storage = cfg.nodes; // first storage node id
    let mut r = ChaosReport { days: cfg.days, ..ChaosReport::default() };
    let mut feed = String::new();
    let mut next_image: u32 = 0;

    for day in 0..cfg.days {
        // Draw the day's environment events from the plan, serially, then
        // re-arm it so register's delivery path keeps drawing from the
        // same stream.
        let mut plan = sq.clear_fault_plan().expect("plan armed");
        let churn = plan.churn_event(cfg.nodes, |n| sq.node_is_online(n));
        let cut = plan.partition_event(storage, cfg.nodes, |n| {
            !sq.network().is_reachable(storage, n)
        });
        // Correlated domain outages only exist on multi-rack layouts; a
        // flat topology draws nothing, keeping classic soaks bit-identical.
        let domain = if cfg.topology.total_racks() > 1 {
            plan.domain_event(
                cfg.topology.total_racks(),
                cfg.topology.total_datacenters(),
                |rk| sq.network().rack_is_down(rk),
                |dc| sq.network().datacenter_is_down(dc),
            )
        } else {
            None
        };
        let rot = plan.block_corruption(cfg.nodes);
        sq.set_fault_plan(plan);

        match churn {
            Some(ChurnEvent::Offline(n)) => {
                let _ = sq.node_offline(n);
                r.churn_applied += 1;
            }
            Some(ChurnEvent::Rejoin(n)) | Some(ChurnEvent::Flap(n)) => {
                if matches!(churn, Some(ChurnEvent::Flap(_))) {
                    let _ = sq.node_offline(n);
                }
                r.churn_applied += 1;
                if sq.node_rejoin(n).is_err() {
                    r.rejoin_failures += 1;
                }
            }
            None => {}
        }
        match cut {
            Some(PartitionEvent::Cut(a, b)) => sq.network_mut().partition(a, b),
            Some(PartitionEvent::Heal(a, b)) => sq.network_mut().heal(a, b),
            _ => {}
        }
        match domain {
            Some(PartitionEvent::RackDown(rk)) => {
                sq.rack_down(rk);
                r.rack_outages += 1;
                feed.push_str(&format!("rack-down:{rk}\n"));
            }
            Some(PartitionEvent::RackUp(rk)) => {
                sq.rack_up(rk);
                feed.push_str(&format!("rack-up:{rk}\n"));
            }
            Some(PartitionEvent::DatacenterDown(dc)) => {
                sq.datacenter_down(dc);
                r.dc_outages += 1;
                feed.push_str(&format!("dc-down:{dc}\n"));
            }
            Some(PartitionEvent::DatacenterUp(dc)) => {
                sq.datacenter_up(dc);
                feed.push_str(&format!("dc-up:{dc}\n"));
            }
            _ => {}
        }
        if let Some((victim, nth)) = rot {
            let key = match victim {
                Some(n) => sq.corrupt_cc_block(n, nth),
                None => sq.corrupt_sc_block(nth),
            };
            // Rot aimed at the shared tier also rots one erasure shard when
            // the tier is erasure-coded — same draw, so replicated runs are
            // untouched.
            if victim.is_none() {
                let shard = sq.corrupt_ec_shard(nth);
                if shard.is_some() {
                    feed.push_str(&format!("ec-rot:{shard:?}\n"));
                }
            }
            feed.push_str(&format!("rot:{victim:?}:{}\n", key.is_some()));
        }

        // One registration per day while images remain.
        if next_image < cfg.images {
            r.registrations += 1;
            match sq.register(next_image) {
                Ok(rep) => feed.push_str(&format!(
                    "reg:{}:{}:{}\n",
                    rep.snapshot_tag, rep.nodes_updated, rep.diff_wire_bytes
                )),
                Err(e) => feed.push_str(&format!("reg-err:{e}\n")),
            }
            next_image += 1;
        }

        // Budget pressure: every registration can push nodes over; evict
        // back under budget before the day's boots see the caches.
        if !cfg.budget.is_unlimited() {
            let b = sq.enforce_hoard_budgets();
            r.budget_evictions += b.evictions.len() as u64;
            feed.push_str(&format!(
                "budget:{}:{}:{}:{}\n",
                b.evictions.len(),
                b.nodes_over_budget,
                b.disk_bytes_freed,
                b.ddt_mem_bytes_freed
            ));
        }

        // A couple of boots on a deterministic node/image rotation.
        for k in 0..2u64 {
            let image = ((day + k) % u64::from(next_image.max(1))) as u32;
            let node = ((day * 3 + k * 5) % u64::from(cfg.nodes)) as NodeId;
            match sq.boot(node, image) {
                Ok(out) => {
                    r.boots += 1;
                    if out.warm {
                        r.warm_boots += 1;
                    }
                    if out.degraded {
                        r.degraded_boots += 1;
                    }
                    feed.push_str(&format!(
                        "boot:{node}:{image}:{}:{}\n",
                        out.warm, out.degraded
                    ));
                }
                Err(e) => feed.push_str(&format!("boot-err:{node}:{image}:{e}\n")),
            }
        }

        // Periodic boot storm over whatever nodes are up.
        if day % 5 == 4 {
            let image = (day % u64::from(next_image.max(1))) as u32;
            match sq.boot_storm(image, cfg.storm_vms) {
                Ok(storm) => {
                    r.storms += 1;
                    r.degraded_boots += u64::from(storm.degraded_vms);
                    feed.push_str(&format!("storm:{image}:{}\n", storm.read_checksum));
                }
                Err(e) => feed.push_str(&format!("storm-err:{image}:{e}\n")),
            }
        }

        // Periodic self-healing: scVolume first (it is the authoritative
        // repair donor), then the ccVolumes, then replication catch-up.
        if day % 3 == 2 {
            tally_repair(&mut r, &mut sq);
        }

        let _ = sq.gc();
        r.gc_runs += 1;
        sq.advance_days(1);
    }

    // Convergence: heal every link, bring every node back, run the full
    // repair stack, and check the paper's invariant.
    r.consistent_before_final_repair = sq.check_replication().is_consistent();
    sq.network_mut().heal_all();
    for n in 0..cfg.nodes {
        if !sq.node_is_online(n) && sq.node_rejoin(n).is_err() {
            r.rejoin_failures += 1;
        }
    }
    tally_repair(&mut r, &mut sq);
    // The final repair full-replicates lagging nodes, which can push them
    // back over budget: one last enforcement pass settles the steady state.
    r.within_budget = if cfg.budget.is_unlimited() {
        true
    } else {
        let b = sq.enforce_hoard_budgets();
        r.budget_evictions += b.evictions.len() as u64;
        feed.push_str(&format!(
            "budget-final:{}:{}\n",
            b.evictions.len(),
            b.nodes_over_budget
        ));
        b.is_within_budget()
    };
    r.converged = sq.check_replication().is_consistent();
    r.scrub_clean = sq.scrub_scvol().is_clean()
        && (0..cfg.nodes).all(|n| sq.scrub_node(n).is_some_and(|s| s.is_clean()))
        && sq.shared_storage_clean();
    if let Some(ec) = sq.ec_stats() {
        r.ec_degraded_reads = ec.degraded_reads;
        r.ec_shards_reconstructed = ec.read_reconstructions;
    }
    r.fault = sq.clear_fault_plan().expect("plan armed").report();
    r.read_checksum = ContentHash::of(feed.as_bytes()).to_hex();
    r
}

/// One full repair pass: the erasure-coded shared tier (when configured),
/// the scVolume, every online ccVolume, then replication.
fn tally_repair(r: &mut ChaosReport, sq: &mut Squirrel) {
    if let Some(ec) = sq.repair_shared_storage() {
        r.ec_shards_rematerialized += ec.shards_rematerialized + ec.shards_relocated;
        r.ec_repair_bytes += ec.repair_bytes;
        r.ec_cross_domain_repair_bytes += ec.cross_domain_repair_bytes;
    }
    let sc = sq.scrub_and_repair_scvol();
    r.blocks_repaired += sc.repaired;
    r.blocks_unrepaired += sc.unrepaired;
    r.repair_wire_bytes += sc.refetch_bytes;
    for n in 0..sq.config().compute_nodes {
        if !sq.node_is_online(n) {
            continue;
        }
        if let Ok(rep) = sq.scrub_and_repair(n) {
            r.blocks_repaired += rep.repaired;
            r.blocks_unrepaired += rep.unrepaired;
            r.repair_wire_bytes += rep.refetch_bytes;
        }
    }
    let sync = sq.repair_replication();
    r.sync_repaired_nodes += u64::from(sync.repaired);
    r.repair_wire_bytes += sync.wire_bytes;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosConfig {
        ChaosConfig { days: 9, images: 5, nodes: 4, seed: 11, threads: 1, ..Default::default() }
    }

    #[test]
    fn soak_converges_and_ends_scrub_clean() {
        let r = chaos_soak(&tiny());
        assert!(r.converged, "{r:?}");
        assert!(r.scrub_clean, "{r:?}");
        assert_eq!(r.registrations, 5);
        assert_eq!(r.gc_runs, 9);
        assert!(r.fault.total_injected() > 0, "chaos must inject: {:?}", r.fault);
    }

    #[test]
    fn soak_is_bit_identical_for_one_seed() {
        let a = chaos_soak(&tiny());
        let b = chaos_soak(&tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn soak_is_thread_count_invariant() {
        let at = |threads| chaos_soak(&ChaosConfig { threads, ..tiny() });
        let reference = at(1);
        for threads in [2, 8] {
            assert_eq!(at(threads), reference, "threads={threads}");
        }
    }

    /// A budget that can hold roughly half the catalog's caches, derived
    /// from a deterministic unlimited probe over the same corpus.
    fn starved_budget(cfg: &ChaosConfig) -> HoardBudget {
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(cfg.images, cfg.seed)));
        let mut probe = Squirrel::new(
            SquirrelConfig {
                compute_nodes: 1,
                block_size: 16 * 1024,
                ..Default::default()
            },
            corpus,
        );
        for img in 0..cfg.images {
            probe.register(img).expect("probe register");
        }
        let full = probe.ccvol_stats(0).expect("node").total_disk_bytes();
        HoardBudget { disk_bytes: full / 2, ddt_mem_bytes: 0 }
    }

    #[test]
    fn budget_soak_converges_under_pressure() {
        let cfg = ChaosConfig { budget: starved_budget(&tiny()), ..tiny() };
        let r = chaos_soak(&cfg);
        assert!(r.budget_evictions > 0, "pressure must force evictions: {r:?}");
        assert!(r.within_budget, "{r:?}");
        assert!(r.converged, "{r:?}");
        assert!(r.scrub_clean, "{r:?}");
        assert_eq!(r.registrations, 5);
        // The budgeted run is a different trajectory than the unlimited one.
        let unlimited = chaos_soak(&tiny());
        assert_eq!(unlimited.budget_evictions, 0);
        assert!(unlimited.within_budget);
        assert_ne!(r.read_checksum, unlimited.read_checksum);
    }

    #[test]
    fn budget_soak_is_thread_count_invariant() {
        let budget = starved_budget(&tiny());
        let at = |threads| chaos_soak(&ChaosConfig { threads, budget, ..tiny() });
        let reference = at(1);
        assert!(reference.budget_evictions > 0);
        for threads in [2, 8] {
            assert_eq!(at(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn peer_assisted_soak_converges_and_is_thread_invariant() {
        let cfg = |threads| ChaosConfig {
            threads,
            distribution: DistributionPolicy::PeerAssisted,
            ..tiny()
        };
        let reference = chaos_soak(&cfg(1));
        assert!(reference.converged, "{reference:?}");
        assert!(reference.scrub_clean, "{reference:?}");
        assert_eq!(reference.registrations, 5);
        for threads in [2, 8] {
            assert_eq!(chaos_soak(&cfg(threads)), reference, "threads={threads}");
        }
    }

    #[test]
    fn every_distribution_policy_survives_the_soak() {
        for policy in DistributionPolicy::standard_set() {
            let r = chaos_soak(&ChaosConfig { distribution: policy, ..tiny() });
            assert!(r.converged, "{}: {r:?}", policy.name());
            assert!(r.scrub_clean, "{}: {r:?}", policy.name());
        }
    }

    /// Four racks over two datacenters; 4 compute nodes (one per rack) and
    /// 8 storage nodes (two per rack); 4+2 erasure coding, so a whole rack
    /// holds at most m = 2 shards of any stripe and its loss stays
    /// recoverable. Domain outages armed.
    fn ec_tiny() -> ChaosConfig {
        ChaosConfig {
            days: 12,
            topology: TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 },
            storage_nodes: 8,
            storage: SharedStorage::ErasureCoded { k: 4, m: 2 },
            faults: squirrel_faults::FaultConfig::chaos_with_domains(),
            ..tiny()
        }
    }

    #[test]
    fn ec_soak_survives_rack_loss_and_converges() {
        let r = chaos_soak(&ec_tiny());
        assert!(r.rack_outages > 0, "domain chaos must take racks down: {r:?}");
        assert!(r.fault.rack_downs > 0, "{:?}", r.fault);
        assert!(r.converged, "{r:?}");
        assert!(r.scrub_clean, "every shard healed: {r:?}");
        assert!(
            r.ec_shards_rematerialized > 0,
            "repair must re-materialize shards: {r:?}"
        );
        assert!(r.ec_repair_bytes > 0, "{r:?}");
    }

    #[test]
    fn ec_soak_is_bit_identical_and_thread_invariant() {
        let at = |threads| chaos_soak(&ChaosConfig { threads, ..ec_tiny() });
        let reference = at(1);
        assert_eq!(at(1), reference, "same seed, same report");
        for threads in [2, 8] {
            assert_eq!(at(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn flat_soak_is_unchanged_by_the_domain_machinery() {
        let r = chaos_soak(&tiny());
        assert_eq!(r.rack_outages, 0);
        assert_eq!(r.fault.rack_downs + r.fault.dc_downs, 0);
        assert_eq!(r.ec_degraded_reads + r.ec_repair_bytes, 0);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = chaos_soak(&tiny());
        let b = chaos_soak(&ChaosConfig { seed: 12, ..tiny() });
        assert_ne!(a.fault, b.fault);
    }
}
