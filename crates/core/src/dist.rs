//! Distribution policies: how hoard bytes travel from the scVolume — or a
//! warm peer — to the compute nodes.
//!
//! Every delivery site ([`register`](crate::Squirrel::register),
//! [`rehoard_cache`](crate::Squirrel::rehoard_cache),
//! [`node_rejoin`](crate::Squirrel::node_rejoin)) resolves the configured
//! [`DistributionPolicy`] into a [`TransferPlan`] — a deterministic schedule
//! of per-link legs and/or one group transfer — and then charges the network
//! ledger, the fault machinery and the `squirrel_dist_*` counters through
//! the same executor regardless of shape. Planning runs in serial
//! orchestration code only, so one configuration yields one plan at any
//! thread count.

use squirrel_cluster::NodeId;

/// How registration diffs and cache restores are carried to compute nodes.
///
/// Configured with
/// [`SquirrelConfigBuilder::distribution`](crate::SquirrelConfigBuilder::distribution);
/// the default is [`Unicast`](DistributionPolicy::Unicast), the paper's
/// point-to-point baseline whose storage-tier uplink cost grows linearly
/// with fleet size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistributionPolicy {
    /// Point-to-point from the storage tier to every receiver, one after
    /// another: N receivers cost the storage uplink N payloads.
    #[default]
    Unicast,
    /// k-ary tree multicast: the storage tier transmits `fanout` copies,
    /// each receiver re-serves up to `fanout` downstream receivers. The
    /// storage uplink cost is `fanout` payloads regardless of fleet size.
    Multicast {
        /// Children per tree node; clamped to at least 1.
        fanout: u32,
    },
    /// LANTorrent-style chain through every receiver: the storage tier
    /// transmits exactly one payload and each receiver forwards while
    /// receiving.
    Pipeline,
    /// The nearest warm peer already holding the bytes serves them;
    /// delivered receivers immediately become donors (capacity doubles per
    /// round). The storage tier only seeds the first copy — and is the
    /// fallback whenever no peer qualifies.
    PeerAssisted,
}

impl DistributionPolicy {
    /// Stable identifier for metric labels and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            DistributionPolicy::Unicast => "unicast",
            DistributionPolicy::Multicast { .. } => "multicast",
            DistributionPolicy::Pipeline => "pipeline",
            DistributionPolicy::PeerAssisted => "peer-assisted",
        }
    }

    /// The standard comparison set swept by benches and docs: unicast,
    /// 8-ary tree multicast, pipeline, peer-assisted.
    pub fn standard_set() -> [DistributionPolicy; 4] {
        [
            DistributionPolicy::Unicast,
            DistributionPolicy::Multicast { fanout: 8 },
            DistributionPolicy::Pipeline,
            DistributionPolicy::PeerAssisted,
        ]
    }
}

/// One resolved point-to-point leg of a [`TransferPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferLeg {
    /// Serving node: the storage tier or a warm compute peer.
    pub src: NodeId,
    /// Receiving compute node.
    pub dst: NodeId,
    /// Parallel wave this leg rides in: legs sharing a round overlap in
    /// time, rounds serialize (a round's receivers can donate only in
    /// later rounds).
    pub round: u32,
    /// Whether `src` is a compute peer rather than the storage tier.
    pub from_peer: bool,
}

/// A deterministic delivery schedule for one payload, resolved from a
/// [`DistributionPolicy`] against the current cluster state (liveness,
/// partitions, warm copies).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct TransferPlan {
    /// The policy the plan was resolved from.
    pub policy: DistributionPolicy,
    /// The storage-tier source node.
    pub root: NodeId,
    /// Payload wire bytes each receiver must obtain.
    pub payload_bytes: u64,
    /// Point-to-point legs (unicast and peer-assisted shapes), in charge
    /// order. Empty when the payload rides a group shape instead.
    pub legs: Vec<TransferLeg>,
    /// Receivers carried by one group transfer (tree multicast or
    /// pipeline). Empty for leg-based shapes.
    pub group: Vec<NodeId>,
    /// Receivers with no usable source (cut off from the storage tier and
    /// from every qualified peer); they stay lagging and are caught up by
    /// the repair workflow.
    pub unreachable: Vec<NodeId>,
}

impl TransferPlan {
    pub(crate) fn new(policy: DistributionPolicy, root: NodeId, payload_bytes: u64) -> Self {
        TransferPlan {
            policy,
            root,
            payload_bytes,
            legs: Vec::new(),
            group: Vec::new(),
            unreachable: Vec::new(),
        }
    }

    /// Receivers the plan will attempt to serve (legs + group).
    pub fn planned_receivers(&self) -> usize {
        self.legs.len() + self.group.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(DistributionPolicy::Unicast.name(), "unicast");
        assert_eq!(DistributionPolicy::Multicast { fanout: 4 }.name(), "multicast");
        assert_eq!(DistributionPolicy::Pipeline.name(), "pipeline");
        assert_eq!(DistributionPolicy::PeerAssisted.name(), "peer-assisted");
        assert_eq!(DistributionPolicy::default(), DistributionPolicy::Unicast);
        assert_eq!(DistributionPolicy::standard_set().len(), 4);
    }

    #[test]
    fn plan_starts_empty() {
        let plan = TransferPlan::new(DistributionPolicy::Unicast, 64, 1000);
        assert_eq!(plan.planned_receivers(), 0);
        assert!(plan.unreachable.is_empty());
        assert_eq!(plan.payload_bytes, 1000);
        assert_eq!(plan.root, 64);
    }
}
