//! Property tests for the zero-copy shared-payload read path: whatever the
//! block size, codec, cache capacity, or thread count, readers must see the
//! exact bytes a naive decompress-every-time oracle produces.

use proptest::prelude::*;
use squirrel_repro::compress::Codec;
use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use squirrel_repro::zfs::{ArcCache, PoolConfig, SharedArcCache, ZPool};
use std::sync::Arc;

const CODECS: [Codec; 5] = [Codec::Off, Codec::Gzip(6), Codec::Lzjb, Codec::Lz4, Codec::Zle];

fn block(bs: usize, seed: u8, compressible: bool) -> Vec<u8> {
    if compressible {
        vec![seed; bs]
    } else {
        (0..bs)
            .map(|i| seed.wrapping_mul(31).wrapping_add((i % 251) as u8))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both cached read paths — the serial `ArcCache` and the shard-locked
    /// `SharedArcCache` — return bytes identical to re-decompressing the
    /// pool record on every read, across random block sizes, codecs, and
    /// cache capacities (including a zero-byte cache that evicts
    /// constantly, and reads of holes and past-EOF blocks).
    #[test]
    fn zero_copy_read_path_matches_decompress_oracle(
        bs_pow in 9u32..13,
        codec_idx in 0usize..CODECS.len(),
        capacity in prop_oneof![Just(0u64), 512u64..(1 << 16)],
        shards in 1usize..5,
        writes in proptest::collection::vec((0u64..24, any::<u8>(), any::<bool>()), 1..24),
        reads in proptest::collection::vec(0u64..26, 1..64),
    ) {
        let bs = 1usize << bs_pow;
        let mut pool = ZPool::new(PoolConfig::new(bs, CODECS[codec_idx]));
        pool.create_file("f");
        for &(idx, seed, compressible) in &writes {
            pool.write_block("f", idx, &block(bs, seed, compressible));
        }
        let mut arc = ArcCache::new(capacity);
        let shared = SharedArcCache::new(capacity, shards);
        for &idx in &reads {
            // The oracle decompresses from the pool every time.
            let oracle = pool.read_block("f", idx);
            let via_arc = arc.read_through(&pool, "f", idx).map(|d| d.to_vec());
            let via_shared = shared.read_through(&pool, "f", idx).map(|d| d.to_vec());
            prop_assert_eq!(&via_arc, &oracle, "ArcCache diverged at block {}", idx);
            prop_assert_eq!(&via_shared, &oracle, "SharedArcCache diverged at block {}", idx);
        }
        // A file the pool does not know stays unknown through every path.
        prop_assert_eq!(arc.read_through(&pool, "missing", 0), None);
        prop_assert_eq!(shared.read_through(&pool, "missing", 0), None);
    }
}

/// System-level determinism: a boot storm over a mixed warm/cold node set
/// produces bit-identical read checksums, ARC statistics, simulated boot
/// seconds, and metric snapshots at every worker-thread count.
#[test]
fn boot_storm_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let corpus = Arc::new(Corpus::generate(CorpusConfig {
            n_images: 6,
            scale: 8192,
            ..CorpusConfig::azure(8192, 42)
        }));
        let mut sq = Squirrel::new(
            SquirrelConfig::builder()
                .compute_nodes(3)
                .block_size(16 * 1024)
                .threads(threads)
                .build(),
            corpus,
        );
        sq.register(0).expect("register 0");
        sq.register(1).expect("register 1");
        // Evict one node's hoard so the storm mixes warm and cold serving.
        let _ = sq.evict_cache(2, 0).expect("evict");
        let storm = sq.boot_storm(0, 9).expect("storm");
        assert!(storm.warm_vms > 0 && storm.cold_vms > 0, "mixed storm expected");
        let bits: Vec<u64> = storm.boot_seconds.iter().map(|s| s.to_bits()).collect();
        let snap = sq.metrics().snapshot();
        (
            storm.read_checksum,
            storm.bytes_served,
            storm.arc,
            bits,
            snap.to_json(),
        )
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), reference, "threads={threads}");
    }
}
