//! LZSS match stage of the gzip-like codec.
//!
//! Produces a byte-oriented token stream (later entropy-coded by the Huffman
//! stage): groups of eight items are prefixed by a flag byte whose bits say
//! literal (0) or match (1). A match is `len_code` (one byte, encoding
//! lengths 3..=258) followed by a little-endian u16 distance (1..=32768,
//! stored minus one). The 32 KiB window and 258-byte max match mirror
//! DEFLATE's parameters, which is what makes the block-size-vs-ratio trend in
//! the paper's Figure 2 come out: blocks smaller than the window cannot
//! exploit long-range redundancy.

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Match-finder effort (max hash-chain probes) for a zlib-style level.
pub fn effort_for_level(level: u8) -> usize {
    match level {
        0..=1 => 4,
        2..=3 => 16,
        4..=5 => 48,
        6 => 128,
        7 => 256,
        8 => 512,
        _ => 1024,
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// LZSS-compress `data` with up to `effort` chain probes per position.
pub fn compress(data: &[u8], effort: usize) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }

    // Hash chains: head[h] = most recent position with hash h; prev[i % WINDOW]
    // links to the previous position with the same hash.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut flag_pos = 0usize;
    // Start "full" so the first item opens a fresh flag byte before any
    // payload is emitted; rollover must happen before payload bytes, or the
    // next group's flag byte would land in the middle of this item's payload.
    let mut flag_bit = 8u8;

    macro_rules! bump_flag {
        ($is_match:expr) => {
            if flag_bit == 8 {
                flag_bit = 0;
                flag_pos = out.len();
                out.push(0);
            }
            if $is_match {
                out[flag_pos] |= 1 << flag_bit;
            }
            flag_bit += 1;
        };
    }

    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut probes = effort;
            let limit = i.saturating_sub(WINDOW);
            let max_len = (n - i).min(MAX_MATCH);
            while cand != usize::MAX && cand >= limit && probes > 0 {
                // Quick reject: compare the byte one past the current best.
                if best_len == 0 || data[cand + best_len] == data[i + best_len] {
                    let mut l = 0usize;
                    while l < max_len && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= max_len {
                            break;
                        }
                    }
                }
                let next = prev[cand % WINDOW];
                if next >= cand {
                    break; // chain left the window (stale entry)
                }
                cand = next;
                probes -= 1;
            }
        }

        if best_len >= MIN_MATCH {
            bump_flag!(true);
            out.push((best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&((best_dist - 1) as u16).to_le_bytes());
            // Insert every covered position into the chains so later matches
            // can reference the middle of this match.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            for j in i..end {
                let h = hash3(data, j);
                prev[j % WINDOW] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            bump_flag!(false);
            out.push(data[i]);
            if i + MIN_MATCH <= n {
                let h = hash3(data, i);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Reverse of [`compress`]. `expected_len` bounds the output and terminates
/// decoding (the token stream carries no explicit end marker).
pub fn decompress(tokens: &[u8], expected_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    'outer: while pos < tokens.len() && out.len() < expected_len {
        let flags = tokens[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expected_len || pos >= tokens.len() {
                break 'outer;
            }
            if flags & (1 << bit) != 0 {
                let len = tokens[pos] as usize + MIN_MATCH;
                let dist =
                    u16::from_le_bytes([tokens[pos + 1], tokens[pos + 2]]) as usize + 1;
                pos += 3;
                let start = out.len() - dist;
                // Byte-by-byte copy: matches may self-overlap (RLE case).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(tokens[pos]);
                pos += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8], effort: usize) {
        let toks = compress(data, effort);
        assert_eq!(decompress(&toks, data.len()), data);
    }

    #[test]
    fn roundtrip_empty() {
        rt(b"", 128);
    }

    #[test]
    fn roundtrip_short_strings() {
        rt(b"a", 128);
        rt(b"aa", 128);
        rt(b"aaa", 128);
        rt(b"abcabcabcabc", 128);
    }

    #[test]
    fn roundtrip_overlapping_match_rle() {
        // dist=1 self-overlapping copy is the classic tricky case.
        rt(&vec![b'x'; 1000], 128);
    }

    #[test]
    fn roundtrip_exact_window_boundary() {
        let mut data = vec![0u8; WINDOW + 100];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        rt(&data, 64);
    }

    #[test]
    fn long_repeats_shrink_a_lot() {
        let data: Vec<u8> = b"0123456789abcdef".iter().copied().cycle().take(4096).collect();
        let toks = compress(&data, 128);
        assert!(toks.len() < data.len() / 4, "{} vs {}", toks.len(), data.len());
    }

    #[test]
    fn higher_effort_never_worse_on_repetitive_input() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("entry-{:04} ", i % 97).as_bytes());
        }
        let low = compress(&data, 4).len();
        let high = compress(&data, 1024).len();
        assert!(high <= low, "high {high} low {low}");
        rt(&data, 4);
        rt(&data, 1024);
    }

    #[test]
    fn max_match_length_encodable() {
        // A run longer than MAX_MATCH must be split into several matches.
        let data = vec![7u8; MAX_MATCH * 3 + 5];
        rt(&data, 128);
    }
}
