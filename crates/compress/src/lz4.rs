//! An LZ4-block-style codec: byte-oriented sequences of
//! `(token, literals, offset, match)` with run-length-extended counts.
//!
//! Layout per sequence: a token byte whose high nibble is the literal count
//! and low nibble the match length minus 4 (value 15 in either nibble means
//! "extended": 255-valued continuation bytes follow). After the literals
//! comes a little-endian u16 backward offset. The final sequence carries
//! literals only. Greedy single-probe matching from a 64 Ki-entry hash table
//! of 4-byte prefixes keeps it fast with moderate ratio.

const MIN_MATCH: usize = 4;
const HASH_LOG: u32 = 16;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes(data[i..i + 4].try_into().expect("4 bytes"));
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_LOG)) as usize
}

fn write_count(out: &mut Vec<u8>, mut count: usize) {
    while count >= 255 {
        out.push(255);
        count -= 255;
    }
    out.push(count as u8);
}

/// Compress `data` into an LZ4-style block.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_LOG];

    let mut anchor = 0usize; // start of pending literals
    let mut i = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(data, i);
        let cand = table[h];
        table[h] = i;
        let found = cand != usize::MAX
            && i - cand <= u16::MAX as usize
            && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH];
        if !found {
            i += 1;
            continue;
        }
        // Extend the match forward.
        let mut len = MIN_MATCH;
        let max_len = n - i;
        while len < max_len && data[cand + len] == data[i + len] {
            len += 1;
        }

        // Emit sequence: token, literal run, offset, extended match count.
        let lit_len = i - anchor;
        let lit_nib = lit_len.min(15) as u8;
        let match_nib = (len - MIN_MATCH).min(15) as u8;
        out.push((lit_nib << 4) | match_nib);
        if lit_len >= 15 {
            write_count(&mut out, lit_len - 15);
        }
        out.extend_from_slice(&data[anchor..i]);
        out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            write_count(&mut out, len - MIN_MATCH - 15);
        }

        // Seed the table inside the match so nearby repeats are found.
        let end = i + len;
        let mut j = i + 1;
        while j + MIN_MATCH <= end.min(n - MIN_MATCH + 1) {
            table[hash4(data, j)] = j;
            j += 2;
        }
        i = end;
        anchor = end;
    }

    // Trailing literals-only sequence.
    let lit_len = n - anchor;
    let lit_nib = lit_len.min(15) as u8;
    out.push(lit_nib << 4);
    if lit_len >= 15 {
        write_count(&mut out, lit_len - 15);
    }
    out.extend_from_slice(&data[anchor..]);
    out
}

fn read_count(src: &[u8], pos: &mut usize, nibble: usize) -> usize {
    let mut count = nibble;
    if nibble == 15 {
        loop {
            let b = src[*pos];
            *pos += 1;
            count += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    count
}

/// Decompress an LZ4-style block of known decoded length.
pub fn decompress(src: &[u8], expected_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < src.len() {
        let token = src[pos];
        pos += 1;
        let lit_len = read_count(src, &mut pos, (token >> 4) as usize);
        out.extend_from_slice(&src[pos..pos + lit_len]);
        pos += lit_len;
        if out.len() >= expected_len || pos >= src.len() {
            break; // final literals-only sequence
        }
        let offset = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        let match_len = MIN_MATCH + read_count(src, &mut pos, (token & 0x0f) as usize);
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()), data, "len {}", data.len());
    }

    #[test]
    fn roundtrip_basic() {
        rt(b"");
        rt(b"q");
        rt(b"abcd");
        rt(b"abcdabcdabcdabcd");
    }

    #[test]
    fn roundtrip_long_runs_extended_counts() {
        rt(&vec![3u8; 10_000]); // match count extension
        let mut data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        data.extend_from_slice(&[7u8; 300]);
        rt(&data); // literal count extension (mostly unique 4-byte words)
    }

    #[test]
    fn roundtrip_boundary_literal_counts() {
        // Literal runs of exactly 14, 15, 16 bytes before a match.
        for lits in [14usize, 15, 16, 269, 270, 271] {
            let mut data: Vec<u8> = (0..lits as u32).map(|i| (i % 251) as u8 ^ 0x55).collect();
            data.extend_from_slice(b"matchmatchmatchmatch");
            rt(&data);
        }
    }

    #[test]
    fn compresses_repeats() {
        let data: Vec<u8> = b"0123456789".iter().copied().cycle().take(8192).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{}", c.len());
    }

    #[test]
    fn far_matches_beyond_u16_ignored() {
        let mut data = vec![0x11u8; 8];
        data.extend(std::iter::repeat_n(0u8, 70_000));
        data.extend_from_slice(&[0x11u8; 8]);
        rt(&data);
    }
}
