//! Chunking bench: {fixed, CDC} x {forward, reverse} on a shifted version
//! chain, with warm boots priced on the *measured* pool layout.
//!
//! The workload is a cache file evolving over several versions, each one
//! re-imported and snapshotted (the registration shape). Half of every
//! version is byte-shifted against its predecessor — fixed records lose all
//! cross-version dedup there, content-defined chunks re-synchronize. The
//! other half evolves block-aligned with a fresh-block fraction, so forward
//! dedup leaves the latest version's shared records scattered back among
//! old snapshots; reverse dedup relocates them into one sequential run.
//!
//! Each cell reports the pool's space stats, the latest file's scatter
//! ([`ZPool::file_scatter`]), and a warm-boot time from
//! [`BootSim::boot_measured`] over the file's actual extents. Three
//! contracts are enforced and carried in `results/BENCH_chunking.json`:
//!
//! * **`deterministic_across_threads`** — every cell's pool state and full
//!   send-stream bytes are bit-identical at threads 1/2/8.
//! * **`reverse_not_slower`** — per strategy, the reverse-mode warm boot is
//!   no slower than forward at equal physical bytes (relocation never
//!   changes what is stored, only where).
//! * **`cdc_dedup_gte_fixed`** — CDC stores no more physical bytes than
//!   fixed records on the shifted chain.

use crate::config::ExperimentConfig;
use crate::csvout::{fmt_f, Table};
use squirrel_bootsim::{BootSim, MeasuredVolumeParams};
use squirrel_compress::Codec;
use squirrel_dataset::rng::SplitMix64;
use squirrel_dataset::{BootTrace, ReadOp};
use squirrel_hash::ContentHash;
use squirrel_zfs::{
    CdcParams, ChunkStrategy, DedupMode, FileScatter, PoolConfig, SpaceStats, ZPool,
};

/// Default workload shape: 256 x 16 KiB blocks per version, 4 versions.
pub const CHUNKING_BLOCKS: usize = 256;
pub const CHUNKING_BLOCK_SIZE: usize = 16 * 1024;
pub const CHUNKING_VERSIONS: usize = 4;
/// Bytes inserted at the front of the shifted half per version.
pub const CHUNKING_SHIFT: usize = 512;
/// Thread counts the determinism contract pins.
pub const CHUNKING_THREADS: [usize; 3] = [1, 2, 8];

/// One (strategy, mode) cell of the sweep.
#[derive(Clone, Debug)]
pub struct ChunkingCell {
    pub strategy: &'static str,
    pub mode: &'static str,
    pub stats: SpaceStats,
    pub scatter: FileScatter,
    pub warm_boot_seconds: f64,
    /// SHA-256 (folded) of the final snapshot's full send stream.
    pub fingerprint: u128,
}

/// The whole sweep plus its gate verdicts.
#[derive(Clone, Debug)]
pub struct ChunkingBench {
    pub cells: Vec<ChunkingCell>,
    pub deterministic: bool,
    pub reverse_not_slower: bool,
    pub cdc_dedup_gte_fixed: bool,
}

/// All versions of the evolving cache, cut into records. Version `k`'s
/// first half is the base stream with `k * CHUNKING_SHIFT` fresh bytes
/// inserted at the front (byte-shifted against every other version); its
/// second half evolves block-aligned, keeping ~3/4 of the predecessor's
/// blocks.
pub fn version_chain(
    n_blocks: usize,
    bs: usize,
    versions: usize,
    shift: usize,
    seed: u64,
) -> Vec<Vec<Vec<u8>>> {
    let half_a = n_blocks / 2;
    let half_b = n_blocks - half_a;
    let a_len = half_a * bs;
    let mut rng = SplitMix64::new(seed | 1);
    let base: Vec<u8> = (0..a_len).map(|_| rng.next_u64() as u8).collect();

    let fresh_block = |v: usize, j: usize| -> Vec<u8> {
        let mut r = SplitMix64::new(
            (seed ^ (v as u64).wrapping_mul(0x9e37_79b9) ^ ((j as u64) << 32)) | 1,
        );
        (0..bs).map(|_| r.next_u64() as u8).collect()
    };

    let mut aligned: Vec<Vec<u8>> = (0..half_b).map(|j| fresh_block(0, j)).collect();
    let mut out = Vec::with_capacity(versions);
    for v in 0..versions {
        if v > 0 {
            // Churn a quarter of the aligned half.
            for (j, block) in aligned.iter_mut().enumerate() {
                if SplitMix64::new((seed ^ (v * 1000 + j) as u64) | 1)
                    .next_u64()
                    .is_multiple_of(4)
                {
                    *block = fresh_block(v, j);
                }
            }
        }
        // Shifted half: fresh prefix, then the base stream truncated to fit.
        let ins = (v * shift).min(a_len);
        let mut pr = SplitMix64::new((seed ^ 0xface ^ v as u64) | 1);
        let mut stream: Vec<u8> = (0..ins).map(|_| pr.next_u64() as u8).collect();
        stream.extend_from_slice(&base[..a_len - ins]);
        let mut blocks: Vec<Vec<u8>> =
            stream.chunks(bs).map(|c| c.to_vec()).collect();
        blocks.extend(aligned.iter().cloned());
        assert_eq!(blocks.len(), n_blocks);
        out.push(blocks);
    }
    out
}

/// Import the whole chain into one pool and measure the final state.
fn run_cell(
    strategy: (&'static str, ChunkStrategy),
    mode: (&'static str, DedupMode),
    versions: &[Vec<Vec<u8>>],
    bs: usize,
    threads: usize,
) -> ChunkingCell {
    let mut pool = ZPool::new(
        PoolConfig::new(bs, Codec::Lzjb)
            .with_threads(threads)
            .with_chunking(strategy.1)
            .with_dedup_mode(mode.1),
    );
    let logical = (versions[0].len() * bs) as u64;
    let mut last_tag = String::new();
    for (v, blocks) in versions.iter().enumerate() {
        pool.import_file_parallel("cache", blocks, logical);
        last_tag = format!("v{v}");
        pool.snapshot(&last_tag);
    }
    let stats = pool.stats();
    let scatter = pool.file_scatter("cache").expect("cache file");
    let wire = pool.send_between(None, &last_tag).expect("send").encode();
    let fingerprint = ContentHash::of(&wire).short();

    let params = MeasuredVolumeParams::from_pool(&pool, "cache").expect("cache file");
    let ops = (0..logical / (64 * 1024))
        .map(|c| ReadOp { offset: c * 64 * 1024, len: 64 * 1024 })
        .collect();
    let report = BootSim::new().boot_measured(&BootTrace { ops }, &params);

    ChunkingCell {
        strategy: strategy.0,
        mode: mode.0,
        stats,
        scatter,
        warm_boot_seconds: report.total_seconds,
        fingerprint,
    }
}

/// Sweep the four cells, enforce the three contracts, persist
/// `BENCH_chunking.json`.
pub fn run_chunking(
    cfg: &ExperimentConfig,
    n_blocks: usize,
    bs: usize,
    versions: usize,
) -> ChunkingBench {
    let chain = version_chain(n_blocks, bs, versions, CHUNKING_SHIFT, cfg.seed);
    let strategies = [
        ("fixed", ChunkStrategy::Fixed(bs)),
        ("cdc", ChunkStrategy::Cdc(CdcParams::with_average(bs))),
    ];
    let modes = [("forward", DedupMode::Forward), ("reverse", DedupMode::Reverse)];

    let mut cells = Vec::new();
    let mut deterministic = true;
    for strategy in strategies {
        for mode in modes {
            let reference = run_cell(strategy, mode, &chain, bs, CHUNKING_THREADS[0]);
            for &threads in &CHUNKING_THREADS[1..] {
                let again = run_cell(strategy, mode, &chain, bs, threads);
                if again.stats != reference.stats
                    || again.fingerprint != reference.fingerprint
                {
                    eprintln!(
                        "chunking: {}/{} diverged at threads {threads}",
                        strategy.0, mode.0
                    );
                    deterministic = false;
                }
            }
            cells.push(reference);
        }
    }

    let find = |s: &str, m: &str| {
        cells
            .iter()
            .find(|c| c.strategy == s && c.mode == m)
            .expect("cell")
    };
    let reverse_not_slower = ["fixed", "cdc"].iter().all(|s| {
        let fwd = find(s, "forward");
        let rev = find(s, "reverse");
        rev.stats.physical_bytes == fwd.stats.physical_bytes
            && rev.warm_boot_seconds <= fwd.warm_boot_seconds * 1.0001
    });
    let cdc_dedup_gte_fixed = find("cdc", "forward").stats.physical_bytes
        <= find("fixed", "forward").stats.physical_bytes;

    let mut t = Table::new(&[
        "strategy",
        "mode",
        "physical_mib",
        "extents",
        "mean_gap_kib",
        "warm_boot_s",
    ]);
    for c in &cells {
        t.push(vec![
            c.strategy.to_string(),
            c.mode.to_string(),
            fmt_f(c.stats.physical_bytes as f64 / (1 << 20) as f64),
            c.scatter.extents.to_string(),
            fmt_f(c.scatter.mean_gap_bytes / 1024.0),
            fmt_f(c.warm_boot_seconds),
        ]);
    }
    t.print("Chunking: {fixed, cdc} x {forward, reverse} on a shifted version chain");
    println!(
        "chunking gates: deterministic_across_threads={deterministic} \
         reverse_not_slower={reverse_not_slower} cdc_dedup_gte_fixed={cdc_dedup_gte_fixed}"
    );

    let bench = ChunkingBench { cells, deterministic, reverse_not_slower, cdc_dedup_gte_fixed };
    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_chunking.json");
        std::fs::write(&path, render_json(n_blocks, bs, versions, &bench))
            .expect("write BENCH_chunking.json");
        println!("chunking bench written to {}", path.display());
    }
    bench
}

/// Hand-rolled JSON (the workspace is std-only by policy).
fn render_json(n_blocks: usize, bs: usize, versions: usize, b: &ChunkingBench) -> String {
    let entries: Vec<String> = b
        .cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"strategy\": \"{}\", \"mode\": \"{}\", \"logical_bytes\": {}, \
                 \"physical_bytes\": {}, \"unique_records\": {}, \"extents\": {}, \
                 \"mean_gap_bytes\": {}, \"warm_boot_seconds\": {}, \
                 \"fingerprint\": \"{:032x}\"}}",
                c.strategy,
                c.mode,
                c.stats.logical_bytes,
                c.stats.physical_bytes,
                c.stats.unique_blocks,
                c.scatter.extents,
                fmt_f(c.scatter.mean_gap_bytes),
                fmt_f(c.warm_boot_seconds),
                c.fingerprint,
            )
        })
        .collect();
    format!(
        "{{\n  \"block_size\": {bs},\n  \"blocks_per_version\": {n_blocks},\n  \
         \"versions\": {versions},\n  \"shift_bytes\": {CHUNKING_SHIFT},\n  \
         \"codec\": \"lzjb\",\n  \"deterministic_across_threads\": {},\n  \
         \"reverse_not_slower\": {},\n  \"cdc_dedup_gte_fixed\": {},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        b.deterministic,
        b.reverse_not_slower,
        b.cdc_dedup_gte_fixed,
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_chain_is_deterministic_and_shifted() {
        let a = version_chain(16, 4096, 3, 512, 7);
        let b = version_chain(16, 4096, 3, 512, 7);
        assert_eq!(a, b, "chain must be seed-deterministic");
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|v| v.len() == 16));
        // The shifted half really shifts: v1's first block differs from
        // v0's, but v0's content reappears displaced inside v1's stream.
        assert_ne!(a[0][0], a[1][0]);
        let flat1: Vec<u8> = a[1][..8].concat();
        let window = &a[0][0][..512];
        assert!(
            flat1.windows(window.len()).any(|w| w == window),
            "old content must survive, displaced"
        );
    }

    #[test]
    fn chunking_sweep_enforces_all_three_gates() {
        let cfg = ExperimentConfig { out_dir: None, ..ExperimentConfig::smoke() };
        let b = run_chunking(&cfg, 64, 4096, 3);
        assert_eq!(b.cells.len(), 4);
        assert!(b.deterministic, "pool state must not depend on threads");
        assert!(b.reverse_not_slower, "reverse must not lose the warm boot");
        assert!(b.cdc_dedup_gte_fixed, "cdc must win the shifted chain");
        // Reverse really defragments the latest version.
        for s in ["fixed", "cdc"] {
            let fwd = b.cells.iter().find(|c| c.strategy == s && c.mode == "forward");
            let rev = b.cells.iter().find(|c| c.strategy == s && c.mode == "reverse");
            assert!(
                rev.expect("rev").scatter.extents <= fwd.expect("fwd").scatter.extents,
                "strategy {s}"
            );
        }
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let bench = ChunkingBench {
            cells: vec![],
            deterministic: true,
            reverse_not_slower: true,
            cdc_dedup_gte_fixed: true,
        };
        let json = render_json(64, 4096, 3, &bench);
        for key in [
            "\"deterministic_across_threads\": true",
            "\"reverse_not_slower\": true",
            "\"cdc_dedup_gte_fixed\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
