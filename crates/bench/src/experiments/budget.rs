//! Hoard-budget sweep: catalog size vs per-node footprint vs degraded-boot
//! rate (`squirrel_core::Squirrel::enforce_hoard_budgets`).
//!
//! For each catalog size the sweep hoards the catalog on a small cluster at
//! three budget tiers — *generous* (unlimited), *exact* (the measured
//! footprint), *starved* (half of it) — skews image popularity with boots,
//! runs the enforcement pass, then probes every node × image boot to count
//! how many land degraded on shared storage. The paper's budget claim
//! (Section 4.4: ~10 GB disk and ~60 MB of DDT memory per node) is the
//! production default this sweep scales down.
//!
//! Every tier repeats at each worker-thread count; eviction decisions,
//! reports and metric snapshots must be bit-identical across the sweep.
//!
//! Results land in `results/BENCH_budget.json`.

use crate::config::ExperimentConfig;
use crate::csvout::fmt_f;
use crate::experiments::bootstorm::thread_sweep;
use squirrel_core::{HoardBudget, Squirrel, SquirrelConfig};
use squirrel_dataset::Corpus;
use std::sync::Arc;

/// Compute nodes in the budgeted cluster.
pub const BUDGET_NODES: u32 = 3;
/// Pool record size for the sweep.
pub const BUDGET_BLOCK_SIZE: usize = 16 * 1024;

/// One catalog × budget-tier cell. Pure integers and booleans; equality
/// across thread counts is the determinism witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierOutcome {
    /// "generous", "exact" or "starved".
    pub tier: &'static str,
    /// Images registered.
    pub catalog: u32,
    /// The per-node budget enforced (zeros = unlimited).
    pub budget: HoardBudget,
    /// Whole-cache evictions the enforcement pass performed.
    pub evictions: u64,
    pub disk_bytes_freed: u64,
    pub ddt_mem_bytes_freed: u64,
    /// Every node ended within budget.
    pub within_budget: bool,
    /// Largest per-node disk footprint after enforcement.
    pub node_disk_bytes: u64,
    /// Largest per-node in-core DDT footprint after enforcement.
    pub node_ddt_mem_bytes: u64,
    /// Probe boots attempted (nodes × catalog).
    pub probe_boots: u64,
    /// Probe boots served degraded from shared storage.
    pub degraded_boots: u64,
}

impl TierOutcome {
    pub fn degraded_rate(&self) -> f64 {
        self.degraded_boots as f64 / self.probe_boots.max(1) as f64
    }
}

/// One thread count's full sweep.
#[derive(Clone, Debug)]
pub struct BudgetRun {
    pub threads: usize,
    pub wall_secs: f64,
    pub cells: Vec<TierOutcome>,
}

/// Catalog sizes swept: a quarter, half and the whole corpus.
fn catalogs(cfg: &ExperimentConfig) -> Vec<u32> {
    let max = cfg.images.min(16);
    let mut sizes: Vec<u32> = [max / 4, max / 2, max].into_iter().filter(|&c| c > 0).collect();
    sizes.dedup();
    sizes
}

/// Hoard `catalog` images under `budget`, skew popularity, enforce, probe.
fn run_tier(
    corpus: &Arc<Corpus>,
    catalog: u32,
    budget: HoardBudget,
    tier: &'static str,
    threads: usize,
) -> (TierOutcome, squirrel_obs::MetricsSnapshot) {
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(BUDGET_NODES)
            .block_size(BUDGET_BLOCK_SIZE)
            .threads(threads)
            .hoard_budget(budget)
            .build(),
        Arc::clone(corpus),
    );
    for img in 0..catalog {
        sq.register(img).expect("register");
    }
    // Popularity skew: earlier images boot more, capped so the probe stays
    // cheap. Ties resolve by ascending image id inside the policy.
    for img in 0..catalog {
        let boots = (catalog - img).min(5);
        for _ in 0..boots {
            sq.boot(img % BUDGET_NODES, img).expect("skew boot");
        }
    }

    let report = sq.enforce_hoard_budgets();

    let mut probe_boots = 0u64;
    let mut degraded_boots = 0u64;
    for node in 0..BUDGET_NODES {
        for img in 0..catalog {
            let out = sq.boot(node, img).expect("probe boot");
            probe_boots += 1;
            if out.degraded {
                degraded_boots += 1;
            }
        }
    }

    let (mut disk, mut ddt) = (0u64, 0u64);
    for node in 0..BUDGET_NODES {
        let s = sq.ccvol_stats(node).expect("node stats");
        disk = disk.max(s.total_disk_bytes());
        ddt = ddt.max(s.ddt_memory_bytes);
    }
    let cell = TierOutcome {
        tier,
        catalog,
        budget,
        evictions: report.evictions.len() as u64,
        disk_bytes_freed: report.disk_bytes_freed,
        ddt_mem_bytes_freed: report.ddt_mem_bytes_freed,
        within_budget: report.is_within_budget(),
        node_disk_bytes: disk,
        node_ddt_mem_bytes: ddt,
        probe_boots,
        degraded_boots,
    };
    (cell, sq.metrics().snapshot())
}

/// One thread count's sweep over every catalog × tier.
fn sweep_once(
    corpus: &Arc<Corpus>,
    cfg: &ExperimentConfig,
    threads: usize,
) -> (Vec<TierOutcome>, Vec<squirrel_obs::MetricsSnapshot>) {
    let mut cells = Vec::new();
    let mut snaps = Vec::new();
    for catalog in catalogs(cfg) {
        let (generous, snap) =
            run_tier(corpus, catalog, HoardBudget::unlimited(), "generous", threads);
        // The measured footprint parameterises the constrained tiers.
        let exact_budget = HoardBudget {
            disk_bytes: generous.node_disk_bytes,
            ddt_mem_bytes: generous.node_ddt_mem_bytes,
        };
        let starved_budget =
            HoardBudget { disk_bytes: generous.node_disk_bytes / 2, ddt_mem_bytes: 0 };
        cells.push(generous);
        snaps.push(snap);
        for (budget, tier) in [(exact_budget, "exact"), (starved_budget, "starved")] {
            let (cell, snap) = run_tier(corpus, catalog, budget, tier, threads);
            cells.push(cell);
            snaps.push(snap);
        }
    }
    (cells, snaps)
}

/// Sweep the thread counts, assert the tier invariants and bit-identical
/// outcomes, and persist `BENCH_budget.json`.
pub fn run_budget(cfg: &ExperimentConfig) -> Vec<BudgetRun> {
    let corpus = cfg.corpus();
    let mut reference_snaps: Option<Vec<squirrel_obs::MetricsSnapshot>> = None;
    let runs: Vec<BudgetRun> = thread_sweep(cfg)
        .into_iter()
        .map(|threads| {
            let t = std::time::Instant::now();
            let (cells, snaps) = sweep_once(&corpus, cfg, threads);
            match &reference_snaps {
                None => reference_snaps = Some(snaps),
                Some(reference) => assert_eq!(
                    &snaps, reference,
                    "threads={threads}: metric snapshots diverged"
                ),
            }
            BudgetRun { threads, wall_secs: t.elapsed().as_secs_f64(), cells }
        })
        .collect();

    let first = &runs[0];
    for run in &runs {
        assert_eq!(
            run.cells, first.cells,
            "threads={} diverged from threads={}",
            run.threads, first.threads
        );
    }
    for cell in &first.cells {
        match cell.tier {
            "generous" | "exact" => {
                assert_eq!(cell.evictions, 0, "{cell:?}");
                assert_eq!(cell.degraded_boots, 0, "{cell:?}");
            }
            _ => {
                assert!(cell.evictions > 0, "{cell:?}");
                assert!(cell.degraded_boots > 0, "{cell:?}");
                assert!(cell.within_budget, "{cell:?}");
                assert!(cell.node_disk_bytes <= cell.budget.disk_bytes, "{cell:?}");
            }
        }
    }

    for cell in &first.cells {
        println!(
            "budget catalog={} tier={}: {} evictions, {} freed, \
             degraded rate {:.3}, node footprint {} B disk / {} B ddt",
            cell.catalog,
            cell.tier,
            cell.evictions,
            cell.disk_bytes_freed,
            cell.degraded_rate(),
            cell.node_disk_bytes,
            cell.node_ddt_mem_bytes,
        );
    }

    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_budget.json");
        std::fs::write(&path, render_json(cfg, &runs)).expect("write BENCH_budget.json");
        println!("budget bench written to {}", path.display());
    }
    runs
}

/// Hand-rolled JSON (the workspace is std-only by policy).
fn render_json(cfg: &ExperimentConfig, runs: &[BudgetRun]) -> String {
    let cells = &runs[0].cells;
    // Headline rates come from the largest catalog (the last tier group).
    let rate_of = |tier: &str| {
        cells
            .iter()
            .rev()
            .find(|c| c.tier == tier)
            .map(|c| c.degraded_rate())
            .unwrap_or(0.0)
    };
    let cell_entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"catalog\": {}, \"tier\": \"{}\", \"budget_disk_bytes\": {}, \
                 \"budget_ddt_mem_bytes\": {}, \"evictions\": {}, \
                 \"disk_bytes_freed\": {}, \"ddt_mem_bytes_freed\": {}, \
                 \"within_budget\": {}, \"node_disk_bytes\": {}, \
                 \"node_ddt_mem_bytes\": {}, \"probe_boots\": {}, \
                 \"degraded_boots\": {}, \"degraded_boot_rate\": {}}}",
                c.catalog,
                c.tier,
                c.budget.disk_bytes,
                c.budget.ddt_mem_bytes,
                c.evictions,
                c.disk_bytes_freed,
                c.ddt_mem_bytes_freed,
                c.within_budget,
                c.node_disk_bytes,
                c.node_ddt_mem_bytes,
                c.probe_boots,
                c.degraded_boots,
                fmt_f(c.degraded_rate()),
            )
        })
        .collect();
    let run_entries: Vec<String> = runs
        .iter()
        .map(|run| {
            format!(
                "    {{\"threads\": {}, \"wall_secs\": {}}}",
                run.threads,
                fmt_f(run.wall_secs)
            )
        })
        .collect();
    let paper = HoardBudget::paper();
    format!(
        "{{\n  \"seed\": {},\n  \"images\": {},\n  \"nodes\": {BUDGET_NODES},\n  \
         \"block_size\": {BUDGET_BLOCK_SIZE},\n  \
         \"paper_budget\": {{\"disk_bytes\": {}, \"ddt_mem_bytes\": {}}},\n  \
         \"deterministic_across_threads\": true,\n  \
         \"generous_degraded_boot_rate\": {},\n  \
         \"exact_degraded_boot_rate\": {},\n  \
         \"starved_degraded_boot_rate\": {},\n  \
         \"cells\": [\n{}\n  ],\n  \"runs\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.images,
        paper.disk_bytes,
        paper.ddt_mem_bytes,
        fmt_f(rate_of("generous")),
        fmt_f(rate_of("exact")),
        fmt_f(rate_of("starved")),
        cell_entries.join(",\n"),
        run_entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sweep_is_deterministic_and_tiers_behave() {
        let cfg = ExperimentConfig::smoke();
        let runs = run_budget(&cfg);
        assert_eq!(runs.len(), 3);
        let cells = &runs[0].cells;
        assert!(cells.iter().any(|c| c.tier == "starved" && c.evictions > 0));
        assert!(cells
            .iter()
            .all(|c| c.tier != "generous" || c.degraded_boots == 0));
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let cfg = ExperimentConfig { threads: 1, ..ExperimentConfig::smoke() };
        let corpus = cfg.corpus();
        let (cells, _) = sweep_once(&corpus, &cfg, 1);
        let runs = vec![BudgetRun { threads: 1, wall_secs: 0.1, cells }];
        let json = render_json(&cfg, &runs);
        for key in [
            "\"deterministic_across_threads\": true",
            "\"generous_degraded_boot_rate\": 0,",
            "\"starved_degraded_boot_rate\": ",
            "\"paper_budget\"",
            "\"cells\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The starved headline rate must be strictly positive.
        let rate_line = json
            .lines()
            .find(|l| l.contains("starved_degraded_boot_rate"))
            .expect("rate line");
        assert!(!rate_line.contains(": 0,"), "starved rate should be > 0: {rate_line}");
    }
}
