//! The pool: files of fixed-size deduplicated, compressed blocks, plus
//! whole-pool snapshots.
//!
//! Model notes versus real ZFS: a pool holds one dataset whose files are the
//! VMI caches; snapshots capture the entire file set (Squirrel snapshots the
//! whole cVolume); blocks are fixed `recordsize` units; zero blocks become
//! holes. Reference counting is exact: one reference per live file pointer
//! plus one per snapshot pointer, so destroying snapshots frees exactly the
//! blocks nothing else uses.

use crate::config::PoolConfig;
use crate::ddt::{BlockKey, SharedPayload};
use crate::meter::PoolMeters;
use crate::sddt::ShardedDedupTable;
use crate::stats::SpaceStats;
use squirrel_compress::{compress, decompress};
use squirrel_hash::par::WorkerPool;
use squirrel_hash::ContentHash;
use squirrel_obs::Metrics;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A resolved block pointer: where a file block lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRef {
    pub key: BlockKey,
    /// Physical byte offset of the compressed record.
    pub phys: u64,
    /// Compressed size.
    pub psize: u32,
}

/// Per-file block-pointer table. The pointer vector sits behind an `Arc` so
/// snapshots and send-stream metadata share it: cloning a table (every
/// snapshot clones the whole file map) is a refcount bump, and the
/// copy-on-write `Arc::make_mut` in [`ZPool::write_block`] only materializes
/// a private vector when a shared table is actually modified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct FileTable {
    /// `None` = hole (zero block).
    pub(crate) ptrs: Arc<Vec<Option<BlockKey>>>,
    /// Logical file length in bytes.
    pub(crate) len: u64,
}

/// A whole-pool snapshot: the file set at a point in time.
#[derive(Clone, Debug)]
pub(crate) struct Snapshot {
    pub(crate) tag: String,
    pub(crate) files: BTreeMap<String, FileTable>,
}

/// The deduplicating, compressing, snapshotting block store.
pub struct ZPool {
    config: PoolConfig,
    ddt: ShardedDedupTable,
    files: BTreeMap<String, FileTable>,
    /// Snapshots in creation order.
    snapshots: Vec<Snapshot>,
    /// One shared all-zero block: every hole read returns a reference to
    /// this buffer instead of materializing fresh zeros.
    zero_block: SharedPayload,
    /// Interned observability handles; no-ops until [`ZPool::set_metrics`].
    pub(crate) meters: PoolMeters,
    /// Persistent ingest workers, sized by `config.threads` and spawned
    /// lazily on the first parallel stage. Shareable across pools via
    /// [`ZPool::set_worker_pool`] so one `Squirrel` node runs all of its
    /// cVolumes on a single worker set.
    workers: WorkerPool,
}

impl ZPool {
    pub fn new(config: PoolConfig) -> Self {
        ZPool {
            config,
            ddt: ShardedDedupTable::new(),
            files: BTreeMap::new(),
            snapshots: Vec::new(),
            zero_block: vec![0u8; config.block_size].into(),
            meters: PoolMeters::disabled(),
            workers: WorkerPool::new(config.threads),
        }
    }

    /// Replace this pool's worker pool with a shared one (e.g. the owning
    /// node's), so sibling pools reuse one set of persistent threads
    /// instead of each lazily spawning their own.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        self.workers = pool;
    }

    /// The pool's persistent ingest workers.
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.workers
    }

    /// Attach observability: every ingest/recv/scrub on this pool records
    /// counters and histograms through `metrics` (label the handle, e.g.
    /// `pool="scvol"`, before attaching). All pool metrics are add-only, so
    /// snapshots stay deterministic under parallel ingestion and fan-out.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.meters = PoolMeters::new(metrics);
    }

    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    // --- files -------------------------------------------------------------

    /// Create an empty file; replaces any existing file of the same name.
    pub fn create_file(&mut self, name: &str) {
        self.delete_file(name);
        self.files.insert(name.to_string(), FileTable::default());
    }

    pub fn has_file(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(|s| s.as_str())
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Logical length of `name` in bytes.
    pub fn file_len(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|f| f.len)
    }

    /// Delete a file from the live dataset (snapshots keep referencing its
    /// blocks until destroyed).
    pub fn delete_file(&mut self, name: &str) {
        if let Some(table) = self.files.remove(name) {
            for key in table.ptrs.iter().copied().flatten() {
                self.ddt.release(&key);
            }
        }
    }

    /// Write one aligned block. `data` must be exactly `block_size` bytes
    /// (callers zero-pad tails, as the dataset layer does). All-zero data
    /// punches a hole.
    pub fn write_block(&mut self, name: &str, block_idx: u64, data: &[u8]) {
        assert_eq!(data.len(), self.config.block_size, "unaligned write");
        self.meters.ingest_blocks.inc();
        self.meters.ingest_bytes.add(data.len() as u64);
        let new_key = if squirrel_hash::is_zero_block(data) {
            self.meters.zero_blocks.inc();
            None
        } else {
            let key = ContentHash::of(data).short();
            let codec = self.config.codec;
            let retain = self.config.retain_data;
            let existed = self.ddt.get(&key).is_some();
            self.ddt.add_ref(key, || {
                let frame = compress(codec, data);
                let psize = frame.len() as u32;
                (psize, retain.then(|| frame.into()))
            });
            if existed {
                self.meters.ddt_hits.inc();
            } else {
                self.meters.ddt_misses.inc();
                let psize = self.ddt.get(&key).expect("just added").psize as u64;
                self.meters.compress_in_bytes.add(data.len() as u64);
                self.meters.compress_out_bytes.add(psize);
                self.meters.compressed_block_bytes.observe(psize);
            }
            Some(key)
        };
        let table = self.files.get_mut(name).expect("write to unknown file");
        // Copy-on-write: snapshots share the pointer vector; the first write
        // after a snapshot materializes a private copy, later writes mutate
        // it in place.
        let ptrs = Arc::make_mut(&mut table.ptrs);
        if ptrs.len() <= block_idx as usize {
            ptrs.resize(block_idx as usize + 1, None);
        }
        let old = std::mem::replace(&mut ptrs[block_idx as usize], new_key);
        table.len = table.len.max((block_idx + 1) * self.config.block_size as u64);
        if let Some(old_key) = old {
            self.ddt.release(&old_key);
        }
    }

    /// Read one block (zeros for holes and unwritten space). `None` if the
    /// file does not exist.
    pub fn read_block(&self, name: &str, block_idx: u64) -> Option<Vec<u8>> {
        let table = self.files.get(name)?;
        let bs = self.config.block_size;
        match table.ptrs.get(block_idx as usize).copied().flatten() {
            None => Some(vec![0u8; bs]),
            Some(key) => {
                let entry = self.ddt.get(&key).expect("dangling block pointer");
                let frame = entry.data.as_ref().expect("read from accounting-only pool");
                Some(decompress(frame, bs))
            }
        }
    }

    /// [`read_block`](Self::read_block) returning a shared payload: holes
    /// hand out the pool's one zero block (a refcount bump), data blocks
    /// decompress once into a buffer that caches and callers then share.
    /// This is the fill path of [`crate::ArcCache`] and
    /// [`crate::SharedArcCache`].
    pub fn read_block_shared(&self, name: &str, block_idx: u64) -> Option<SharedPayload> {
        let table = self.files.get(name)?;
        match table.ptrs.get(block_idx as usize).copied().flatten() {
            None => Some(Arc::clone(&self.zero_block)),
            Some(key) => {
                let entry = self.ddt.get(&key).expect("dangling block pointer");
                let frame = entry.data.as_ref().expect("read from accounting-only pool");
                Some(decompress(frame, self.config.block_size).into())
            }
        }
    }

    /// The pool's shared all-zero block (what hole reads return).
    pub fn zero_block_shared(&self) -> SharedPayload {
        Arc::clone(&self.zero_block)
    }

    /// Resolve one block pointer of `name`. Outer `None` = no such file;
    /// inner `None` = hole (including unwritten space past the table, which
    /// reads as zeros). Unlike [`block_refs`](Self::block_refs), this does
    /// not materialize the whole table — the read caches call it per block.
    pub fn block_ref(&self, name: &str, block_idx: u64) -> Option<Option<BlockRef>> {
        let table = self.files.get(name)?;
        Some(table.ptrs.get(block_idx as usize).copied().flatten().map(|key| {
            let e = self.ddt.get(&key).expect("dangling block pointer");
            BlockRef { key, phys: e.phys, psize: e.psize }
        }))
    }

    /// Import a whole file from an iterator of `block_size` blocks.
    pub fn import_file(
        &mut self,
        name: &str,
        blocks: impl Iterator<Item = Vec<u8>>,
        logical_len: u64,
    ) {
        self.create_file(name);
        for (i, block) in blocks.enumerate() {
            self.write_block(name, i as u64, &block);
        }
        if let Some(table) = self.files.get_mut(name) {
            table.len = logical_len;
        }
    }

    /// Resolved block pointers of `name` (for physical-layout analysis);
    /// `None` entries are holes.
    pub fn block_refs(&self, name: &str) -> Option<Vec<Option<BlockRef>>> {
        let table = self.files.get(name)?;
        Some(
            table
                .ptrs
                .iter()
                .map(|p| {
                    p.map(|key| {
                        let e = self.ddt.get(&key).expect("dangling block pointer");
                        BlockRef { key, phys: e.phys, psize: e.psize }
                    })
                })
                .collect(),
        )
    }

    // --- snapshots ----------------------------------------------------------

    /// Create a read-only snapshot of the whole file set.
    pub fn snapshot(&mut self, tag: &str) {
        assert!(
            !self.snapshots.iter().any(|s| s.tag == tag),
            "duplicate snapshot tag {tag}"
        );
        for table in self.files.values() {
            for key in table.ptrs.iter().flatten() {
                self.ddt.add_ref(*key, || unreachable!("snapshot references live block"));
            }
        }
        self.snapshots.push(Snapshot { tag: tag.to_string(), files: self.files.clone() });
    }

    /// Destroy a snapshot, freeing blocks nothing else references.
    pub fn destroy_snapshot(&mut self, tag: &str) -> bool {
        let Some(i) = self.snapshots.iter().position(|s| s.tag == tag) else {
            return false;
        };
        let snap = self.snapshots.remove(i);
        for table in snap.files.values() {
            for key in table.ptrs.iter().flatten() {
                self.ddt.release(key);
            }
        }
        true
    }

    /// Snapshot tags, oldest first.
    pub fn snapshot_tags(&self) -> Vec<&str> {
        self.snapshots.iter().map(|s| s.tag.as_str()).collect()
    }

    pub fn latest_snapshot(&self) -> Option<&str> {
        self.snapshots.last().map(|s| s.tag.as_str())
    }

    /// File names captured by snapshot `tag`.
    pub fn snapshot_file_names(&self, tag: &str) -> Option<Vec<&str>> {
        self.find_snapshot(tag)
            .map(|s| s.files.keys().map(|k| k.as_str()).collect())
    }

    pub fn has_snapshot(&self, tag: &str) -> bool {
        self.snapshots.iter().any(|s| s.tag == tag)
    }

    pub(crate) fn find_snapshot(&self, tag: &str) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.tag == tag)
    }

    pub(crate) fn files(&self) -> &BTreeMap<String, FileTable> {
        &self.files
    }

    pub(crate) fn files_mut(&mut self) -> &mut BTreeMap<String, FileTable> {
        &mut self.files
    }

    pub(crate) fn ddt(&self) -> &ShardedDedupTable {
        &self.ddt
    }

    pub(crate) fn ddt_mut(&mut self) -> &mut ShardedDedupTable {
        &mut self.ddt
    }

    pub(crate) fn push_snapshot(&mut self, snap: Snapshot) {
        self.snapshots.push(snap);
    }

    // --- accounting ----------------------------------------------------------

    /// Current space accounting.
    pub fn stats(&self) -> SpaceStats {
        let logical_bytes: u64 = self.files.values().map(|f| f.len).sum();
        let live_ptrs: u64 = self.files.values().map(|f| f.ptrs.len() as u64).sum();
        let snap_ptrs: u64 = self
            .snapshots
            .iter()
            .flat_map(|s| s.files.values())
            .map(|f| f.ptrs.len() as u64)
            .sum();
        let unique_blocks = self.ddt.len() as u64;
        SpaceStats {
            block_size: self.config.block_size as u64,
            logical_bytes,
            unique_blocks,
            physical_bytes: self.ddt.physical_bytes(),
            ddt_disk_bytes: unique_blocks * self.config.ddt_disk_entry_bytes,
            ddt_memory_bytes: unique_blocks * self.config.ddt_mem_entry_bytes,
            bp_disk_bytes: (live_ptrs + snap_ptrs) * self.config.bp_disk_bytes,
        }
    }

    /// Fraction of `name`'s nonzero blocks whose DDT refcount exceeds
    /// `threshold` — with `threshold` set to the number of references a
    /// lone file would hold (1 + live snapshots), this measures how much of
    /// the file is deduplicated against *other* content, the input to the
    /// boot simulator's scattering model.
    pub fn file_shared_fraction(&self, name: &str, threshold: u64) -> Option<f64> {
        let table = self.files.get(name)?;
        let mut total = 0u64;
        let mut shared = 0u64;
        for key in table.ptrs.iter().flatten() {
            total += 1;
            if self.ddt.get(key).map(|e| e.refcount).unwrap_or(0) > threshold {
                shared += 1;
            }
        }
        Some(if total == 0 { 0.0 } else { shared as f64 / total as f64 })
    }

    /// In-core dedup-table footprint: per-entry overhead × unique blocks —
    /// the paper's ~60 MB-per-node memory budget axis (Figure 10).
    pub fn ddt_memory_bytes(&self) -> u64 {
        self.ddt.len() as u64 * self.config.ddt_mem_entry_bytes
    }

    /// How far this pool is over its configured hoard budget
    /// ([`PoolConfig::disk_quota_bytes`] / [`PoolConfig::ddt_mem_quota_bytes`];
    /// `0` = unlimited on that axis). The pool reports pressure; whole-cache
    /// eviction policy lives with the node layer.
    pub fn quota_excess(&self) -> crate::QuotaExcess {
        let s = self.stats();
        let over = |used: u64, quota: u64| {
            if quota == 0 {
                0
            } else {
                used.saturating_sub(quota)
            }
        };
        crate::QuotaExcess {
            disk_bytes: over(s.total_disk_bytes(), self.config.disk_quota_bytes),
            ddt_mem_bytes: over(s.ddt_memory_bytes, self.config.ddt_mem_quota_bytes),
        }
    }

    /// True when the pool is within its hoard budget on both axes (always
    /// true for unlimited pools).
    pub fn within_quota(&self) -> bool {
        self.quota_excess().is_zero()
    }

    /// Publish the pool's space accounting as gauges. Gauges are
    /// last-write-wins, so call this only from serial workflow code (the
    /// pool's counters stay deterministic under fan-out; these gauges are a
    /// snapshot, not an accumulator).
    pub fn publish_space_gauges(&self, metrics: &Metrics) {
        let s = self.stats();
        metrics.set_gauge("zpool_disk_bytes", s.total_disk_bytes());
        metrics.set_gauge("zpool_ddt_entries", s.unique_blocks);
        metrics.set_gauge("zpool_ddt_mem_bytes", s.ddt_memory_bytes);
    }

    /// Purge `name` everywhere: the live dataset *and* every snapshot drop
    /// the file, releasing all of its block references. Unlike
    /// [`delete_file`](Self::delete_file) — where snapshots keep pinning the
    /// payloads — a purge frees every DDT entry nothing else shares, which
    /// is what hoard-budget eviction needs to reclaim disk and DDT memory.
    /// Returns whether anything was removed.
    pub fn purge_file(&mut self, name: &str) -> bool {
        let mut removed: Vec<FileTable> = Vec::new();
        if let Some(t) = self.files.remove(name) {
            removed.push(t);
        }
        for snap in &mut self.snapshots {
            if let Some(t) = snap.files.remove(name) {
                removed.push(t);
            }
        }
        let any = !removed.is_empty();
        for table in removed {
            for key in table.ptrs.iter().copied().flatten() {
                self.ddt.release(&key);
            }
        }
        any
    }

    /// Invariant check used by tests: every refcount equals the number of
    /// live + snapshot pointers to that block.
    pub fn check_refcounts(&self) -> bool {
        let mut counts: std::collections::HashMap<BlockKey, u64> = std::collections::HashMap::new();
        for table in self.files.values() {
            for key in table.ptrs.iter().flatten() {
                *counts.entry(*key).or_insert(0) += 1;
            }
        }
        for snap in &self.snapshots {
            for table in snap.files.values() {
                for key in table.ptrs.iter().flatten() {
                    *counts.entry(*key).or_insert(0) += 1;
                }
            }
        }
        if counts.len() != self.ddt.len() {
            return false;
        }
        counts.iter().all(|(k, &c)| self.ddt.get(k).map(|e| e.refcount) == Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squirrel_compress::Codec;

    fn pool(bs: usize) -> ZPool {
        ZPool::new(PoolConfig::new(bs, Codec::Lzjb))
    }

    fn block(bs: usize, fill: u8) -> Vec<u8> {
        vec![fill; bs]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut p = pool(1024);
        p.create_file("a");
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        p.write_block("a", 0, &data);
        assert_eq!(p.read_block("a", 0).expect("file"), data);
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 3, &block(512, 9));
        assert_eq!(p.read_block("a", 0).expect("file"), block(512, 0));
        assert_eq!(p.read_block("a", 100).expect("file"), block(512, 0));
    }

    #[test]
    fn zero_blocks_punch_holes_and_cost_nothing() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 0));
        assert_eq!(p.stats().unique_blocks, 0);
        assert_eq!(p.stats().physical_bytes, 0);
    }

    #[test]
    fn identical_blocks_dedup_across_files() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        p.write_block("a", 0, &block(512, 7));
        p.write_block("b", 0, &block(512, 7));
        p.write_block("b", 1, &block(512, 8));
        let s = p.stats();
        assert_eq!(s.unique_blocks, 2);
        assert!(p.check_refcounts());
    }

    #[test]
    fn overwrite_releases_old_block() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("a", 0, &block(512, 2));
        assert_eq!(p.stats().unique_blocks, 1);
        assert_eq!(p.read_block("a", 0).expect("file"), block(512, 2));
        assert!(p.check_refcounts());
    }

    #[test]
    fn delete_file_frees_unshared_blocks() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("b", 0, &block(512, 1));
        p.write_block("b", 1, &block(512, 2));
        p.delete_file("b");
        let s = p.stats();
        assert_eq!(s.unique_blocks, 1, "shared block survives, private freed");
        assert!(p.check_refcounts());
    }

    #[test]
    fn snapshot_preserves_deleted_file_blocks() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 5));
        p.snapshot("s1");
        p.delete_file("a");
        assert_eq!(p.stats().unique_blocks, 1, "snapshot holds the block");
        p.destroy_snapshot("s1");
        assert_eq!(p.stats().unique_blocks, 0);
        assert!(p.check_refcounts());
    }

    #[test]
    fn snapshot_tags_ordered_and_unique() {
        let mut p = pool(512);
        p.snapshot("one");
        p.snapshot("two");
        assert_eq!(p.snapshot_tags(), vec!["one", "two"]);
        assert_eq!(p.latest_snapshot(), Some("two"));
        assert!(p.has_snapshot("one"));
        assert!(!p.destroy_snapshot("absent"));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot tag")]
    fn duplicate_snapshot_panics() {
        let mut p = pool(512);
        p.snapshot("x");
        p.snapshot("x");
    }

    #[test]
    fn purge_file_frees_snapshot_pinned_blocks() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("b", 0, &block(512, 1)); // shared with "a"
        p.write_block("b", 1, &block(512, 2)); // private to "b"
        p.snapshot("s1");
        p.snapshot("s2");
        assert!(p.purge_file("b"));
        assert!(!p.has_file("b"));
        for tag in ["s1", "s2"] {
            assert_eq!(
                p.snapshot_file_names(tag).expect("snapshot"),
                vec!["a"],
                "{tag} must forget the purged file"
            );
        }
        let s = p.stats();
        assert_eq!(s.unique_blocks, 1, "shared block survives, private freed");
        assert!(p.check_refcounts());
        assert!(!p.purge_file("b"), "second purge is a no-op");
        assert!(!p.purge_file("never-existed"));
    }

    #[test]
    fn quota_excess_reports_pressure_per_axis() {
        let mut p = pool(512);
        p.create_file("a");
        for i in 0..4u64 {
            p.write_block("a", i, &block(512, i as u8 + 1));
        }
        let s = p.stats();
        assert_eq!(p.ddt_memory_bytes(), s.ddt_memory_bytes);
        assert_eq!(p.ddt_memory_bytes(), 4 * 120);
        // Unlimited (the default): never over.
        assert!(p.within_quota());
        assert!(p.quota_excess().is_zero());
        // Budget exactly equal to the footprint: still within.
        let mut exact = ZPool::new(
            PoolConfig::new(512, Codec::Lzjb)
                .with_quotas(s.total_disk_bytes(), s.ddt_memory_bytes),
        );
        exact.create_file("a");
        for i in 0..4u64 {
            exact.write_block("a", i, &block(512, i as u8 + 1));
        }
        assert!(exact.within_quota(), "quota == footprint is not over-budget");
        // Starved on both axes: excess is the shortfall, per axis.
        let mut starved = ZPool::new(
            PoolConfig::new(512, Codec::Lzjb)
                .with_quotas(s.total_disk_bytes() - 10, s.ddt_memory_bytes - 100),
        );
        starved.create_file("a");
        for i in 0..4u64 {
            starved.write_block("a", i, &block(512, i as u8 + 1));
        }
        let excess = starved.quota_excess();
        assert_eq!(excess.disk_bytes, 10);
        assert_eq!(excess.ddt_mem_bytes, 100);
        assert!(!starved.within_quota());
        // Back under budget once the file is purged.
        assert!(starved.purge_file("a"));
        assert!(starved.within_quota());
    }

    #[test]
    fn space_gauges_publish_current_footprint() {
        let registry = squirrel_obs::MetricsRegistry::new();
        let mut p = pool(512);
        p.set_metrics(&registry.handle());
        p.create_file("a");
        p.write_block("a", 0, &block(512, 3));
        p.publish_space_gauges(&registry.handle());
        let snap = registry.snapshot();
        let s = p.stats();
        assert_eq!(snap.gauge_u64("zpool_disk_bytes"), Some(s.total_disk_bytes()));
        assert_eq!(snap.gauge_u64("zpool_ddt_entries"), Some(1));
        assert_eq!(snap.gauge_u64("zpool_ddt_mem_bytes"), Some(120));
    }

    #[test]
    fn import_file_sets_logical_len() {
        let mut p = pool(512);
        let blocks = vec![block(512, 1), block(512, 2)];
        p.import_file("img", blocks.into_iter(), 900);
        assert_eq!(p.file_len("img"), Some(900));
        assert_eq!(p.read_block("img", 1).expect("file"), block(512, 2));
    }

    #[test]
    fn block_refs_expose_physical_layout() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("a", 1, &block(512, 0)); // hole
        p.write_block("a", 2, &block(512, 2));
        let refs = p.block_refs("a").expect("file");
        assert_eq!(refs.len(), 3);
        assert!(refs[0].is_some());
        assert!(refs[1].is_none());
        let (r0, r2) = (refs[0].expect("ref"), refs[2].expect("ref"));
        assert!(r2.phys >= r0.phys + r0.psize as u64, "arrival-order allocation");
    }

    #[test]
    fn compression_shrinks_physical() {
        let mut p = ZPool::new(PoolConfig::new(4096, Codec::Gzip(6)));
        p.create_file("a");
        let compressible: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(4096).collect();
        p.write_block("a", 0, &compressible);
        let s = p.stats();
        assert!(s.physical_bytes < 2048, "{}", s.physical_bytes);
    }

    #[test]
    fn accounting_only_pool_tracks_sizes_without_data() {
        let mut p = ZPool::new(PoolConfig::new(512, Codec::Lzjb).accounting_only());
        p.create_file("a");
        p.write_block("a", 0, &block(512, 3));
        assert!(p.stats().physical_bytes > 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.read_block("a", 0)));
        assert!(r.is_err(), "reading an accounting-only pool must panic");
    }

    #[test]
    fn create_file_replaces_existing() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.create_file("a");
        assert_eq!(p.file_len("a"), Some(0));
        assert_eq!(p.stats().unique_blocks, 0);
    }

    #[test]
    fn stats_bp_overhead_counts_live_and_snapshot_pointers() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        let before = p.stats().bp_disk_bytes;
        p.snapshot("s");
        let after = p.stats().bp_disk_bytes;
        assert_eq!(after, before * 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use squirrel_compress::Codec;

    #[derive(Debug, Clone)]
    enum Op {
        Write { file: u8, idx: u8, fill: u8 },
        Delete { file: u8 },
        Snapshot,
        DestroyOldestSnapshot,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..3, 0u8..8, any::<u8>()).prop_map(|(file, idx, fill)| Op::Write { file, idx, fill }),
            (0u8..3).prop_map(|file| Op::Delete { file }),
            Just(Op::Snapshot),
            Just(Op::DestroyOldestSnapshot),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn refcounts_always_consistent(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut p = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
            let mut snap_seq = 0u32;
            for f in 0..3 {
                p.create_file(&format!("f{f}"));
            }
            for op in ops {
                match op {
                    Op::Write { file, idx, fill } => {
                        p.write_block(&format!("f{file}"), idx as u64, &vec![fill; 512]);
                    }
                    Op::Delete { file } => {
                        let name = format!("f{file}");
                        p.delete_file(&name);
                        p.create_file(&name);
                    }
                    Op::Snapshot => {
                        p.snapshot(&format!("s{snap_seq}"));
                        snap_seq += 1;
                    }
                    Op::DestroyOldestSnapshot => {
                        if let Some(tag) = p.snapshot_tags().first().map(|s| s.to_string()) {
                            p.destroy_snapshot(&tag);
                        }
                    }
                }
                prop_assert!(p.check_refcounts());
            }
        }

        #[test]
        fn read_back_matches_last_write(
            writes in proptest::collection::vec((0u8..6, any::<u8>()), 1..40)
        ) {
            let mut p = ZPool::new(PoolConfig::new(512, Codec::Lz4));
            p.create_file("f");
            let mut model: std::collections::HashMap<u8, u8> = Default::default();
            for (idx, fill) in writes {
                p.write_block("f", idx as u64, &vec![fill; 512]);
                model.insert(idx, fill);
            }
            for (idx, fill) in model {
                prop_assert_eq!(p.read_block("f", idx as u64).expect("file"), vec![fill; 512]);
            }
        }
    }
}
