//! Atom identity and byte synthesis.
//!
//! An *atom* is the 512-byte unit of content identity: two image regions
//! referencing the same [`AtomGroup`] and index hold identical bytes. Groups
//! model where VM image content actually comes from:
//!
//! * [`AtomGroup::Base`] — a distro release's boot working set. Consecutive
//!   releases inherit a fraction of their base atoms from the previous
//!   release, so e.g. Ubuntu 12.04 and 12.10 caches are similar but not
//!   identical.
//! * [`AtomGroup::Common`] — bits shared across all Linux families
//!   (bootloaders, firmware blobs, POSIX userland fragments).
//! * [`AtomGroup::Lib`] — a family-wide library pool (the distro's package
//!   base that most images of that family carry).
//! * [`AtomGroup::Pkg`] — a globally shared software package, Zipf-popular
//!   across images.
//! * [`AtomGroup::Unique`] — image-private content (user data, logs, build
//!   artifacts, mutated segments).

use crate::census::OsFamily;
use crate::dict::{Dictionary, WORD_PROB};
use crate::rng::SplitMix64;

/// Content-identity unit, in bytes.
pub const ATOM_SIZE: usize = 512;

/// Fraction of base atoms a release inherits from its predecessor.
const RELEASE_INHERIT: f64 = 0.62;
/// Fraction of base atoms that are common across all Linux families.
const COMMON_LINUX: f64 = 0.06;

/// Where an atom's bytes come from (its identity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomGroup {
    /// Boot working set of (family, release).
    Base { family: OsFamily, release: u32 },
    /// Cross-family shared Linux content.
    Common,
    /// Family-wide library pool.
    Lib { family: OsFamily },
    /// Globally shared software package pool.
    Pkg,
    /// A shared boot-working-set variant: the k-th popular modification of
    /// a release's boot content (kernel update, common tweak). The pool is
    /// finite, so late images mostly reuse existing variants — the source
    /// of the saturating memory curves in the paper's Figures 16–17.
    Variant { family: OsFamily, release: u32, variant: u32 },
    /// Private to one image; `stream` separates independent unique ranges.
    Unique { image: u32, stream: u32 },
}

impl AtomGroup {
    /// Stable 64-bit identity used for seeding byte synthesis.
    fn seed_word(&self) -> u64 {
        match *self {
            AtomGroup::Base { family, release } => {
                0x01_0000 | ((family as u64) << 8) | release as u64
            }
            AtomGroup::Common => 0x02_0000,
            AtomGroup::Lib { family } => 0x03_0000 | family as u64,
            AtomGroup::Pkg => 0x04_0000,
            AtomGroup::Variant { family, release, variant } => {
                0x06_0000_0000
                    | ((family as u64) << 24)
                    | ((release as u64) << 16)
                    | variant as u64
            }
            AtomGroup::Unique { image, stream } => {
                0x05_0000_0000 | ((image as u64) << 12) | stream as u64
            }
        }
    }
}

/// Inheritance granularity, in atoms (64 KiB). Release-to-release changes
/// happen at file/extent granularity, not per 512-byte atom — whole segments
/// inherit or diverge together, so blocks up to the segment size survive
/// intact across releases and deduplicate.
pub const INHERIT_SEGMENT_ATOMS: u64 = 128;

/// Resolve release inheritance: a `Base` atom may actually be the previous
/// release's atom (chains allowed), or cross-family common content. The walk
/// is deterministic per (family, release, segment), where a segment is
/// [`INHERIT_SEGMENT_ATOMS`] consecutive atoms.
#[inline]
pub fn resolve_atom(group: AtomGroup, idx: u64) -> (AtomGroup, u64) {
    match group {
        AtomGroup::Base { family, mut release } => {
            let seg = idx / INHERIT_SEGMENT_ATOMS;
            let mut coin = SplitMix64::from_parts(&[0xba5e, family as u64, seg]);
            // The cross-family pool is Linux userland; Windows shares none
            // of it (its releases still dedup among themselves).
            if family != OsFamily::Windows && coin.chance(COMMON_LINUX) {
                return (AtomGroup::Common, idx);
            }
            // Each release keeps `RELEASE_INHERIT` of the previous one's
            // segments; the per-step coin depends on (family, release, seg)
            // so different release pairs diverge at different segments.
            while release > 0 {
                let mut step =
                    SplitMix64::from_parts(&[0x1e4e, family as u64, release as u64, seg]);
                if step.chance(RELEASE_INHERIT) {
                    release -= 1;
                } else {
                    break;
                }
            }
            (AtomGroup::Base { family, release }, idx)
        }
        other => (other, idx),
    }
}

/// Probability that a word token repeats one of the last few words instead
/// of drawing a fresh one. Real file content (identifiers in binaries,
/// keys in config files) repeats locally, which is what lets gzip find
/// matches even inside 1 KiB blocks.
const LOCAL_REPEAT: f64 = 0.6;

/// Synthesize atom bytes into `out` (must be `ATOM_SIZE` long).
///
/// Texture: dictionary words (corpus-wide, compressible) interleaved with
/// random filler, with heavy *local* word repetition, all driven by a
/// SplitMix64 seeded from the atom identity.
pub fn fill_atom(dict: &Dictionary, corpus_seed: u64, group: AtomGroup, idx: u64, out: &mut [u8]) {
    debug_assert_eq!(out.len(), ATOM_SIZE);
    let (group, idx) = resolve_atom(group, idx);
    let mut rng = SplitMix64::from_parts(&[corpus_seed, group.seed_word(), idx]);
    let mut recent = [0usize; 8];
    let mut n_recent = 0usize;
    let mut cursor = 0usize;
    let mut pos = 0usize;
    while pos < ATOM_SIZE {
        if rng.chance(WORD_PROB) {
            let widx = if n_recent > 0 && rng.chance(LOCAL_REPEAT) {
                recent[rng.below(n_recent as u64) as usize]
            } else {
                let i = dict.skewed_index(&mut rng);
                recent[cursor] = i;
                cursor = (cursor + 1) % recent.len();
                n_recent = (n_recent + 1).min(recent.len());
                i
            };
            let w = dict.word(widx);
            let take = w.len().min(ATOM_SIZE - pos);
            out[pos..pos + take].copy_from_slice(&w[..take]);
            pos += take;
        } else {
            // 4–8 bytes of incompressible filler.
            let n = rng.range(4, 9) as usize;
            let r = rng.next_u64().to_le_bytes();
            let take = n.min(ATOM_SIZE - pos);
            out[pos..pos + take].copy_from_slice(&r[..take]);
            pos += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(group: AtomGroup, idx: u64) -> Vec<u8> {
        let dict = Dictionary::new(77);
        let mut buf = vec![0u8; ATOM_SIZE];
        fill_atom(&dict, 77, group, idx, &mut buf);
        buf
    }

    #[test]
    fn atoms_are_deterministic() {
        let g = AtomGroup::Lib { family: OsFamily::Ubuntu };
        assert_eq!(atom(g, 5), atom(g, 5));
        assert_ne!(atom(g, 5), atom(g, 6));
    }

    #[test]
    fn groups_produce_distinct_content() {
        let a = atom(AtomGroup::Common, 1);
        let b = atom(AtomGroup::Pkg, 1);
        let c = atom(AtomGroup::Unique { image: 3, stream: 0 }, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn release_inheritance_creates_overlap() {
        // Consecutive Ubuntu releases share many base atoms; distant ones
        // share fewer but still some.
        let f = OsFamily::Ubuntu;
        // Sample enough atoms to cover many inheritance segments.
        let n = 200 * INHERIT_SEGMENT_ATOMS;
        let share = |r1: u32, r2: u32| {
            let mut same = 0;
            for idx in 0..n {
                let a = resolve_atom(AtomGroup::Base { family: f, release: r1 }, idx);
                let b = resolve_atom(AtomGroup::Base { family: f, release: r2 }, idx);
                if a == b {
                    same += 1;
                }
            }
            same as f64 / n as f64
        };
        let adjacent = share(4, 5);
        let distant = share(0, 7);
        assert!(adjacent > 0.45, "adjacent {adjacent}");
        assert!(distant < adjacent, "distant {distant} vs adjacent {adjacent}");
        assert!(share(3, 3) == 1.0);
    }

    #[test]
    fn families_do_not_share_base_except_common() {
        let n = 200 * INHERIT_SEGMENT_ATOMS;
        let mut same = 0u64;
        for idx in 0..n {
            let a = resolve_atom(AtomGroup::Base { family: OsFamily::Ubuntu, release: 0 }, idx);
            let b = resolve_atom(AtomGroup::Base { family: OsFamily::Debian, release: 0 }, idx);
            if a == b {
                same += 1;
            }
        }
        // Sharing only happens where both resolve to Common (~6% each).
        assert!((same as f64) < 0.03 * n as f64, "same {same}/{n}");
    }

    #[test]
    fn atom_bytes_are_compressible_but_not_trivial() {
        // Rough entropy probe: distinct byte count should be broad (mixed
        // texture), and repeated dictionary words make long-range repeats.
        let a = atom(AtomGroup::Common, 9);
        let distinct = a.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 60, "distinct {distinct}");
    }

    #[test]
    fn unique_streams_are_independent() {
        let a = atom(AtomGroup::Unique { image: 1, stream: 0 }, 0);
        let b = atom(AtomGroup::Unique { image: 1, stream: 1 }, 0);
        let c = atom(AtomGroup::Unique { image: 2, stream: 0 }, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
