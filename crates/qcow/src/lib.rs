//! Copy-on-write images and copy-on-read caches — the VMI chaining layer of
//! the paper's Figure 1.
//!
//! Three pieces compose a boot chain:
//!
//! * [`VirtualDisk`] — the read interface every layer speaks.
//! * [`CowImage`] — a QCOW2-like copy-on-write overlay: writes allocate
//!   cluster-granular private copies; reads of unallocated clusters pass to
//!   the backing layer as *whole-cluster* requests. That over-fetch is the
//!   mechanism behind the paper's observation (Section 4.2.3) that warm
//!   caches boot ~16% faster than local images: the host page cache keeps
//!   the surplus sectors, which belong to the boot working set anyway.
//! * [`CorCache`] — a copy-on-read cache: block-granular, populated on
//!   first access (the cold-cache path of Figure 1), serving locally from
//!   then on (warm). Squirrel stores these per-VMI caches in its cVolumes.
//!
//! Every layer can record the request log it *issues downward*, which the
//! boot simulator turns into seek/transfer timings.

mod cor;
mod cow;
mod disk;

pub use cor::CorCache;
pub use cow::CowImage;
pub use disk::{MemDisk, ReadLog, SharedDisk, VirtualDisk, ZeroDisk};

/// Errors from the fallible image-layer constructors and installers
/// ([`CorCache::try_new`], [`CorCache::try_prepopulate`],
/// [`CowImage::try_with_cluster_size`]). The panicking variants treat these
/// as caller bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// A block/cluster size that is not a power of two of at least 512 bytes.
    BadGranule { bytes: usize },
    /// Prepopulated data whose length is not exactly one block.
    BadBlockLength { expected: usize, got: usize },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadGranule { bytes } => {
                write!(f, "granule of {bytes} bytes is not a power of two >= 512")
            }
            ImageError::BadBlockLength { expected, got } => {
                write!(f, "expected a {expected}-byte block, got {got} bytes")
            }
        }
    }
}

impl std::error::Error for ImageError {}
