//! Nelder–Mead downhill simplex minimizer (derivative-free), used for the
//! nonlinear MMF and Hoerl fits.

/// Termination and step controls.
#[derive(Clone, Copy, Debug)]
pub struct NelderMeadOptions {
    pub max_iters: usize,
    /// Stop when the simplex's value spread falls below this.
    pub tolerance: f64,
    /// Initial simplex edge as a fraction of each coordinate (absolute step
    /// for near-zero coordinates).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions { max_iters: 2000, tolerance: 1e-10, initial_step: 0.25 }
    }
}

/// Minimize `f` from `start`; returns the best point and its value.
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    start: &[f64],
    opts: NelderMeadOptions,
) -> (Vec<f64>, f64) {
    let n = start.len();
    assert!(n >= 1);
    // Standard coefficients.
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(start.to_vec());
    for i in 0..n {
        let mut p = start.to_vec();
        let step = if p[i].abs() > 1e-9 { p[i] * opts.initial_step } else { opts.initial_step };
        p[i] += step;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex.iter().map(|p| f(p)).collect();

    for _ in 0..opts.max_iters {
        // Order simplex by value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN objective"));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        if (values[worst] - values[best]).abs() <= opts.tolerance * (1.0 + values[best].abs()) {
            // Value spread converged; stop only if the simplex is also
            // geometrically small, otherwise shrink and keep going (a
            // simplex straddling the minimum symmetrically has equal values
            // at every vertex while being arbitrarily wide).
            let diameter: f64 = simplex
                .iter()
                .flat_map(|p| p.iter().zip(&simplex[best]).map(|(&a, &b)| (a - b).abs()))
                .fold(0.0, f64::max);
            let scale = simplex[best].iter().fold(1.0f64, |m, &x| m.max(x.abs()));
            if diameter <= 1e-8 * scale {
                break;
            }
            let best_point = simplex[best].clone();
            for i in 0..=n {
                if i == best {
                    continue;
                }
                for (x, &b) in simplex[i].iter_mut().zip(&best_point) {
                    *x = b + SIGMA * (*x - b);
                }
                values[i] = f(&simplex[i]);
            }
            continue;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for &i in order.iter().take(n) {
            for (c, &x) in centroid.iter_mut().zip(&simplex[i]) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= n as f64;
        }

        let point = |coef: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(&c, &w)| c + coef * (c - w))
                .collect()
        };

        let reflected = point(ALPHA);
        let fr = f(&reflected);
        if fr < values[best] {
            let expanded = point(GAMMA);
            let fe = f(&expanded);
            if fe < fr {
                simplex[worst] = expanded;
                values[worst] = fe;
            } else {
                simplex[worst] = reflected;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = fr;
        } else {
            let contracted = point(-RHO);
            let fc = f(&contracted);
            if fc < values[worst] {
                simplex[worst] = contracted;
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[best].clone();
                for i in 0..=n {
                    if i == best {
                        continue;
                    }
                    for (x, &b) in simplex[i].iter_mut().zip(&best_point) {
                        *x = b + SIGMA * (*x - b);
                    }
                    values[i] = f(&simplex[i]);
                }
            }
        }
    }

    let (best_idx, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN objective"))
        .expect("nonempty simplex");
    (simplex[best_idx].clone(), values[best_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let f = |p: &[f64]| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2);
        let (p, v) = nelder_mead(f, &[0.0, 0.0], NelderMeadOptions::default());
        assert!((p[0] - 3.0).abs() < 1e-4, "{p:?}");
        assert!((p[1] + 1.0).abs() < 1e-4, "{p:?}");
        assert!(v < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock_reasonably() {
        let f = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let (p, v) = nelder_mead(
            f,
            &[-1.2, 1.0],
            NelderMeadOptions { max_iters: 20_000, ..Default::default() },
        );
        assert!(v < 1e-6, "value {v} at {p:?}");
    }

    #[test]
    fn one_dimensional_works() {
        let f = |p: &[f64]| (p[0] - 42.0).powi(2);
        let (p, _) = nelder_mead(f, &[0.0], NelderMeadOptions::default());
        assert!((p[0] - 42.0).abs() < 1e-3);
    }

    #[test]
    fn respects_iteration_budget() {
        let f = |p: &[f64]| p[0].powi(2);
        let opts = NelderMeadOptions { max_iters: 1, tolerance: 0.0, initial_step: 0.25 };
        let (_, v) = nelder_mead(f, &[100.0], opts);
        assert!(v > 0.0, "cannot converge in one iteration");
    }

    #[test]
    fn deterministic() {
        let f = |p: &[f64]| (p[0] - 1.0).powi(2) + (p[1] - 2.0).powi(2) + (p[2] + 3.0).powi(2);
        let a = nelder_mead(f, &[0.0, 0.0, 0.0], NelderMeadOptions::default());
        let b = nelder_mead(f, &[0.0, 0.0, 0.0], NelderMeadOptions::default());
        assert_eq!(a.0, b.0);
    }
}
