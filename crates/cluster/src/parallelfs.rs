//! A glusterfs-like parallel file system over the storage nodes.
//!
//! The paper configures glusterfs with "two levels of striping and two
//! levels of replication" across four storage nodes: a read of `bytes`
//! spreads over the stripe set (good random-access performance over four
//! disks) while each written byte lands on two replicas (tolerating one
//! disk failure per replica group).

use crate::netsim::{NetError, Network, NodeId};

/// Striping/replication shape.
#[derive(Clone, Copy, Debug)]
pub struct GlusterConfig {
    pub stripe: u32,
    pub replicas: u32,
    /// Stripe unit in bytes.
    pub stripe_unit: u64,
}

impl Default for GlusterConfig {
    fn default() -> Self {
        GlusterConfig { stripe: 2, replicas: 2, stripe_unit: 128 * 1024 }
    }
}

/// The parallel FS: a view over the network's storage nodes.
pub struct GlusterVolume {
    config: GlusterConfig,
    bricks: Vec<NodeId>,
}

impl GlusterVolume {
    /// Build over the given brick nodes; needs `stripe × replicas` bricks.
    pub fn new(config: GlusterConfig, bricks: Vec<NodeId>) -> Self {
        assert_eq!(
            bricks.len() as u32,
            config.stripe * config.replicas,
            "brick count must equal stripe x replicas"
        );
        GlusterVolume { config, bricks }
    }

    /// Bricks serving stripe `s` (one per replica).
    fn stripe_bricks(&self, s: u32) -> impl Iterator<Item = NodeId> + '_ {
        let stripe = self.config.stripe;
        self.bricks
            .iter()
            .copied()
            .enumerate()
            .filter(move |(i, _)| (*i as u32) % stripe == s)
            .map(|(_, n)| n)
    }

    /// Serve a client read of `bytes` at `offset` for `client`: each
    /// stripe's primary replica sends its share over the network. Returns
    /// the transfer seconds of the slowest stripe (they proceed in
    /// parallel). Panics when a stripe has no reachable replica — see
    /// [`try_read`](Self::try_read).
    #[deprecated(note = "panics behind a partition; use try_read")]
    pub fn read(&self, net: &mut Network, client: NodeId, offset: u64, bytes: u64) -> f64 {
        self.try_read(net, client, offset, bytes)
            .expect("every stripe has a reachable replica")
    }

    /// Fallible [`read`](Self::read) with replica failover: each stripe is
    /// served by its first replica reachable from `client` (the primary on
    /// a healthy network, so ledgers are unchanged there). Only when *every*
    /// replica of a stripe is behind a partition does the read fail — and it
    /// fails before any byte is charged.
    pub fn try_read(
        &self,
        net: &mut Network,
        client: NodeId,
        offset: u64,
        bytes: u64,
    ) -> Result<f64, NetError> {
        let mut per_stripe = vec![0u64; self.config.stripe as usize];
        let unit = self.config.stripe_unit;
        let mut pos = offset;
        let end = offset + bytes;
        while pos < end {
            let chunk_end = ((pos / unit) + 1) * unit;
            let take = chunk_end.min(end) - pos;
            let stripe = ((pos / unit) % self.config.stripe as u64) as usize;
            per_stripe[stripe] += take;
            pos += take;
        }
        // Pick every stripe's serving replica first, so a dead stripe
        // leaves the ledgers untouched.
        let mut serving = Vec::new();
        for (s, &b) in per_stripe.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let primary = self.stripe_bricks(s as u32).next().expect("stripe has bricks");
            let brick = self
                .stripe_bricks(s as u32)
                .find(|&br| net.is_reachable(br, client))
                .ok_or(NetError::Partitioned { src: primary, dst: client })?;
            serving.push((brick, b));
        }
        let mut slowest = 0.0f64;
        for (brick, b) in serving {
            let report = net.try_unicast(brick, client, b)?;
            slowest = slowest.max(report.seconds);
        }
        Ok(slowest)
    }

    /// Serve a client write: every byte goes to all replicas of its stripe.
    /// Panics when a stripe loses every replica — see
    /// [`try_write`](Self::try_write).
    #[deprecated(note = "panics behind a partition; use try_write")]
    pub fn write(&self, net: &mut Network, client: NodeId, offset: u64, bytes: u64) -> f64 {
        self.try_write(net, client, offset, bytes)
            .expect("every stripe has a reachable replica")
    }

    /// Fallible write with replica failover: every byte goes to each
    /// *reachable* replica of its stripe (a replica behind a partition is
    /// skipped and heals later via replication repair, like a real gluster
    /// self-heal). Only when a stripe has *no* reachable replica does the
    /// write fail, and it fails before any byte is charged.
    pub fn try_write(
        &self,
        net: &mut Network,
        client: NodeId,
        offset: u64,
        bytes: u64,
    ) -> Result<f64, NetError> {
        let unit = self.config.stripe_unit;
        let mut per_stripe = vec![0u64; self.config.stripe as usize];
        let mut pos = offset;
        let end = offset + bytes;
        while pos < end {
            let chunk_end = ((pos / unit) + 1) * unit;
            let take = chunk_end.min(end) - pos;
            let stripe = ((pos / unit) % self.config.stripe as u64) as usize;
            per_stripe[stripe] += take;
            pos += take;
        }
        // Validate every stripe first so total loss charges nothing.
        let mut serving: Vec<(Vec<NodeId>, u64)> = Vec::new();
        for (s, &b) in per_stripe.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let primary = self.stripe_bricks(s as u32).next().expect("stripe has bricks");
            let reachable: Vec<NodeId> = self
                .stripe_bricks(s as u32)
                .filter(|&br| net.is_reachable(client, br))
                .collect();
            if reachable.is_empty() {
                return Err(NetError::Partitioned { src: client, dst: primary });
            }
            serving.push((reachable, b));
        }
        let mut slowest = 0.0f64;
        for (bricks, b) in serving {
            for brick in bricks {
                let secs = net
                    .try_unicast(client, brick, b)
                    .expect("reachability was checked")
                    .seconds;
                slowest = slowest.max(secs);
            }
        }
        Ok(slowest)
    }

    pub fn bricks(&self) -> &[NodeId] {
        &self.bricks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::LinkKind;

    fn setup() -> (Network, GlusterVolume) {
        // 2 compute (0,1) + 4 storage (2..6).
        let net = Network::new(LinkKind::GbE, 2, 4);
        let vol = GlusterVolume::new(GlusterConfig::default(), vec![2, 3, 4, 5]);
        (net, vol)
    }

    #[test]
    #[should_panic(expected = "brick count")]
    fn wrong_brick_count_panics() {
        GlusterVolume::new(GlusterConfig::default(), vec![2, 3, 4]);
    }

    #[test]
    fn read_spreads_across_stripes() {
        let (mut net, vol) = setup();
        // 512 KiB = 4 stripe units, alternating stripe 0/1.
        vol.try_read(&mut net, 0, 0, 512 * 1024).unwrap();
        let s0: u64 = net.ledger(2).tx_bytes;
        let s1: u64 = net.ledger(3).tx_bytes;
        assert_eq!(s0 + s1, 512 * 1024);
        assert_eq!(s0, s1, "even split across stripes");
        assert_eq!(net.ledger(0).rx_bytes, 512 * 1024, "client receives all");
    }

    #[test]
    fn write_replicates() {
        let (mut net, vol) = setup();
        vol.try_write(&mut net, 1, 0, 256 * 1024).unwrap();
        let total_storage_rx: u64 = (2..6).map(|n| net.ledger(n).rx_bytes).sum();
        assert_eq!(total_storage_rx, 2 * 256 * 1024, "two replicas per byte");
        assert_eq!(net.ledger(1).tx_bytes, 2 * 256 * 1024);
    }

    #[test]
    fn write_fails_over_to_reachable_replicas() {
        let (mut net, vol) = setup();
        // Stripe 0's bricks are 2 and 4; cut the primary only.
        net.partition(1, 2);
        vol.try_write(&mut net, 1, 0, 128 * 1024).unwrap();
        assert_eq!(net.ledger(2).rx_bytes, 0, "partitioned replica skipped");
        assert_eq!(net.ledger(4).rx_bytes, 128 * 1024, "surviving replica written");
        net.heal(1, 2);
    }

    #[test]
    fn write_with_no_reachable_replica_is_an_error_and_charges_nothing() {
        let (mut net, vol) = setup();
        // Stripe 0 = bricks {2, 4}; kill both. Stripe 1 stays healthy, but
        // the write must fail atomically without charging it.
        net.partition(1, 2);
        net.partition(1, 4);
        let before: u64 = (2..6).map(|n| net.ledger(n).rx_bytes).sum();
        assert_eq!(
            vol.try_write(&mut net, 1, 0, 512 * 1024),
            Err(NetError::Partitioned { src: 1, dst: 2 })
        );
        let after: u64 = (2..6).map(|n| net.ledger(n).rx_bytes).sum();
        assert_eq!(before, after, "failed write charges nothing");
        net.heal_all();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work_on_a_healthy_network() {
        let (mut net, vol) = setup();
        vol.write(&mut net, 1, 0, 4096);
        vol.read(&mut net, 0, 0, 4096);
        assert_eq!(net.ledger(0).rx_bytes, 4096);
    }

    #[test]
    fn unaligned_read_accounts_exact_bytes() {
        let (mut net, vol) = setup();
        vol.try_read(&mut net, 0, 100, 1000).unwrap();
        assert_eq!(net.ledger(0).rx_bytes, 1000);
    }

    #[test]
    fn parallel_stripes_faster_than_serial() {
        let (mut net, vol) = setup();
        let t = vol.try_read(&mut net, 0, 0, 1 << 20).unwrap();
        let serial = (1u64 << 20) as f64 / (LinkKind::GbE.mbps() * 1e6);
        assert!(t < serial, "striped read {t} vs serial {serial}");
    }
}
