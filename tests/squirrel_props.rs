//! Property-based integration tests: random operation sequences against the
//! whole Squirrel system must preserve its replication and accounting
//! invariants.

use proptest::prelude::*;
use squirrel_repro::core::{Squirrel, SquirrelConfig, SquirrelError};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Register(u32),
    Deregister(u32),
    Boot { node: u32, image: u32 },
    Offline(u32),
    Rejoin(u32),
    AdvanceDays(u64),
    Gc,
}

fn op_strategy(images: u32, nodes: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..images).prop_map(Op::Register),
        1 => (0..images).prop_map(Op::Deregister),
        2 => (0..nodes, 0..images).prop_map(|(node, image)| Op::Boot { node, image }),
        1 => (0..nodes).prop_map(Op::Offline),
        1 => (0..nodes).prop_map(Op::Rejoin),
        1 => (1u64..12).prop_map(Op::AdvanceDays),
        1 => Just(Op::Gc),
    ]
}

const IMAGES: u32 = 8;
const NODES: u32 = 3;

fn fresh_system() -> Squirrel {
    // One shared corpus per test process would be faster, but a fresh one
    // keeps cases independent; the test scale keeps this cheap.
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: IMAGES,
        scale: 8192,
        ..CorpusConfig::azure(8192, 1234)
    }));
    Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(NODES)
            .block_size(16 * 1024)
            .gc_window_days(5)
            .build(),
        corpus,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any op sequence, rejoining every node must restore full
    /// replication, and operations must never violate their contracts.
    #[test]
    fn replication_restored_after_any_history(
        ops in proptest::collection::vec(op_strategy(IMAGES, NODES), 1..30)
    ) {
        let mut sq = fresh_system();
        for op in ops {
            match op {
                Op::Register(i) => match sq.register(i) {
                    Ok(r) => prop_assert!(r.cache_bytes > 0),
                    Err(SquirrelError::AlreadyRegistered(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("register: {e}"))),
                },
                Op::Deregister(i) => match sq.deregister(i) {
                    Ok(()) | Err(SquirrelError::NotRegistered(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("deregister: {e}"))),
                },
                Op::Boot { node, image } => match sq.boot(node, image) {
                    Ok(out) => {
                        // A warm boot never touches the network.
                        if out.warm {
                            prop_assert_eq!(out.net_bytes, 0);
                        }
                        prop_assert!(out.report.total_seconds > 0.0);
                    }
                    Err(SquirrelError::NodeOffline(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("boot: {e}"))),
                },
                Op::Offline(n) => {
                    sq.node_offline(n).expect("valid node");
                }
                Op::Rejoin(n) => {
                    sq.node_rejoin(n).expect("rejoin never fails for valid nodes");
                }
                Op::AdvanceDays(d) => sq.advance_days(d),
                Op::Gc => {
                    let _ = sq.gc();
                }
            }
        }
        // Bring everyone back: full consistency must be reachable.
        for n in 0..NODES {
            sq.node_rejoin(n).expect("final rejoin");
        }
        prop_assert!(
            sq.check_replication().is_consistent(),
            "replication must be restorable"
        );
    }

    /// Registered images always warm-boot on online, in-sync nodes.
    #[test]
    fn registered_images_boot_warm(
        regs in proptest::collection::btree_set(0u32..IMAGES, 1..5),
        node in 0u32..NODES,
    ) {
        let mut sq = fresh_system();
        for &i in &regs {
            sq.register(i).expect("register");
        }
        for &i in &regs {
            let out = sq.boot(node, i).expect("boot");
            prop_assert!(out.warm, "image {i} should be hoarded");
            prop_assert_eq!(out.net_bytes, 0);
        }
    }
}
