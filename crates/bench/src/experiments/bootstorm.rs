//! Boot-storm bench: M VMs boot one image concurrently, served zero-copy
//! from the hoarded ccVolumes through the shard-locked ARC
//! (`Squirrel::boot_storm`).
//!
//! For each worker-thread count the experiment registers the image on a
//! fresh system, replays the storm `repeat` times (wall-clock floor, robust
//! to scheduler noise), and records aggregate read throughput, the per-boot
//! simulated-latency histogram (`squirrel_boot_storm_seconds_ms`), and the
//! copies-avoided counters. The run aborts if any thread count produces a
//! different read checksum, byte count, or latency histogram — the
//! determinism contract is part of what this bench verifies.
//!
//! Results land in `results/BENCH_bootstorm.json`. Thread speedup is
//! hardware-dependent: a single-core container shows ~1.0x while the
//! checksum equality still proves the parallel path ran correctly.

use crate::config::ExperimentConfig;
use crate::csvout::fmt_f;
use squirrel_core::{BootStormReport, Squirrel, SquirrelConfig};
use squirrel_obs::HistogramSnapshot;

/// One thread count's measurement.
#[derive(Clone, Debug)]
pub struct StormRun {
    pub threads: usize,
    /// Best-of-`repeat` wall seconds for one whole storm.
    pub wall_secs: f64,
    /// Payload megabytes served per wall second (aggregate over all VMs).
    pub mb_per_sec: f64,
    /// ARC hits: payload copies (and decompressions) the shared read path
    /// avoided, per storm.
    pub copies_avoided: u64,
    pub arc_hit_rate: f64,
    /// `arc_bytes_copied_total` on the ccVolume series — must stay zero.
    pub payload_bytes_copied: u64,
    /// Per-boot simulated latency histogram, in milliseconds.
    pub latency_ms: HistogramSnapshot,
    pub report: BootStormReport,
}

/// Default storm shape: 16 VMs over 4 compute nodes.
pub const STORM_VMS: u32 = 16;
pub const STORM_NODES: u32 = 4;

/// Thread counts to sweep: always 1/2/8, plus the `--threads` override when
/// it names a count not already in the sweep.
pub fn thread_sweep(cfg: &ExperimentConfig) -> Vec<usize> {
    let mut sweep = vec![1usize, 2, 8];
    if cfg.threads != 0 && !sweep.contains(&cfg.threads) {
        sweep.push(cfg.threads);
    }
    sweep
}

/// Run the storm at one thread count on a fresh system.
fn storm_at(cfg: &ExperimentConfig, threads: usize, vms: u32, repeat: usize) -> StormRun {
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(STORM_NODES)
            .threads(threads)
            .build(),
        cfg.corpus(),
    );
    sq.register(0).expect("register image 0");

    let mut wall = f64::INFINITY;
    let mut report = None;
    for _ in 0..repeat.max(1) {
        let t = std::time::Instant::now();
        let r = sq.boot_storm(0, vms).expect("boot storm");
        wall = wall.min(t.elapsed().as_secs_f64());
        if let Some(prev) = &report {
            let prev: &BootStormReport = prev;
            assert_eq!(prev.read_checksum, r.read_checksum, "storm repeat diverged");
        }
        report = Some(r);
    }
    let report = report.expect("at least one repeat");

    let snap = sq.metrics().snapshot();
    let copied = snap
        .counter("arc_bytes_copied_total{pool=\"ccvol\"}")
        .unwrap_or(0);
    let latency = snap
        .histogram("squirrel_boot_storm_seconds_ms")
        .cloned()
        .unwrap_or_default();
    StormRun {
        threads,
        wall_secs: wall,
        mb_per_sec: report.bytes_served as f64 / wall.max(1e-9) / 1e6,
        copies_avoided: report.arc.hits,
        arc_hit_rate: report.arc.hit_rate(),
        payload_bytes_copied: copied,
        latency_ms: latency,
        report,
    }
}

/// Sweep the thread counts, verify determinism across them, and persist
/// `BENCH_bootstorm.json` under the configured output directory.
pub fn run_bootstorm(cfg: &ExperimentConfig, vms: u32, repeat: usize) -> Vec<StormRun> {
    let runs: Vec<StormRun> = thread_sweep(cfg)
        .into_iter()
        .map(|t| storm_at(cfg, t, vms, repeat))
        .collect();

    // The determinism contract, enforced: read bytes, checksum, ARC stats,
    // and the latency histogram are bit-identical at every thread count.
    let first = &runs[0];
    for run in &runs[1..] {
        assert_eq!(
            run.report.read_checksum, first.report.read_checksum,
            "threads={} read different bytes",
            run.threads
        );
        assert_eq!(run.report.bytes_served, first.report.bytes_served);
        assert_eq!(run.report.arc, first.report.arc);
        assert_eq!(run.latency_ms, first.latency_ms, "threads={}", run.threads);
        assert_eq!(run.payload_bytes_copied, 0, "warm storm must not copy payloads");
    }

    for run in &runs {
        println!(
            "bootstorm threads={}: {} VMs, {:.1} MB/s wall, {} copies avoided \
             (hit rate {:.2}), mean simulated boot {:.1} ms",
            run.threads,
            run.report.vms,
            run.mb_per_sec,
            run.copies_avoided,
            run.arc_hit_rate,
            run.latency_ms.mean(),
        );
    }

    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_bootstorm.json");
        std::fs::write(&path, render_json(cfg, vms, &runs)).expect("write BENCH_bootstorm.json");
        println!("bootstorm bench written to {}", path.display());
    }
    runs
}

/// Hand-rolled JSON (the workspace is std-only by policy).
fn render_json(cfg: &ExperimentConfig, vms: u32, runs: &[StormRun]) -> String {
    let t1_wall = runs
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.wall_secs)
        .unwrap_or(runs[0].wall_secs);
    let first = &runs[0];
    let mut entries = Vec::new();
    for r in runs {
        let buckets: Vec<String> = r
            .latency_ms
            .buckets
            .iter()
            .map(|(idx, count)| format!("[{idx}, {count}]"))
            .collect();
        entries.push(format!(
            "    {{\"threads\": {}, \"wall_secs\": {}, \"mb_per_sec\": {}, \
             \"speedup_vs_t1\": {}, \"copies_avoided\": {}, \"arc_hit_rate\": {}, \
             \"payload_bytes_copied\": {}, \"latency_ms_histogram\": \
             {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"log2_buckets\": [{}]}}}}",
            r.threads,
            fmt_f(r.wall_secs),
            fmt_f(r.mb_per_sec),
            fmt_f(t1_wall / r.wall_secs.max(1e-9)),
            r.copies_avoided,
            fmt_f(r.arc_hit_rate),
            r.payload_bytes_copied,
            r.latency_ms.count,
            r.latency_ms.sum,
            fmt_f(r.latency_ms.mean()),
            buckets.join(", "),
        ));
    }
    format!(
        "{{\n  \"images\": {},\n  \"scale\": {},\n  \"seed\": {},\n  \"vms\": {vms},\n  \
         \"nodes\": {STORM_NODES},\n  \"warm_vms\": {},\n  \"cold_vms\": {},\n  \
         \"blocks_per_vm\": {},\n  \"bytes_served_per_storm\": {},\n  \
         \"read_checksum\": \"{}\",\n  \
         \"deterministic_across_threads\": true,\n  \
         \"note\": \"speedup is hardware-dependent; single-core containers show ~1.0x\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        cfg.images,
        cfg.scale,
        cfg.seed,
        first.report.warm_vms,
        first.report.cold_vms,
        first.report.blocks_per_vm,
        first.report.bytes_served,
        first.report.read_checksum,
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_sweep_is_deterministic_and_zero_copy() {
        let cfg = ExperimentConfig::smoke();
        let runs = run_bootstorm(&cfg, 8, 1);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.copies_avoided > 0));
        assert!(runs.iter().all(|r| r.payload_bytes_copied == 0));
        // 8 VMs over 4 nodes = 2 per node: each block misses once and hits
        // once, so the hit rate is exactly one half.
        assert!(runs.iter().all(|r| r.arc_hit_rate >= 0.5));
        assert_eq!(runs[0].latency_ms.count, 8, "one sample per VM");
    }

    #[test]
    fn threads_flag_extends_the_sweep() {
        let cfg = ExperimentConfig { threads: 4, ..ExperimentConfig::smoke() };
        assert_eq!(thread_sweep(&cfg), vec![1, 2, 8, 4]);
        let cfg = ExperimentConfig { threads: 2, ..ExperimentConfig::smoke() };
        assert_eq!(thread_sweep(&cfg), vec![1, 2, 8]);
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let cfg = ExperimentConfig::smoke();
        let runs = run_bootstorm(&cfg, 4, 1);
        let json = render_json(&cfg, 4, &runs);
        for key in [
            "\"mb_per_sec\"",
            "\"latency_ms_histogram\"",
            "\"copies_avoided\"",
            "\"arc_hit_rate\"",
            "\"read_checksum\"",
            "\"speedup_vs_t1\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
