//! Node-churn scenario (paper Section 3.5): compute nodes fail, miss cache
//! registrations, and catch up when they return — incrementally inside the
//! GC window, by full re-replication beyond it.
//!
//! ```text
//! cargo run --release --example node_churn
//! ```

use squirrel_repro::core::{RejoinOutcome, Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn main() {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: 12,
        scale: 4096,
        ..CorpusConfig::azure(4096, 99)
    }));
    let mut sq = Squirrel::new(
        SquirrelConfig::builder().compute_nodes(4).gc_window_days(7).build(),
        Arc::clone(&corpus),
    );

    sq.register(0).expect("register");
    sq.register(1).expect("register");
    println!("day {}: images 0,1 registered on all 4 nodes", sq.today());

    // Node 3 crashes; two more images arrive while it is down.
    sq.node_offline(3).expect("offline");
    sq.advance_days(2);
    sq.register(2).expect("register");
    sq.register(3).expect("register");
    println!(
        "day {}: node 3 offline, images 2,3 registered (node 3 has {} caches, others {})",
        sq.today(),
        sq.ccvol_file_count(3).expect("node"),
        sq.ccvol_file_count(0).expect("node"),
    );

    // Back within the window: incremental catch-up.
    let outcome = sq.node_rejoin(3).expect("rejoin");
    match outcome {
        RejoinOutcome::Incremental { wire_bytes } => {
            println!(
                "day {}: node 3 rejoined with an incremental stream of {} KiB",
                sq.today(),
                wire_bytes >> 10
            );
        }
        other => panic!("expected incremental catch-up, got {other:?}"),
    }
    assert!(sq.check_replication().is_consistent());

    // Node 2 goes down for longer than the GC window.
    sq.node_offline(2).expect("offline");
    sq.advance_days(10);
    sq.register(4).expect("register");
    sq.advance_days(10);
    sq.register(5).expect("register");
    let _ = sq.gc();
    println!(
        "day {}: node 2 was away 20 days; GC collected the old snapshots",
        sq.today()
    );

    let outcome = sq.node_rejoin(2).expect("rejoin");
    match outcome {
        RejoinOutcome::FullReplication { wire_bytes } => {
            println!(
                "node 2 needed a full scVolume replication: {} KiB (still only a few caches' worth)",
                wire_bytes >> 10
            );
        }
        other => panic!("expected full replication, got {other:?}"),
    }
    assert!(sq.check_replication().is_consistent());
    println!("\nall {} nodes consistent with the scVolume again", 4);
}
