//! VMI caches (boot working sets) and boot read traces.
//!
//! A VMI cache holds exactly the bytes a VM reads while booting — in this
//! model, the image's boot working set region. [`CacheView`] exposes the
//! cache as a block stream (for dedup/compression analysis and for storing
//! into cVolumes); [`BootTrace`] generates the sequence of reads a booting
//! kernel issues against the image, which the boot simulator replays and the
//! copy-on-read layer uses to populate cold caches.

use crate::corpus::ImageHandle;
use crate::rng::SplitMix64;

/// One read request of a booting VM: `(offset, len)` in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOp {
    pub offset: u64,
    pub len: u32,
}

/// Block-level view of an image's VMI cache.
#[derive(Clone, Copy)]
pub struct CacheView<'c> {
    image: ImageHandle<'c>,
}

impl<'c> CacheView<'c> {
    pub(crate) fn new(image: ImageHandle<'c>) -> Self {
        CacheView { image }
    }

    /// The image this cache belongs to.
    pub fn image(&self) -> ImageHandle<'c> {
        self.image
    }

    /// Cache size in bytes (the boot working set).
    pub fn bytes(&self) -> u64 {
        self.image.boot_atoms() * crate::atoms::ATOM_SIZE as u64
    }

    /// Number of cache blocks at `block_size`.
    pub fn blocks_count(&self, block_size: usize) -> u64 {
        self.bytes().div_ceil(block_size as u64)
    }

    /// One cache block (cache offsets coincide with image offsets: the boot
    /// working set occupies the head of the address space).
    pub fn block(&self, block_size: usize, idx: u64) -> Vec<u8> {
        debug_assert!(idx < self.blocks_count(block_size));
        let mut buf = vec![0u8; block_size];
        let off = idx * block_size as u64;
        let end = (off + block_size as u64).min(self.bytes());
        self.image.read_at(off, &mut buf[..(end - off) as usize]);
        buf
    }

    /// Iterate all cache blocks (tail zero-padded to a full block).
    pub fn blocks(&self, block_size: usize) -> impl Iterator<Item = Vec<u8>> + '_ {
        (0..self.blocks_count(block_size)).map(move |i| self.block(block_size, i))
    }

    /// Like [`blocks`](Self::blocks), but the final block is truncated to
    /// the working-set length (see `ImageHandle::blocks_trimmed`).
    pub fn blocks_trimmed(&self, block_size: usize) -> impl Iterator<Item = Vec<u8>> + '_ {
        let total = self.bytes();
        (0..self.blocks_count(block_size)).map(move |i| {
            let mut b = self.block(block_size, i);
            let start = i * block_size as u64;
            if start + block_size as u64 > total {
                b.truncate((total - start) as usize);
            }
            b
        })
    }

    /// The boot read trace: the request sequence that touches exactly this
    /// cache's bytes, with the mixed sequential/random pattern of a real
    /// boot (~70% sequential continuation, 4–64 KiB requests).
    pub fn boot_trace(&self) -> BootTrace {
        BootTrace::generate(self)
    }
}

/// A deterministic boot-time read trace over a cache's byte range.
#[derive(Clone, Debug)]
pub struct BootTrace {
    pub ops: Vec<ReadOp>,
}

impl BootTrace {
    fn generate(cache: &CacheView<'_>) -> Self {
        let total = cache.bytes();
        let mut rng = SplitMix64::from_parts(&[0xb007, cache.image.id() as u64]);
        // Cover the working set in "extents" visited in a shuffled order with
        // sequential runs inside each extent — boot reads cluster around
        // files (kernel, initrd, units) but files are scattered on disk.
        let extent = 128 * 1024u64.min(total.max(1));
        let n_extents = total.div_ceil(extent).max(1);
        let mut order: Vec<u64> = (0..n_extents).collect();
        // Fisher–Yates with our deterministic rng.
        for i in (1..order.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut ops = Vec::new();
        for &e in &order {
            let start = e * extent;
            let end = (start + extent).min(total);
            let mut pos = start;
            while pos < end {
                let len = match rng.below(10) {
                    0..=3 => 4 * 1024,
                    4..=6 => 16 * 1024,
                    7..=8 => 32 * 1024,
                    _ => 64 * 1024,
                } as u64;
                let len = len.min(end - pos) as u32;
                ops.push(ReadOp { offset: pos, len });
                pos += len as u64;
            }
        }
        BootTrace { ops }
    }

    /// Total bytes read by the trace.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|op| op.len as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::corpus::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::test_corpus(8, 21))
    }

    #[test]
    fn cache_is_much_smaller_than_image() {
        let c = corpus();
        for img in c.iter() {
            let cache = img.cache();
            assert!(cache.bytes() < img.nonzero_bytes() / 2, "image {}", img.id());
            assert!(cache.bytes() > 0);
        }
    }

    #[test]
    fn cache_blocks_match_image_head() {
        let c = corpus();
        let img = c.image(0);
        let cache = img.cache();
        // Blocks fully inside the working set equal the image's blocks; the
        // final partial block is zero-padded past the working set, so only
        // compare aligned interior blocks.
        let bs = 512;
        assert_eq!(cache.block(bs, 0), img.block(bs, 0));
        assert_eq!(cache.block(bs, 1), img.block(bs, 1));
        let last = cache.blocks_count(bs) - 1;
        assert_eq!(cache.block(bs, last), img.block(bs, last));
    }

    #[test]
    fn trace_covers_cache_exactly_once() {
        let c = corpus();
        let cache = c.image(1).cache();
        let trace = cache.boot_trace();
        assert_eq!(trace.total_bytes(), cache.bytes());
        // No overlapping or out-of-range reads.
        let mut intervals: Vec<(u64, u64)> =
            trace.ops.iter().map(|op| (op.offset, op.offset + op.len as u64)).collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap {w:?}");
        }
        assert!(intervals.last().expect("nonempty").1 <= cache.bytes());
    }

    #[test]
    fn trace_is_deterministic_per_image() {
        let c = corpus();
        let t1 = c.image(2).cache().boot_trace();
        let t2 = c.image(2).cache().boot_trace();
        assert_eq!(t1.ops, t2.ops);
        let t3 = c.image(3).cache().boot_trace();
        assert_ne!(t1.ops, t3.ops);
    }

    #[test]
    fn trace_is_not_fully_sequential() {
        // Needs a working set spanning several 128 KiB extents, hence a
        // lower scale divisor than the default test corpus.
        let c = Corpus::generate(CorpusConfig {
            scale: 256,
            ..CorpusConfig::test_corpus(4, 21)
        });
        let trace = c.image(0).cache().boot_trace();
        let seq = trace
            .ops
            .windows(2)
            .filter(|w| w[0].offset + w[0].len as u64 == w[1].offset)
            .count();
        assert!(seq < trace.ops.len() - 1, "trace must contain seeks");
        assert!(seq > trace.ops.len() / 3, "trace must contain sequential runs");
    }

    #[test]
    fn last_cache_block_zero_padded() {
        let c = corpus();
        let cache = c.image(4).cache();
        let bs = 100_000; // not a divisor of cache size
        let last = cache.blocks_count(bs) - 1;
        let block = cache.block(bs, last);
        assert_eq!(block.len(), bs);
    }
}
