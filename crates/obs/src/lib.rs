//! Unified observability for the Squirrel reproduction.
//!
//! Every paper figure is a *measurement* — wire bytes per registration,
//! ccVolume hit/miss traffic, DDT growth, ARC hit rates — so the runtime
//! crates meter themselves through this crate instead of ad-hoc getters.
//! The design constraints, in order:
//!
//! 1. **Deterministic.** A [`MetricsRegistry::snapshot`] taken after a
//!    workflow is bit-identical at any worker-thread count. Counters and
//!    histograms only ever *add* (commutative, so parallel increments from
//!    the ingestion pipeline or the multicast fan-out sum identically);
//!    gauges and journal events are written exclusively from serial
//!    orchestration code; wall-clock timings are quarantined in
//!    [`MetricsRegistry::wall_times`], *outside* the canonical snapshot.
//! 2. **Near-zero cost when disabled.** A disabled [`Metrics`] handle holds
//!    no registry reference: every operation is a `None` check, and interned
//!    [`Counter`]/[`Histogram`] handles are no-ops.
//! 3. **Std-only.** No dependencies; export is hand-rolled Prometheus text
//!    format and a JSON subset, both with exact round-trip parsers.
//!
//! Metric identity is `name{label="value",...}`; handles carry base labels
//! (e.g. `pool="scvol"`) applied to every metric they intern.

mod histogram;
mod journal;
mod registry;
mod snapshot;

pub use histogram::{bucket_bound, HistogramSnapshot};
pub use journal::{Event, FieldValue};
pub use registry::{Counter, Histogram, Metrics, MetricsRegistry, Span, WallStats};
pub use snapshot::{GaugeValue, MetricsSnapshot, ParseError};
