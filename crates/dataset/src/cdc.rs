//! Content-defined chunking (CDC): the variable-size alternative to fixed
//! blocks.
//!
//! The paper justifies using ZFS (fixed-size records) by citing Jin &
//! Miller's finding that fixed-size chunking deduplicates VM images about
//! as well as variable-size chunking. This module lets the reproduction
//! *test* that claim on its corpus: a Gear-style rolling hash cuts chunk
//! boundaries where the content dictates, so insertions shift boundaries
//! instead of ruining every following block — the classic CDC advantage
//! that VM images (page/block-aligned by construction) mostly don't need.

use crate::corpus::Corpus;
use crate::rng::SplitMix64;
use squirrel_hash::{ContentHash, FnvHashMap};

/// Gear table: 256 random 64-bit values indexed by byte.
fn gear_table(seed: u64) -> [u64; 256] {
    let mut rng = SplitMix64::from_parts(&[seed, 0x6ea4]);
    let mut t = [0u64; 256];
    for v in t.iter_mut() {
        *v = rng.next_u64();
    }
    t
}

/// Chunking parameters.
#[derive(Clone, Copy, Debug)]
pub struct CdcParams {
    pub min_size: usize,
    /// The boundary mask targets an average of `avg_size` (a power of two).
    pub avg_size: usize,
    pub max_size: usize,
}

impl CdcParams {
    /// Parameters targeting an average chunk of `avg` bytes.
    pub fn with_average(avg: usize) -> Self {
        assert!(avg.is_power_of_two() && avg >= 1024);
        CdcParams { min_size: avg / 4, avg_size: avg, max_size: avg * 4 }
    }

    fn mask(&self) -> u64 {
        (self.avg_size as u64 - 1) << 16
    }
}

/// Split `data` into content-defined chunks; returns chunk byte ranges.
pub fn chunk_boundaries(data: &[u8], params: &CdcParams, gear: &[u64; 256]) -> Vec<(usize, usize)> {
    let mask = params.mask();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let mut hash = 0u64;
        let mut i = start;
        let hard_end = (start + params.max_size).min(data.len());
        let soft_start = (start + params.min_size).min(data.len());
        let mut cut = hard_end;
        while i < hard_end {
            hash = (hash << 1).wrapping_add(gear[data[i] as usize]);
            if i >= soft_start && hash & mask == 0 {
                cut = i + 1;
                break;
            }
            i += 1;
        }
        out.push((start, cut));
        start = cut;
    }
    out
}

/// Dedup statistics of one chunking strategy over a corpus' caches.
#[derive(Clone, Copy, Debug)]
pub struct ChunkingStats {
    pub total_chunks: u64,
    pub unique_chunks: u64,
    pub total_bytes: u64,
    pub unique_bytes: u64,
    pub mean_chunk_bytes: f64,
}

impl ChunkingStats {
    pub fn dedup_ratio(&self) -> f64 {
        self.total_bytes as f64 / self.unique_bytes.max(1) as f64
    }
}

/// Deduplicate the corpus' caches under CDC with the given parameters.
pub fn cdc_dedup_caches(corpus: &Corpus, params: &CdcParams) -> ChunkingStats {
    let gear = gear_table(corpus.config().seed);
    let mut seen: FnvHashMap<u128, u32> = FnvHashMap::default();
    let mut stats = ChunkingStats {
        total_chunks: 0,
        unique_chunks: 0,
        total_bytes: 0,
        unique_bytes: 0,
        mean_chunk_bytes: 0.0,
    };
    for img in corpus.iter() {
        let cache = img.cache();
        let mut data = vec![0u8; cache.bytes() as usize];
        img.read_at(0, &mut data);
        for (s, e) in chunk_boundaries(&data, params, &gear) {
            let chunk = &data[s..e];
            stats.total_chunks += 1;
            stats.total_bytes += chunk.len() as u64;
            let key = ContentHash::of(chunk).short();
            if seen.insert(key, 1).is_none() {
                stats.unique_chunks += 1;
                stats.unique_bytes += chunk.len() as u64;
            }
        }
    }
    stats.mean_chunk_bytes = stats.total_bytes as f64 / stats.total_chunks.max(1) as f64;
    stats
}

/// Deduplicate the corpus' caches under fixed-size blocks of `bs` (same
/// accounting as [`cdc_dedup_caches`], for apples-to-apples comparison).
pub fn fixed_dedup_caches(corpus: &Corpus, bs: usize) -> ChunkingStats {
    let mut seen: FnvHashMap<u128, u32> = FnvHashMap::default();
    let mut stats = ChunkingStats {
        total_chunks: 0,
        unique_chunks: 0,
        total_bytes: 0,
        unique_bytes: 0,
        mean_chunk_bytes: 0.0,
    };
    for img in corpus.iter() {
        let cache = img.cache();
        for block in cache.blocks_trimmed(bs) {
            if block.is_empty() {
                continue;
            }
            stats.total_chunks += 1;
            stats.total_bytes += block.len() as u64;
            let key = ContentHash::of(&block).short();
            if seen.insert(key, 1).is_none() {
                stats.unique_chunks += 1;
                stats.unique_bytes += block.len() as u64;
            }
        }
    }
    stats.mean_chunk_bytes = stats.total_bytes as f64 / stats.total_chunks.max(1) as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::test_corpus(12, 55))
    }

    #[test]
    fn boundaries_cover_input_exactly() {
        let c = corpus();
        let img = c.image(0);
        let mut data = vec![0u8; img.cache().bytes() as usize];
        img.read_at(0, &mut data);
        let params = CdcParams::with_average(4096);
        let gear = gear_table(1);
        let cuts = chunk_boundaries(&data, &params, &gear);
        assert_eq!(cuts.first().expect("nonempty").0, 0);
        assert_eq!(cuts.last().expect("nonempty").1, data.len());
        for w in cuts.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
    }

    #[test]
    fn chunk_sizes_respect_bounds_and_average() {
        let c = corpus();
        let img = c.image(1);
        let mut data = vec![0u8; img.cache().bytes() as usize];
        img.read_at(0, &mut data);
        let params = CdcParams::with_average(4096);
        let gear = gear_table(1);
        let cuts = chunk_boundaries(&data, &params, &gear);
        for &(s, e) in &cuts[..cuts.len() - 1] {
            let n = e - s;
            assert!(n >= params.min_size, "chunk {n}");
            assert!(n <= params.max_size, "chunk {n}");
        }
        let mean = data.len() as f64 / cuts.len() as f64;
        assert!(
            (1024.0..16384.0).contains(&mean),
            "mean chunk {mean} should be near the 4 KiB target"
        );
    }

    #[test]
    fn boundaries_survive_prefix_insertion() {
        // The CDC selling point: shifting content re-synchronizes.
        let gear = gear_table(9);
        let params = CdcParams::with_average(2048);
        let c = corpus();
        let img = c.image(2);
        let mut data = vec![0u8; img.cache().bytes() as usize];
        img.read_at(0, &mut data);
        let mut shifted = vec![0xEEu8; 37];
        shifted.extend_from_slice(&data);
        let a: std::collections::HashSet<u128> = chunk_boundaries(&data, &params, &gear)
            .iter()
            .map(|&(s, e)| ContentHash::of(&data[s..e]).short())
            .collect();
        let b: std::collections::HashSet<u128> = chunk_boundaries(&shifted, &params, &gear)
            .iter()
            .map(|&(s, e)| ContentHash::of(&shifted[s..e]).short())
            .collect();
        let common = a.intersection(&b).count();
        assert!(
            common * 2 > a.len(),
            "most chunks must survive a 37-byte prefix shift: {common}/{}",
            a.len()
        );
    }

    #[test]
    fn fixed_and_cdc_dedup_are_comparable_on_caches() {
        // Jin & Miller's finding, the paper's justification for ZFS: on VM
        // content, fixed-size chunking dedups about as well as CDC.
        let c = corpus();
        let fixed = fixed_dedup_caches(&c, 4096);
        let cdc = cdc_dedup_caches(&c, &CdcParams::with_average(4096));
        assert!(fixed.dedup_ratio() > 1.2, "{}", fixed.dedup_ratio());
        assert!(cdc.dedup_ratio() > 1.2, "{}", cdc.dedup_ratio());
        let rel = fixed.dedup_ratio() / cdc.dedup_ratio();
        assert!(
            (0.55..=1.8).contains(&rel),
            "fixed {} vs cdc {} should be the same ballpark",
            fixed.dedup_ratio(),
            cdc.dedup_ratio()
        );
    }

    #[test]
    fn stats_totals_consistent() {
        let c = corpus();
        let s = fixed_dedup_caches(&c, 8192);
        assert!(s.unique_chunks <= s.total_chunks);
        assert!(s.unique_bytes <= s.total_bytes);
        assert!(s.mean_chunk_bytes > 0.0);
    }
}
