//! Bounded ring-buffer event journal.
//!
//! Workflows (`register`, `boot`, `gc`, `node_rejoin`) emit one structured
//! event per operation from serial orchestration code; the journal keeps the
//! most recent `capacity` of them and counts what it sheds, so a snapshot is
//! deterministic even when a boot storm overflows the ring.

use std::collections::VecDeque;

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:?}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// Numeric view (strings yield `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            FieldValue::Str(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// One journal entry. `seq` is the registry-wide logical sequence number —
/// the deterministic substitute for a timestamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub name: String,
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// First field with the given key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

pub(crate) struct EventJournal {
    capacity: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl EventJournal {
    pub(crate) fn new(capacity: usize) -> Self {
        EventJournal { capacity, buf: VecDeque::new(), dropped: 0 }
    }

    pub(crate) fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events oldest-first, plus how many older ones the ring shed.
    pub(crate) fn snapshot(&self) -> (Vec<Event>, u64) {
        (self.buf.iter().cloned().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> Event {
        Event { seq, name: format!("e{seq}"), fields: vec![] }
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut j = EventJournal::new(4);
        for s in 0..6 {
            j.push(ev(s));
        }
        let (events, dropped) = j.snapshot();
        assert_eq!(dropped, 2);
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5],
            "oldest entries shed first"
        );
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut j = EventJournal::new(0);
        j.push(ev(0));
        let (events, dropped) = j.snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn field_lookup_finds_first_match() {
        let e = Event {
            seq: 0,
            name: "x".into(),
            fields: vec![
                ("a".into(), FieldValue::U64(1)),
                ("b".into(), FieldValue::Str("two".into())),
            ],
        };
        assert_eq!(e.field("a"), Some(&FieldValue::U64(1)));
        assert_eq!(e.field("b").and_then(|v| v.as_str()), Some("two"));
        assert_eq!(e.field("missing"), None);
    }
}
