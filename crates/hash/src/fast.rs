//! Fast non-cryptographic hashing for hot in-memory tables.
//!
//! Dedup tables are keyed by (already well-distributed) digest prefixes, so
//! SipHash's DoS resistance buys nothing and costs cycles. FNV-1a is the
//! classic cheap choice for short keys; `mix64` is a splitmix64 finalizer for
//! integer keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
#[derive(Clone, Copy)]
pub struct Fnv1a64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a64 {
    #[inline]
    fn default() -> Self {
        Fnv1a64(FNV_OFFSET)
    }
}

impl Hasher for Fnv1a64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // Integer keys are common (digest prefixes); one multiply-mix beats
        // eight byte-at-a-time rounds and distributes as well for our keys.
        self.0 = mix64(self.0 ^ i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`Fnv1a64`].
pub type FnvBuildHasher = BuildHasherDefault<Fnv1a64>;
/// `HashMap` keyed with [`Fnv1a64`].
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;
/// `HashSet` keyed with [`Fnv1a64`].
pub type FnvHashSet<K> = HashSet<K, FnvBuildHasher>;

/// splitmix64 finalizer: a strong, cheap 64-bit bijective mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for 64-bit FNV-1a.
        let mut h = Fnv1a64::default();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a64::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv1a64::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_changes_every_input_bit() {
        // Avalanche sanity: flipping one input bit flips ~half the output.
        for bit in 0..64 {
            let a = mix64(0x1234_5678_9abc_def0);
            let b = mix64(0x1234_5678_9abc_def0 ^ (1 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((12..=52).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }

    #[test]
    fn fnv_map_works_with_u128_keys() {
        let mut m: FnvHashMap<u128, u32> = FnvHashMap::default();
        for i in 0..1000u128 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(7 * 999)), Some(&999));
    }

    #[test]
    fn fnv_set_distinguishes_values() {
        let mut s: FnvHashSet<u64> = FnvHashSet::default();
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(1));
    }
}
