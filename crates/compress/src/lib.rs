//! Block compression substrate for the Squirrel reproduction.
//!
//! The paper compares ZFS's inline compression routines — gzip-6, gzip-9,
//! lzjb, and lz4 — on VM image blocks (Figure 3). No compression crates are
//! in the allowed dependency set, so this crate implements three codec
//! families from scratch:
//!
//! * [`Codec::Gzip`] — LZSS over a 32 KiB window followed by a canonical
//!   Huffman pass; the level steers match-search effort like zlib's levels.
//! * [`Codec::Lzjb`] — a port of ZFS's lzjb (hash-table LZ with 3-bit match
//!   lengths and 10-bit offsets).
//! * [`Codec::Lz4`] — an LZ4-style byte-oriented LZ with greedy hash-chain
//!   matching and run-length tokens.
//!
//! All codecs share the frame convention of [`compress`]: a 1-byte method tag
//! so that incompressible blocks are stored raw instead of expanding, exactly
//! like ZFS falls back to uncompressed records.

mod bitio;
mod huffman;
mod lz4;
mod lzjb;
mod lzss;
mod zle;

pub use huffman::{huffman_compress, huffman_decompress};

/// Compression routine selector, mirroring ZFS `compression=` values used in
/// the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression; frames still detect all-zero blocks.
    Off,
    /// LZSS + Huffman, level 1..=9 (paper uses 6 and 9).
    Gzip(u8),
    /// ZFS's historical default LZ codec.
    Lzjb,
    /// Fast byte-oriented LZ in the style of LZ4.
    Lz4,
    /// Zero-length encoding: compresses only zero runs (ZFS `zle`).
    Zle,
}

impl Codec {
    /// Canonical name as used in the paper's figure legends.
    pub fn name(&self) -> String {
        match self {
            Codec::Off => "off".to_string(),
            Codec::Gzip(l) => format!("gzip-{l}"),
            Codec::Lzjb => "lzjb".to_string(),
            Codec::Lz4 => "lz4".to_string(),
            Codec::Zle => "zle".to_string(),
        }
    }

    /// CPU cost to decompress one byte, in nanoseconds, used by the boot
    /// simulator. Calibrated from the relative throughputs of the real codecs
    /// (lz4/lzjb several GB/s-class, gzip hundreds of MB/s).
    pub fn decompress_ns_per_byte(&self) -> f64 {
        match self {
            Codec::Off => 0.0,
            // gzip inflate ran at ~80 MB/s per core on 2014 hardware.
            Codec::Gzip(_) => 12.0,
            Codec::Lzjb => 0.8,
            Codec::Lz4 => 0.5,
            Codec::Zle => 0.2,
        }
    }
}

/// Word-wise all-zero probe with an early exit at the first nonzero 64-byte
/// group, so data blocks (the common case) bail after one cache line.
#[inline]
fn all_zero(data: &[u8]) -> bool {
    let mut groups = data.chunks_exact(64);
    for g in groups.by_ref() {
        let mut acc = 0u64;
        for w in g.chunks_exact(8) {
            acc |= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        }
        if acc != 0 {
            return false;
        }
    }
    groups.remainder().iter().all(|&b| b == 0)
}

/// Method tags for the 1-byte frame header.
const TAG_RAW: u8 = 0;
const TAG_ZERO: u8 = 1;
const TAG_GZIP: u8 = 2;
const TAG_LZJB: u8 = 3;
const TAG_LZ4: u8 = 4;
const TAG_ZLE: u8 = 5;

/// Compress `data` with `codec`, producing a self-describing frame.
///
/// The frame never expands by more than one byte: if the codec's output would
/// be at least as large as the input, the block is stored raw. All-zero
/// blocks collapse to a 1-byte frame regardless of codec (ZFS's zero-block
/// elision).
///
/// One-shot convenience over [`Compressor`]; batch callers should build a
/// `Compressor` once and reuse it so codec dispatch (and gzip's effort
/// lookup) happens per batch, not per block.
pub fn compress(codec: Codec, data: &[u8]) -> Vec<u8> {
    Compressor::new(codec).compress(data)
}

/// A codec with its dispatch resolved ahead of time.
///
/// The ingest hot path compresses thousands of blocks with one codec; a
/// `Compressor` hoists the per-block `match` on [`Codec`] — including the
/// gzip level → LZSS-effort translation — out of the loop. Output frames
/// are byte-identical to [`compress`] with the same codec.
#[derive(Clone, Copy, Debug)]
pub struct Compressor {
    plan: Plan,
}

/// Pre-resolved codec dispatch (gzip level already mapped to LZSS effort).
#[derive(Clone, Copy, Debug)]
enum Plan {
    Off,
    Gzip { effort: usize },
    Lzjb,
    Lz4,
    Zle,
}

impl Compressor {
    /// Resolve `codec` into a reusable compression plan.
    pub fn new(codec: Codec) -> Self {
        let plan = match codec {
            Codec::Off => Plan::Off,
            Codec::Gzip(level) => Plan::Gzip { effort: lzss::effort_for_level(level) },
            Codec::Lzjb => Plan::Lzjb,
            Codec::Lz4 => Plan::Lz4,
            Codec::Zle => Plan::Zle,
        };
        Compressor { plan }
    }

    /// Compress one block into a self-describing frame; identical framing
    /// (zero elision, raw fallback) to the free [`compress`].
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        if all_zero(data) {
            return vec![TAG_ZERO];
        }
        let body = match self.plan {
            Plan::Off => None,
            Plan::Gzip { effort } => Some((
                TAG_GZIP,
                huffman::huffman_compress(&lzss::compress(data, effort)),
            )),
            Plan::Lzjb => Some((TAG_LZJB, lzjb::compress(data))),
            Plan::Lz4 => Some((TAG_LZ4, lz4::compress(data))),
            Plan::Zle => Some((TAG_ZLE, zle::compress(data))),
        };
        match body {
            Some((tag, body)) if body.len() < data.len() => {
                let mut out = Vec::with_capacity(body.len() + 1);
                out.push(tag);
                out.extend_from_slice(&body);
                out
            }
            _ => {
                let mut out = Vec::with_capacity(data.len() + 1);
                out.push(TAG_RAW);
                out.extend_from_slice(data);
                out
            }
        }
    }
}

/// Decompress a frame produced by [`compress`]. `expected_len` is the
/// original block length (callers always know it — blocks are fixed size).
pub fn decompress(frame: &[u8], expected_len: usize) -> Vec<u8> {
    let (&tag, body) = frame.split_first().expect("empty frame");
    match tag {
        TAG_RAW => body.to_vec(),
        TAG_ZERO => vec![0; expected_len],
        TAG_GZIP => gzip_like_decompress(body, expected_len),
        TAG_LZJB => lzjb::decompress(body, expected_len),
        TAG_LZ4 => lz4::decompress(body, expected_len),
        TAG_ZLE => zle::decompress(body, expected_len),
        other => panic!("unknown compression tag {other}"),
    }
}

/// Inverse of the LZSS + Huffman pair (DEFLATE's two stages); the forward
/// direction lives in [`Compressor::compress`].
fn gzip_like_decompress(body: &[u8], expected_len: usize) -> Vec<u8> {
    let tokens = huffman::huffman_decompress(body);
    lzss::decompress(&tokens, expected_len)
}

/// Compressed size of `data` under `codec` (frame included).
pub fn compressed_len(codec: Codec, data: &[u8]) -> usize {
    compress(codec, data).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn codecs() -> Vec<Codec> {
        vec![
            Codec::Off,
            Codec::Gzip(6),
            Codec::Gzip(9),
            Codec::Lzjb,
            Codec::Lz4,
            Codec::Zle,
        ]
    }

    fn roundtrip(codec: Codec, data: &[u8]) {
        let frame = compress(codec, data);
        let back = decompress(&frame, data.len());
        assert_eq!(back, data, "codec {:?} len {}", codec, data.len());
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for codec in codecs() {
            roundtrip(codec, b"");
            roundtrip(codec, b"a");
            roundtrip(codec, b"ab");
            roundtrip(codec, b"squirrel");
        }
    }

    #[test]
    fn zero_blocks_collapse_to_one_byte() {
        for codec in codecs() {
            let frame = compress(codec, &[0u8; 4096]);
            assert_eq!(frame.len(), 1, "{codec:?}");
            assert_eq!(decompress(&frame, 4096), vec![0u8; 4096]);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog "
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        for codec in [Codec::Gzip(6), Codec::Gzip(9), Codec::Lzjb, Codec::Lz4] {
            let frame = compress(codec, &data);
            assert!(
                frame.len() < data.len() / 3,
                "{codec:?} got {} for {}",
                frame.len(),
                data.len()
            );
            roundtrip(codec, &data);
        }
    }

    #[test]
    fn random_data_stored_raw_not_expanded() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..4096).map(|_| rng.random()).collect();
        for codec in codecs() {
            let frame = compress(codec, &data);
            assert!(frame.len() <= data.len() + 1, "{codec:?}");
            roundtrip(codec, &data);
        }
    }

    #[test]
    fn gzip_beats_fast_codecs_on_text() {
        // The figure-3 ordering the paper relies on, measured on realistic
        // mixed content (repeated vocabulary with varying numbers) rather
        // than a trivial cycle where every codec degenerates to one match.
        let mut rng = StdRng::seed_from_u64(42);
        let vocab = [
            "kernel", "initrd", "libc", "systemd", "daemon", "config", "mount",
            "device", "driver", "module", "service", "socket", "target",
        ];
        let mut text = Vec::new();
        while text.len() < 32768 {
            let w = vocab[rng.random_range(0..vocab.len())];
            text.extend_from_slice(w.as_bytes());
            text.extend_from_slice(format!("-{:x} ", rng.random_range(0..4096u32)).as_bytes());
        }
        let g6 = compressed_len(Codec::Gzip(6), &text);
        let lz4 = compressed_len(Codec::Lz4, &text);
        let lzjb = compressed_len(Codec::Lzjb, &text);
        assert!(g6 < lz4, "gzip {g6} vs lz4 {lz4}");
        assert!(g6 < lzjb, "gzip {g6} vs lzjb {lzjb}");
    }

    #[test]
    fn gzip9_at_least_as_good_as_gzip6() {
        let mut rng = StdRng::seed_from_u64(99);
        // Mixed compressible data: random words repeated.
        let words: Vec<Vec<u8>> = (0..64)
            .map(|_| (0..8).map(|_| rng.random_range(b'a'..=b'z')).collect())
            .collect();
        let mut data = Vec::new();
        while data.len() < 32768 {
            data.extend_from_slice(&words[rng.random_range(0..64usize)]);
        }
        let g6 = compressed_len(Codec::Gzip(6), &data);
        let g9 = compressed_len(Codec::Gzip(9), &data);
        assert!(g9 <= g6 + 16, "g9 {g9} vs g6 {g6}");
    }

    #[test]
    fn larger_blocks_compress_better_on_structured_data() {
        // The core mechanism behind Figure 2's gzip trend: bigger windows see
        // more repeats.
        let mut rng = StdRng::seed_from_u64(3);
        let motifs: Vec<Vec<u8>> = (0..256)
            .map(|_| (0..64).map(|_| rng.random::<u8>() & 0x3f).collect())
            .collect();
        let data: Vec<u8> = (0..131072 / 64)
            .flat_map(|_| motifs[rng.random_range(0..256usize)].clone())
            .collect();
        let ratio = |bs: usize| {
            let mut orig = 0usize;
            let mut comp = 0usize;
            for chunk in data.chunks(bs) {
                orig += chunk.len();
                comp += compressed_len(Codec::Gzip(6), chunk);
            }
            orig as f64 / comp as f64
        };
        let small = ratio(1024);
        let large = ratio(65536);
        assert!(large > small, "large {large:.3} <= small {small:.3}");
    }

    #[test]
    fn compressor_matches_free_function() {
        let mut rng = StdRng::seed_from_u64(11);
        let blocks: Vec<Vec<u8>> = (0..8)
            .map(|i| match i % 4 {
                0 => vec![0u8; 2048],
                1 => (0..2048).map(|_| rng.random()).collect(),
                2 => (0..2048).map(|j| (j % 7) as u8).collect(),
                _ => b"squirrel".iter().copied().cycle().take(2048).collect(),
            })
            .collect();
        for codec in codecs() {
            let c = Compressor::new(codec);
            for b in &blocks {
                assert_eq!(c.compress(b), compress(codec, b), "{codec:?}");
            }
        }
    }

    #[test]
    fn unknown_tag_panics() {
        let r = std::panic::catch_unwind(|| decompress(&[250, 1, 2], 2));
        assert!(r.is_err());
    }

    #[test]
    fn codec_names_match_paper_legends() {
        assert_eq!(Codec::Gzip(6).name(), "gzip-6");
        assert_eq!(Codec::Lzjb.name(), "lzjb");
        assert_eq!(Codec::Lz4.name(), "lz4");
        assert_eq!(Codec::Off.name(), "off");
    }

    #[test]
    fn decompress_cost_ordering() {
        assert!(Codec::Gzip(6).decompress_ns_per_byte() > Codec::Lzjb.decompress_ns_per_byte());
        assert!(Codec::Lzjb.decompress_ns_per_byte() >= Codec::Lz4.decompress_ns_per_byte());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_gzip6(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let frame = compress(Codec::Gzip(6), &data);
            prop_assert_eq!(decompress(&frame, data.len()), data);
        }

        #[test]
        fn roundtrip_gzip9(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let frame = compress(Codec::Gzip(9), &data);
            prop_assert_eq!(decompress(&frame, data.len()), data);
        }

        #[test]
        fn roundtrip_lzjb(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let frame = compress(Codec::Lzjb, &data);
            prop_assert_eq!(decompress(&frame, data.len()), data);
        }

        #[test]
        fn roundtrip_lz4(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let frame = compress(Codec::Lz4, &data);
            prop_assert_eq!(decompress(&frame, data.len()), data);
        }

        #[test]
        fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
            for codec in [Codec::Gzip(6), Codec::Lzjb, Codec::Lz4] {
                let frame = compress(codec, &data);
                prop_assert!(frame.len() <= data.len() + 1);
                prop_assert_eq!(decompress(&frame, data.len()), data.clone());
            }
        }

        #[test]
        fn frame_never_expands_by_more_than_tag(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            for codec in [Codec::Off, Codec::Gzip(6), Codec::Lzjb, Codec::Lz4] {
                prop_assert!(compress(codec, &data).len() <= data.len() + 1);
            }
        }
    }
}
