//! The pool: files of fixed-size deduplicated, compressed blocks, plus
//! whole-pool snapshots.
//!
//! Model notes versus real ZFS: a pool holds one dataset whose files are the
//! VMI caches; snapshots capture the entire file set (Squirrel snapshots the
//! whole cVolume); blocks are fixed `recordsize` units; zero blocks become
//! holes. Reference counting is exact: one reference per live file pointer
//! plus one per snapshot pointer, so destroying snapshots frees exactly the
//! blocks nothing else uses.

use crate::config::{DedupMode, PoolConfig};
use crate::ddt::{BlockKey, SharedPayload};
use crate::meter::PoolMeters;
use crate::sddt::ShardedDedupTable;
use crate::stats::SpaceStats;
use squirrel_compress::{compress, decompress};
use squirrel_hash::par::WorkerPool;
use squirrel_hash::ContentHash;
use squirrel_obs::Metrics;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A resolved block pointer: where a file block lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRef {
    pub key: BlockKey,
    /// Physical byte offset of the compressed record.
    pub phys: u64,
    /// Compressed size.
    pub psize: u32,
}

/// One data record of a file's physical layout: where a logically
/// positioned record lives on the (modelled) disk. This is the
/// measured-layout input that `squirrel-bootsim`-style seek models consume
/// — real extents, not an assumed scatter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLoc {
    /// Logical byte offset of the record in the file.
    pub logical_off: u64,
    /// Logical (uncompressed) record length.
    pub llen: u32,
    /// Physical byte offset of the compressed record.
    pub phys: u64,
    /// Compressed size on disk.
    pub psize: u32,
}

/// On-disk scatter of one file: how many physically contiguous extents its
/// logically ordered records form, and how far apart they sit.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FileScatter {
    /// Data records (holes excluded).
    pub records: u64,
    /// Physically contiguous runs of records in logical order. `1` means a
    /// perfectly sequential file.
    pub extents: u64,
    /// Total compressed bytes of the records.
    pub data_bytes: u64,
    /// Physical span from the first to the last byte touched.
    pub span_bytes: u64,
    /// Mean physical distance between consecutive records in logical order
    /// (`0` when contiguous) — the per-transition seek distance a
    /// sequential reader pays.
    pub mean_gap_bytes: f64,
}

/// What a [`ZPool::reverse_dedup_pass`] did to one file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReverseDedupReport {
    /// Extent count before the pass.
    pub extents_before: u64,
    /// Extent count after relocation (near 1 for a dedup-free file).
    pub extents_after: u64,
    /// Distinct blocks relocated to the new sequential region.
    pub keys_rewritten: u64,
    /// Compressed bytes whose old physical copies became holes.
    pub bytes_freed: u64,
}

/// One content-defined chunk of a file: a key plus where the chunk's bytes
/// sit in the file's logical address space. Chunks are kept sorted by
/// `logical_off` and never overlap; gaps between chunks are holes (all-zero
/// content elided at ingest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CdcChunk {
    pub key: BlockKey,
    pub logical_off: u64,
    pub len: u32,
}

/// Per-file block-pointer table. The pointer vector sits behind an `Arc` so
/// snapshots and send-stream metadata share it: cloning a table (every
/// snapshot clones the whole file map) is a refcount bump, and the
/// copy-on-write `Arc::make_mut` in [`ZPool::write_block`] only materializes
/// a private vector when a shared table is actually modified.
///
/// A file is *either* block-addressed (`ptrs`, fixed chunking) *or*
/// chunk-addressed (`chunks`, CDC) — never both. Chunked files are
/// import-only: [`ZPool::write_block`] rejects them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct FileTable {
    /// `None` = hole (zero block).
    pub(crate) ptrs: Arc<Vec<Option<BlockKey>>>,
    /// Content-defined chunks, sorted by `logical_off`; `None` for
    /// block-addressed files.
    pub(crate) chunks: Option<Arc<Vec<CdcChunk>>>,
    /// Logical file length in bytes.
    pub(crate) len: u64,
}

impl FileTable {
    /// Every referenced block key, with multiplicity — one per live block
    /// pointer or chunk. This is the iteration all refcount bookkeeping
    /// (snapshot, delete, purge, invariant checks) runs on, so the two
    /// addressing shapes can't diverge.
    pub(crate) fn iter_keys(&self) -> impl Iterator<Item = BlockKey> + '_ {
        self.ptrs.iter().copied().flatten().chain(
            self.chunks
                .as_deref()
                .into_iter()
                .flatten()
                .map(|c| c.key),
        )
    }

    /// Number of on-disk pointer records this table costs (block pointers
    /// including holes, or chunk records).
    pub(crate) fn ptr_count(&self) -> u64 {
        self.ptrs.len() as u64
            + self.chunks.as_deref().map(|c| c.len() as u64).unwrap_or(0)
    }
}

/// A whole-pool snapshot: the file set at a point in time.
#[derive(Clone, Debug)]
pub(crate) struct Snapshot {
    pub(crate) tag: String,
    pub(crate) files: BTreeMap<String, FileTable>,
}

/// The deduplicating, compressing, snapshotting block store.
pub struct ZPool {
    config: PoolConfig,
    ddt: ShardedDedupTable,
    files: BTreeMap<String, FileTable>,
    /// Snapshots in creation order.
    snapshots: Vec<Snapshot>,
    /// One shared all-zero block: every hole read returns a reference to
    /// this buffer instead of materializing fresh zeros.
    zero_block: SharedPayload,
    /// Interned observability handles; no-ops until [`ZPool::set_metrics`].
    pub(crate) meters: PoolMeters,
    /// Persistent ingest workers, sized by `config.threads` and spawned
    /// lazily on the first parallel stage. Shareable across pools via
    /// [`ZPool::set_worker_pool`] so one `Squirrel` node runs all of its
    /// cVolumes on a single worker set.
    workers: WorkerPool,
}

impl ZPool {
    pub fn new(config: PoolConfig) -> Self {
        ZPool {
            config,
            ddt: ShardedDedupTable::new(),
            files: BTreeMap::new(),
            snapshots: Vec::new(),
            zero_block: vec![0u8; config.block_size].into(),
            meters: PoolMeters::disabled(),
            workers: WorkerPool::new(config.threads),
        }
    }

    /// Replace this pool's worker pool with a shared one (e.g. the owning
    /// node's), so sibling pools reuse one set of persistent threads
    /// instead of each lazily spawning their own.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        self.workers = pool;
    }

    /// The pool's persistent ingest workers.
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.workers
    }

    /// Attach observability: every ingest/recv/scrub on this pool records
    /// counters and histograms through `metrics` (label the handle, e.g.
    /// `pool="scvol"`, before attaching). All pool metrics are add-only, so
    /// snapshots stay deterministic under parallel ingestion and fan-out.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.meters = PoolMeters::new(metrics);
    }

    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    // --- files -------------------------------------------------------------

    /// Create an empty file; replaces any existing file of the same name.
    pub fn create_file(&mut self, name: &str) {
        self.delete_file(name);
        self.files.insert(name.to_string(), FileTable::default());
    }

    pub fn has_file(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(|s| s.as_str())
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Logical length of `name` in bytes.
    pub fn file_len(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|f| f.len)
    }

    /// Delete a file from the live dataset (snapshots keep referencing its
    /// blocks until destroyed).
    pub fn delete_file(&mut self, name: &str) {
        if let Some(table) = self.files.remove(name) {
            for key in table.iter_keys() {
                self.ddt.release(&key);
            }
        }
    }

    /// Write one aligned block. `data` must be exactly `block_size` bytes
    /// (callers zero-pad tails, as the dataset layer does). All-zero data
    /// punches a hole.
    pub fn write_block(&mut self, name: &str, block_idx: u64, data: &[u8]) {
        assert_eq!(data.len(), self.config.block_size, "unaligned write");
        assert!(
            self.files.get(name).and_then(|t| t.chunks.as_ref()).is_none(),
            "write_block on a CDC-chunked file (chunked files are import-only)"
        );
        self.meters.ingest_blocks.inc();
        self.meters.ingest_bytes.add(data.len() as u64);
        let new_key = if squirrel_hash::is_zero_block(data) {
            self.meters.zero_blocks.inc();
            None
        } else {
            let key = ContentHash::of(data).short();
            let codec = self.config.codec;
            let retain = self.config.retain_data;
            let existed = self.ddt.get(&key).is_some();
            self.ddt.add_ref(key, || {
                let frame = compress(codec, data);
                let psize = frame.len() as u32;
                (psize, data.len() as u32, retain.then(|| frame.into()))
            });
            if existed {
                self.meters.ddt_hits.inc();
            } else {
                self.meters.ddt_misses.inc();
                let psize = self.ddt.get(&key).expect("just added").psize as u64;
                self.meters.compress_in_bytes.add(data.len() as u64);
                self.meters.compress_out_bytes.add(psize);
                self.meters.compressed_block_bytes.observe(psize);
            }
            Some(key)
        };
        let table = self.files.get_mut(name).expect("write to unknown file");
        // Copy-on-write: snapshots share the pointer vector; the first write
        // after a snapshot materializes a private copy, later writes mutate
        // it in place.
        let ptrs = Arc::make_mut(&mut table.ptrs);
        if ptrs.len() <= block_idx as usize {
            ptrs.resize(block_idx as usize + 1, None);
        }
        let old = std::mem::replace(&mut ptrs[block_idx as usize], new_key);
        table.len = table.len.max((block_idx + 1) * self.config.block_size as u64);
        if let Some(old_key) = old {
            self.ddt.release(&old_key);
        }
    }

    /// Fill `buf` with the chunked file's bytes at logical offset `start`
    /// (zeros where no chunk covers). `chunks` is sorted by `logical_off`.
    fn read_range_chunked(&self, chunks: &[CdcChunk], start: u64, buf: &mut [u8]) {
        let end = start + buf.len() as u64;
        let mut i = chunks.partition_point(|c| c.logical_off + c.len as u64 <= start);
        while i < chunks.len() && chunks[i].logical_off < end {
            let c = &chunks[i];
            let entry = self.ddt.get(&c.key).expect("dangling chunk pointer");
            let frame = entry.data.as_ref().expect("read from accounting-only pool");
            let bytes = decompress(frame, entry.lsize as usize);
            let lo = start.max(c.logical_off);
            let hi = end.min(c.logical_off + c.len as u64);
            buf[(lo - start) as usize..(hi - start) as usize].copy_from_slice(
                &bytes[(lo - c.logical_off) as usize..(hi - c.logical_off) as usize],
            );
            i += 1;
        }
    }

    /// Whether any chunk of a chunked file overlaps the given block.
    fn block_is_hole_chunked(chunks: &[CdcChunk], start: u64, end: u64) -> bool {
        let i = chunks.partition_point(|c| c.logical_off + c.len as u64 <= start);
        chunks.get(i).map(|c| c.logical_off >= end).unwrap_or(true)
    }

    /// Read one block (zeros for holes and unwritten space). `None` if the
    /// file does not exist. On chunked files this assembles the
    /// `block_size` window from the chunks that overlap it, so logical
    /// reads are identical across chunking strategies.
    pub fn read_block(&self, name: &str, block_idx: u64) -> Option<Vec<u8>> {
        let table = self.files.get(name)?;
        let bs = self.config.block_size;
        if let Some(chunks) = table.chunks.as_deref() {
            let mut buf = vec![0u8; bs];
            self.read_range_chunked(chunks, block_idx * bs as u64, &mut buf);
            return Some(buf);
        }
        match table.ptrs.get(block_idx as usize).copied().flatten() {
            None => Some(vec![0u8; bs]),
            Some(key) => {
                let entry = self.ddt.get(&key).expect("dangling block pointer");
                let frame = entry.data.as_ref().expect("read from accounting-only pool");
                Some(decompress(frame, bs))
            }
        }
    }

    /// [`read_block`](Self::read_block) returning a shared payload: holes
    /// hand out the pool's one zero block (a refcount bump), data blocks
    /// decompress once into a buffer that caches and callers then share.
    /// This is the fill path of [`crate::ArcCache`] and
    /// [`crate::SharedArcCache`].
    pub fn read_block_shared(&self, name: &str, block_idx: u64) -> Option<SharedPayload> {
        let table = self.files.get(name)?;
        let bs = self.config.block_size;
        if let Some(chunks) = table.chunks.as_deref() {
            let start = block_idx * bs as u64;
            if Self::block_is_hole_chunked(chunks, start, start + bs as u64) {
                return Some(Arc::clone(&self.zero_block));
            }
            let mut buf = vec![0u8; bs];
            self.read_range_chunked(chunks, start, &mut buf);
            return Some(buf.into());
        }
        match table.ptrs.get(block_idx as usize).copied().flatten() {
            None => Some(Arc::clone(&self.zero_block)),
            Some(key) => {
                let entry = self.ddt.get(&key).expect("dangling block pointer");
                let frame = entry.data.as_ref().expect("read from accounting-only pool");
                Some(decompress(frame, bs).into())
            }
        }
    }

    /// The pool's shared all-zero block (what hole reads return).
    pub fn zero_block_shared(&self) -> SharedPayload {
        Arc::clone(&self.zero_block)
    }

    /// Resolve one record pointer of `name`. Outer `None` = no such file;
    /// inner `None` = hole (including unwritten space past the table, which
    /// reads as zeros). Unlike [`block_refs`](Self::block_refs), this does
    /// not materialize the whole table — the read caches call it per block.
    /// On chunked files the index addresses *records* (chunks in logical
    /// order), not fixed blocks.
    pub fn block_ref(&self, name: &str, block_idx: u64) -> Option<Option<BlockRef>> {
        let table = self.files.get(name)?;
        if let Some(chunks) = table.chunks.as_deref() {
            return Some(chunks.get(block_idx as usize).map(|c| {
                let e = self.ddt.get(&c.key).expect("dangling chunk pointer");
                BlockRef { key: c.key, phys: e.phys, psize: e.psize }
            }));
        }
        Some(table.ptrs.get(block_idx as usize).copied().flatten().map(|key| {
            let e = self.ddt.get(&key).expect("dangling block pointer");
            BlockRef { key, phys: e.phys, psize: e.psize }
        }))
    }

    /// Import a whole file from an iterator of `block_size` blocks. Under
    /// `ChunkStrategy::Cdc` this routes through the staged ingest pipeline
    /// (the only writer of chunked tables); under `DedupMode::Reverse` the
    /// import ends with a [`reverse_dedup_pass`](Self::reverse_dedup_pass).
    pub fn import_file(
        &mut self,
        name: &str,
        blocks: impl Iterator<Item = Vec<u8>>,
        logical_len: u64,
    ) {
        if self.config.chunking.is_cdc() {
            let blocks: Vec<Vec<u8>> = blocks.collect();
            self.import_file_parallel(name, &blocks, logical_len);
            return;
        }
        self.create_file(name);
        for (i, block) in blocks.enumerate() {
            self.write_block(name, i as u64, &block);
        }
        if let Some(table) = self.files.get_mut(name) {
            table.len = logical_len;
        }
        if self.config.dedup_mode == DedupMode::Reverse {
            self.reverse_dedup_pass(name);
        }
    }

    /// Resolved record pointers of `name` (for physical-layout analysis);
    /// `None` entries are holes. One entry per block pointer (fixed) or per
    /// chunk in logical order (CDC).
    pub fn block_refs(&self, name: &str) -> Option<Vec<Option<BlockRef>>> {
        let table = self.files.get(name)?;
        if let Some(chunks) = table.chunks.as_deref() {
            return Some(
                chunks
                    .iter()
                    .map(|c| {
                        let e = self.ddt.get(&c.key).expect("dangling chunk pointer");
                        Some(BlockRef { key: c.key, phys: e.phys, psize: e.psize })
                    })
                    .collect(),
            );
        }
        Some(
            table
                .ptrs
                .iter()
                .map(|p| {
                    p.map(|key| {
                        let e = self.ddt.get(&key).expect("dangling block pointer");
                        BlockRef { key, phys: e.phys, psize: e.psize }
                    })
                })
                .collect(),
        )
    }

    // --- snapshots ----------------------------------------------------------

    /// Create a read-only snapshot of the whole file set.
    pub fn snapshot(&mut self, tag: &str) {
        assert!(
            !self.snapshots.iter().any(|s| s.tag == tag),
            "duplicate snapshot tag {tag}"
        );
        for table in self.files.values() {
            for key in table.iter_keys() {
                self.ddt.add_ref(key, || unreachable!("snapshot references live block"));
            }
        }
        self.snapshots.push(Snapshot { tag: tag.to_string(), files: self.files.clone() });
    }

    /// Destroy a snapshot, freeing blocks nothing else references.
    pub fn destroy_snapshot(&mut self, tag: &str) -> bool {
        let Some(i) = self.snapshots.iter().position(|s| s.tag == tag) else {
            return false;
        };
        let snap = self.snapshots.remove(i);
        for table in snap.files.values() {
            for key in table.iter_keys() {
                self.ddt.release(&key);
            }
        }
        true
    }

    /// Snapshot tags, oldest first.
    pub fn snapshot_tags(&self) -> Vec<&str> {
        self.snapshots.iter().map(|s| s.tag.as_str()).collect()
    }

    pub fn latest_snapshot(&self) -> Option<&str> {
        self.snapshots.last().map(|s| s.tag.as_str())
    }

    /// File names captured by snapshot `tag`.
    pub fn snapshot_file_names(&self, tag: &str) -> Option<Vec<&str>> {
        self.find_snapshot(tag)
            .map(|s| s.files.keys().map(|k| k.as_str()).collect())
    }

    pub fn has_snapshot(&self, tag: &str) -> bool {
        self.snapshots.iter().any(|s| s.tag == tag)
    }

    pub(crate) fn find_snapshot(&self, tag: &str) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.tag == tag)
    }

    pub(crate) fn files(&self) -> &BTreeMap<String, FileTable> {
        &self.files
    }

    pub(crate) fn files_mut(&mut self) -> &mut BTreeMap<String, FileTable> {
        &mut self.files
    }

    pub(crate) fn ddt(&self) -> &ShardedDedupTable {
        &self.ddt
    }

    pub(crate) fn ddt_mut(&mut self) -> &mut ShardedDedupTable {
        &mut self.ddt
    }

    pub(crate) fn push_snapshot(&mut self, snap: Snapshot) {
        self.snapshots.push(snap);
    }

    // --- accounting ----------------------------------------------------------

    /// Current space accounting.
    pub fn stats(&self) -> SpaceStats {
        let logical_bytes: u64 = self.files.values().map(|f| f.len).sum();
        let live_ptrs: u64 = self.files.values().map(|f| f.ptr_count()).sum();
        let snap_ptrs: u64 = self
            .snapshots
            .iter()
            .flat_map(|s| s.files.values())
            .map(|f| f.ptr_count())
            .sum();
        let unique_blocks = self.ddt.len() as u64;
        SpaceStats {
            block_size: self.config.block_size as u64,
            logical_bytes,
            unique_blocks,
            physical_bytes: self.ddt.physical_bytes(),
            ddt_disk_bytes: unique_blocks * self.config.ddt_disk_entry_bytes,
            ddt_memory_bytes: unique_blocks * self.config.ddt_mem_entry_bytes,
            bp_disk_bytes: (live_ptrs + snap_ptrs) * self.config.bp_disk_bytes,
        }
    }

    /// Fraction of `name`'s nonzero blocks whose DDT refcount exceeds
    /// `threshold` — with `threshold` set to the number of references a
    /// lone file would hold (1 + live snapshots), this measures how much of
    /// the file is deduplicated against *other* content, the input to the
    /// boot simulator's scattering model.
    pub fn file_shared_fraction(&self, name: &str, threshold: u64) -> Option<f64> {
        let table = self.files.get(name)?;
        let mut total = 0u64;
        let mut shared = 0u64;
        for key in table.iter_keys() {
            total += 1;
            if self.ddt.get(&key).map(|e| e.refcount).unwrap_or(0) > threshold {
                shared += 1;
            }
        }
        Some(if total == 0 { 0.0 } else { shared as f64 / total as f64 })
    }

    /// In-core dedup-table footprint: per-entry overhead × unique blocks —
    /// the paper's ~60 MB-per-node memory budget axis (Figure 10).
    pub fn ddt_memory_bytes(&self) -> u64 {
        self.ddt.len() as u64 * self.config.ddt_mem_entry_bytes
    }

    /// How far this pool is over its configured hoard budget
    /// ([`PoolConfig::disk_quota_bytes`] / [`PoolConfig::ddt_mem_quota_bytes`];
    /// `0` = unlimited on that axis). The pool reports pressure; whole-cache
    /// eviction policy lives with the node layer.
    pub fn quota_excess(&self) -> crate::QuotaExcess {
        let s = self.stats();
        let over = |used: u64, quota: u64| {
            if quota == 0 {
                0
            } else {
                used.saturating_sub(quota)
            }
        };
        crate::QuotaExcess {
            disk_bytes: over(s.total_disk_bytes(), self.config.disk_quota_bytes),
            ddt_mem_bytes: over(s.ddt_memory_bytes, self.config.ddt_mem_quota_bytes),
        }
    }

    /// True when the pool is within its hoard budget on both axes (always
    /// true for unlimited pools).
    pub fn within_quota(&self) -> bool {
        self.quota_excess().is_zero()
    }

    /// Publish the pool's space accounting as gauges. Gauges are
    /// last-write-wins, so call this only from serial workflow code (the
    /// pool's counters stay deterministic under fan-out; these gauges are a
    /// snapshot, not an accumulator).
    pub fn publish_space_gauges(&self, metrics: &Metrics) {
        let s = self.stats();
        metrics.set_gauge("zpool_disk_bytes", s.total_disk_bytes());
        metrics.set_gauge("zpool_ddt_entries", s.unique_blocks);
        metrics.set_gauge("zpool_ddt_mem_bytes", s.ddt_memory_bytes);
        metrics.set_gauge_f64("zpool_scatter", self.mean_file_extents());
    }

    /// Purge `name` everywhere: the live dataset *and* every snapshot drop
    /// the file, releasing all of its block references. Unlike
    /// [`delete_file`](Self::delete_file) — where snapshots keep pinning the
    /// payloads — a purge frees every DDT entry nothing else shares, which
    /// is what hoard-budget eviction needs to reclaim disk and DDT memory.
    /// Returns whether anything was removed.
    pub fn purge_file(&mut self, name: &str) -> bool {
        let mut removed: Vec<FileTable> = Vec::new();
        if let Some(t) = self.files.remove(name) {
            removed.push(t);
        }
        for snap in &mut self.snapshots {
            if let Some(t) = snap.files.remove(name) {
                removed.push(t);
            }
        }
        let any = !removed.is_empty();
        for table in removed {
            for key in table.iter_keys() {
                self.ddt.release(&key);
            }
        }
        any
    }

    // --- physical layout ----------------------------------------------------

    /// The physical layout of `name`'s data records in logical order (holes
    /// excluded): fixed files yield one record per nonzero block pointer,
    /// chunked files one per chunk. `None` if the file does not exist.
    pub fn file_layout(&self, name: &str) -> Option<Vec<RecordLoc>> {
        let table = self.files.get(name)?;
        let mut out = Vec::new();
        if let Some(chunks) = table.chunks.as_deref() {
            for c in chunks {
                let e = self.ddt.get(&c.key).expect("dangling chunk pointer");
                out.push(RecordLoc {
                    logical_off: c.logical_off,
                    llen: c.len,
                    phys: e.phys,
                    psize: e.psize,
                });
            }
        } else {
            let bs = self.config.block_size as u64;
            for (i, p) in table.ptrs.iter().enumerate() {
                if let Some(key) = p {
                    let e = self.ddt.get(key).expect("dangling block pointer");
                    out.push(RecordLoc {
                        logical_off: i as u64 * bs,
                        llen: e.lsize,
                        phys: e.phys,
                        psize: e.psize,
                    });
                }
            }
        }
        Some(out)
    }

    /// Measure `name`'s on-disk scatter: extents and physical gaps along
    /// the logical read order. This is what a sequential reader (a booting
    /// VM walking its cache) actually pays, and what
    /// `BootSim::boot_measured` prices.
    pub fn file_scatter(&self, name: &str) -> Option<FileScatter> {
        let layout = self.file_layout(name)?;
        let mut s = FileScatter::default();
        let mut gap_sum = 0u64;
        let mut min_phys = u64::MAX;
        let mut max_end = 0u64;
        let mut prev_end: Option<u64> = None;
        for r in &layout {
            s.records += 1;
            s.data_bytes += r.psize as u64;
            min_phys = min_phys.min(r.phys);
            max_end = max_end.max(r.phys + r.psize as u64);
            match prev_end {
                Some(end) if end == r.phys => {}
                other => {
                    s.extents += 1;
                    if let Some(end) = other {
                        gap_sum += end.abs_diff(r.phys);
                    }
                }
            }
            prev_end = Some(r.phys + r.psize as u64);
        }
        if s.records > 1 {
            s.mean_gap_bytes = gap_sum as f64 / (s.records - 1) as f64;
        }
        if s.records > 0 {
            s.span_bytes = max_end - min_phys;
        }
        Some(s)
    }

    /// Mean extent count over all live files with data (the
    /// `zpool_scatter` gauge): `1.0` means every file reads sequentially.
    pub fn mean_file_extents(&self) -> f64 {
        let mut files = 0u64;
        let mut extents = 0u64;
        for name in self.files.keys() {
            let s = self.file_scatter(name).expect("live file");
            if s.records > 0 {
                files += 1;
                extents += s.extents;
            }
        }
        if files == 0 {
            0.0
        } else {
            extents as f64 / files as f64
        }
    }

    /// RevDedup-style reverse pass: relocate every distinct block of
    /// `name`, in logical read order, onto fresh sequential extents at the
    /// allocation cursor. Older snapshots' pointers chase the moves for
    /// free (physical location lives only in the DDT entry), so *they*
    /// inherit the scatter while the latest import becomes contiguous; the
    /// superseded old extents become holes. Content, refcounts, and
    /// physical accounting are untouched — only placement changes. `None`
    /// if the file does not exist.
    pub fn reverse_dedup_pass(&mut self, name: &str) -> Option<ReverseDedupReport> {
        let before = self.file_scatter(name)?;
        let keys: Vec<BlockKey> = {
            let table = self.files.get(name).expect("checked above");
            let mut seen = squirrel_hash::FnvHashSet::default();
            table.iter_keys().filter(|k| seen.insert(*k)).collect()
        };
        let mut report = ReverseDedupReport {
            extents_before: before.extents,
            ..Default::default()
        };
        for key in keys {
            let (_, psize) = self.ddt.reassign_phys(&key).expect("live key");
            report.keys_rewritten += 1;
            report.bytes_freed += psize as u64;
        }
        report.extents_after = self.file_scatter(name).expect("still live").extents;
        self.meters.reverse_extents_rewritten.add(report.keys_rewritten);
        self.meters.reverse_bytes_freed.add(report.bytes_freed);
        Some(report)
    }

    /// Invariant check used by tests: every refcount equals the number of
    /// live + snapshot pointers to that block.
    pub fn check_refcounts(&self) -> bool {
        let mut counts: std::collections::HashMap<BlockKey, u64> = std::collections::HashMap::new();
        for table in self.files.values() {
            for key in table.iter_keys() {
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        for snap in &self.snapshots {
            for table in snap.files.values() {
                for key in table.iter_keys() {
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        if counts.len() != self.ddt.len() {
            return false;
        }
        counts.iter().all(|(k, &c)| self.ddt.get(k).map(|e| e.refcount) == Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squirrel_compress::Codec;

    fn pool(bs: usize) -> ZPool {
        ZPool::new(PoolConfig::new(bs, Codec::Lzjb))
    }

    fn block(bs: usize, fill: u8) -> Vec<u8> {
        vec![fill; bs]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut p = pool(1024);
        p.create_file("a");
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        p.write_block("a", 0, &data);
        assert_eq!(p.read_block("a", 0).expect("file"), data);
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 3, &block(512, 9));
        assert_eq!(p.read_block("a", 0).expect("file"), block(512, 0));
        assert_eq!(p.read_block("a", 100).expect("file"), block(512, 0));
    }

    #[test]
    fn zero_blocks_punch_holes_and_cost_nothing() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 0));
        assert_eq!(p.stats().unique_blocks, 0);
        assert_eq!(p.stats().physical_bytes, 0);
    }

    #[test]
    fn identical_blocks_dedup_across_files() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        p.write_block("a", 0, &block(512, 7));
        p.write_block("b", 0, &block(512, 7));
        p.write_block("b", 1, &block(512, 8));
        let s = p.stats();
        assert_eq!(s.unique_blocks, 2);
        assert!(p.check_refcounts());
    }

    #[test]
    fn overwrite_releases_old_block() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("a", 0, &block(512, 2));
        assert_eq!(p.stats().unique_blocks, 1);
        assert_eq!(p.read_block("a", 0).expect("file"), block(512, 2));
        assert!(p.check_refcounts());
    }

    #[test]
    fn delete_file_frees_unshared_blocks() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("b", 0, &block(512, 1));
        p.write_block("b", 1, &block(512, 2));
        p.delete_file("b");
        let s = p.stats();
        assert_eq!(s.unique_blocks, 1, "shared block survives, private freed");
        assert!(p.check_refcounts());
    }

    #[test]
    fn snapshot_preserves_deleted_file_blocks() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 5));
        p.snapshot("s1");
        p.delete_file("a");
        assert_eq!(p.stats().unique_blocks, 1, "snapshot holds the block");
        p.destroy_snapshot("s1");
        assert_eq!(p.stats().unique_blocks, 0);
        assert!(p.check_refcounts());
    }

    #[test]
    fn snapshot_tags_ordered_and_unique() {
        let mut p = pool(512);
        p.snapshot("one");
        p.snapshot("two");
        assert_eq!(p.snapshot_tags(), vec!["one", "two"]);
        assert_eq!(p.latest_snapshot(), Some("two"));
        assert!(p.has_snapshot("one"));
        assert!(!p.destroy_snapshot("absent"));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot tag")]
    fn duplicate_snapshot_panics() {
        let mut p = pool(512);
        p.snapshot("x");
        p.snapshot("x");
    }

    #[test]
    fn purge_file_frees_snapshot_pinned_blocks() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("b", 0, &block(512, 1)); // shared with "a"
        p.write_block("b", 1, &block(512, 2)); // private to "b"
        p.snapshot("s1");
        p.snapshot("s2");
        assert!(p.purge_file("b"));
        assert!(!p.has_file("b"));
        for tag in ["s1", "s2"] {
            assert_eq!(
                p.snapshot_file_names(tag).expect("snapshot"),
                vec!["a"],
                "{tag} must forget the purged file"
            );
        }
        let s = p.stats();
        assert_eq!(s.unique_blocks, 1, "shared block survives, private freed");
        assert!(p.check_refcounts());
        assert!(!p.purge_file("b"), "second purge is a no-op");
        assert!(!p.purge_file("never-existed"));
    }

    #[test]
    fn quota_excess_reports_pressure_per_axis() {
        let mut p = pool(512);
        p.create_file("a");
        for i in 0..4u64 {
            p.write_block("a", i, &block(512, i as u8 + 1));
        }
        let s = p.stats();
        assert_eq!(p.ddt_memory_bytes(), s.ddt_memory_bytes);
        assert_eq!(p.ddt_memory_bytes(), 4 * 120);
        // Unlimited (the default): never over.
        assert!(p.within_quota());
        assert!(p.quota_excess().is_zero());
        // Budget exactly equal to the footprint: still within.
        let mut exact = ZPool::new(
            PoolConfig::new(512, Codec::Lzjb)
                .with_quotas(s.total_disk_bytes(), s.ddt_memory_bytes),
        );
        exact.create_file("a");
        for i in 0..4u64 {
            exact.write_block("a", i, &block(512, i as u8 + 1));
        }
        assert!(exact.within_quota(), "quota == footprint is not over-budget");
        // Starved on both axes: excess is the shortfall, per axis.
        let mut starved = ZPool::new(
            PoolConfig::new(512, Codec::Lzjb)
                .with_quotas(s.total_disk_bytes() - 10, s.ddt_memory_bytes - 100),
        );
        starved.create_file("a");
        for i in 0..4u64 {
            starved.write_block("a", i, &block(512, i as u8 + 1));
        }
        let excess = starved.quota_excess();
        assert_eq!(excess.disk_bytes, 10);
        assert_eq!(excess.ddt_mem_bytes, 100);
        assert!(!starved.within_quota());
        // Back under budget once the file is purged.
        assert!(starved.purge_file("a"));
        assert!(starved.within_quota());
    }

    #[test]
    fn space_gauges_publish_current_footprint() {
        let registry = squirrel_obs::MetricsRegistry::new();
        let mut p = pool(512);
        p.set_metrics(&registry.handle());
        p.create_file("a");
        p.write_block("a", 0, &block(512, 3));
        p.publish_space_gauges(&registry.handle());
        let snap = registry.snapshot();
        let s = p.stats();
        assert_eq!(snap.gauge_u64("zpool_disk_bytes"), Some(s.total_disk_bytes()));
        assert_eq!(snap.gauge_u64("zpool_ddt_entries"), Some(1));
        assert_eq!(snap.gauge_u64("zpool_ddt_mem_bytes"), Some(120));
    }

    #[test]
    fn import_file_sets_logical_len() {
        let mut p = pool(512);
        let blocks = vec![block(512, 1), block(512, 2)];
        p.import_file("img", blocks.into_iter(), 900);
        assert_eq!(p.file_len("img"), Some(900));
        assert_eq!(p.read_block("img", 1).expect("file"), block(512, 2));
    }

    #[test]
    fn block_refs_expose_physical_layout() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("a", 1, &block(512, 0)); // hole
        p.write_block("a", 2, &block(512, 2));
        let refs = p.block_refs("a").expect("file");
        assert_eq!(refs.len(), 3);
        assert!(refs[0].is_some());
        assert!(refs[1].is_none());
        let (r0, r2) = (refs[0].expect("ref"), refs[2].expect("ref"));
        assert!(r2.phys >= r0.phys + r0.psize as u64, "arrival-order allocation");
    }

    #[test]
    fn compression_shrinks_physical() {
        let mut p = ZPool::new(PoolConfig::new(4096, Codec::Gzip(6)));
        p.create_file("a");
        let compressible: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(4096).collect();
        p.write_block("a", 0, &compressible);
        let s = p.stats();
        assert!(s.physical_bytes < 2048, "{}", s.physical_bytes);
    }

    #[test]
    fn accounting_only_pool_tracks_sizes_without_data() {
        let mut p = ZPool::new(PoolConfig::new(512, Codec::Lzjb).accounting_only());
        p.create_file("a");
        p.write_block("a", 0, &block(512, 3));
        assert!(p.stats().physical_bytes > 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.read_block("a", 0)));
        assert!(r.is_err(), "reading an accounting-only pool must panic");
    }

    #[test]
    fn create_file_replaces_existing() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.create_file("a");
        assert_eq!(p.file_len("a"), Some(0));
        assert_eq!(p.stats().unique_blocks, 0);
    }

    #[test]
    fn stats_bp_overhead_counts_live_and_snapshot_pointers() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        let before = p.stats().bp_disk_bytes;
        p.snapshot("s");
        let after = p.stats().bp_disk_bytes;
        assert_eq!(after, before * 2);
    }

    fn cdc_pool(bs: usize) -> ZPool {
        use squirrel_hash::cdc::{CdcParams, ChunkStrategy};
        ZPool::new(
            PoolConfig::new(bs, Codec::Lzjb)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(1024))),
        )
    }

    /// Patterned blocks with zero blocks, duplicates, and varied content.
    fn patterned(bs: usize, n: usize, salt: u8) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| match i % 4 {
                0 => vec![0u8; bs],
                1 | 3 => (0..bs)
                    .map(|j| (j as u8).wrapping_mul(7).wrapping_add(salt))
                    .collect(),
                _ => (0..bs)
                    .map(|j| (i as u8).wrapping_add(j as u8).wrapping_mul(13))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn cdc_import_reads_back_identically_to_fixed() {
        let bs = 512;
        let n = 24;
        let blocks = patterned(bs, n, 3);
        let len = (n * bs) as u64;
        let mut fixed = pool(bs);
        fixed.import_file("img", blocks.iter().cloned(), len);
        let mut cdc = cdc_pool(bs);
        cdc.import_file("img", blocks.iter().cloned(), len);
        for i in 0..n as u64 {
            assert_eq!(cdc.read_block("img", i), fixed.read_block("img", i), "block {i}");
            assert_eq!(
                cdc.read_block_shared("img", i).as_deref(),
                fixed.read_block_shared("img", i).as_deref(),
                "shared block {i}"
            );
        }
        assert!(cdc.check_refcounts());
        // Chunked lifecycle: snapshot, delete, destroy all balance.
        cdc.snapshot("s");
        cdc.delete_file("img");
        assert!(cdc.check_refcounts());
        cdc.destroy_snapshot("s");
        assert_eq!(cdc.stats().unique_blocks, 0);
    }

    #[test]
    fn cdc_hole_blocks_share_the_zero_buffer() {
        // A gap between sparse runs is a true hole (no chunk covers it);
        // its shared read hands out the pool's one zero buffer. Zero blocks
        // *inside* a run may be swallowed by a larger chunk — those still
        // read as zeros, just not through the shared fast path.
        let bs = 512;
        let mut cdc = cdc_pool(bs);
        cdc.import_blocks_parallel("img", &[(0u64, vec![7u8; bs]), (4, vec![9u8; bs])]);
        let hole = cdc.read_block_shared("img", 2).expect("file");
        assert!(Arc::ptr_eq(&hole, &cdc.zero_block_shared()), "holes share one buffer");
        assert_eq!(cdc.read_block("img", 0).expect("file"), vec![7u8; bs]);
        assert_eq!(cdc.read_block("img", 2).expect("file"), vec![0u8; bs]);
        assert_eq!(cdc.read_block("img", 4).expect("file"), vec![9u8; bs]);
    }

    #[test]
    #[should_panic(expected = "chunked files are import-only")]
    fn write_block_on_chunked_file_panics() {
        let bs = 512;
        let mut cdc = cdc_pool(bs);
        cdc.import_file("img", vec![vec![5u8; bs]].into_iter(), bs as u64);
        cdc.write_block("img", 0, &vec![6u8; bs]);
    }

    #[test]
    fn file_scatter_counts_extents_and_gaps() {
        let mut p = pool(512);
        p.create_file("a");
        p.write_block("a", 0, &block(512, 1));
        p.write_block("a", 1, &block(512, 2));
        let s = p.file_scatter("a").expect("file");
        assert_eq!(s.records, 2);
        assert_eq!(s.extents, 1, "back-to-back allocation is one extent");
        assert_eq!(s.mean_gap_bytes, 0.0);
        // An interleaving allocation from another file fragments "a".
        p.create_file("b");
        p.write_block("b", 0, &block(512, 3));
        p.write_block("a", 2, &block(512, 4));
        let s = p.file_scatter("a").expect("file");
        assert_eq!(s.records, 3);
        assert_eq!(s.extents, 2);
        assert!(s.mean_gap_bytes > 0.0);
        assert!(s.span_bytes > s.data_bytes, "gap stretches the span");
        assert!(p.file_scatter("nope").is_none());
        assert!((p.mean_file_extents() - 1.5).abs() < 1e-9, "(2 + 1) / 2 files");
    }

    #[test]
    fn reverse_pass_makes_interleaved_file_sequential() {
        let mut p = pool(512);
        p.create_file("a");
        p.create_file("b");
        for i in 0..4u64 {
            p.write_block("a", i, &block(512, 10 + i as u8));
            p.write_block("b", i, &block(512, 20 + i as u8));
        }
        assert!(p.file_scatter("b").expect("file").extents > 1, "interleaved");
        p.snapshot("s1");
        let before: Vec<Vec<u8>> =
            (0..4).map(|i| p.read_block("b", i).expect("file")).collect();
        let phys_before = p.stats().physical_bytes;

        let report = p.reverse_dedup_pass("b").expect("file");
        assert!(report.extents_after < report.extents_before);
        assert_eq!(report.keys_rewritten, 4);
        assert_eq!(p.file_scatter("b").expect("file").extents, 1, "fully sequential");
        // Content, refcounts, and physical accounting are untouched.
        for i in 0..4u64 {
            assert_eq!(p.read_block("b", i).expect("file"), before[i as usize]);
            assert_eq!(p.read_block("a", i).expect("file"), block(512, 10 + i as u8));
        }
        assert_eq!(p.stats().physical_bytes, phys_before, "holes, not growth");
        assert!(p.check_refcounts());
        assert!(p.reverse_dedup_pass("nope").is_none());
    }

    #[test]
    fn reverse_mode_import_lands_sequential() {
        use crate::config::DedupMode;
        let mut p = ZPool::new(
            PoolConfig::new(512, Codec::Lzjb).with_dedup_mode(DedupMode::Reverse),
        );
        let v1: Vec<Vec<u8>> = (0..6).map(|i| block(512, 1 + i as u8)).collect();
        p.import_file("v1", v1.iter().cloned(), 6 * 512);
        p.snapshot("s1");
        // v2 shares half of v1's blocks — scattered under forward dedup,
        // sequential after the import's trailing reverse pass.
        let v2: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    block(512, 1 + i as u8)
                } else {
                    block(512, 100 + i as u8)
                }
            })
            .collect();
        p.import_file("v2", v2.iter().cloned(), 6 * 512);
        assert_eq!(p.file_scatter("v2").expect("file").extents, 1);
        for (i, b) in v2.iter().enumerate() {
            assert_eq!(p.read_block("v2", i as u64).expect("file"), *b);
        }
        assert!(p.check_refcounts());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use squirrel_compress::Codec;

    #[derive(Debug, Clone)]
    enum Op {
        Write { file: u8, idx: u8, fill: u8 },
        Delete { file: u8 },
        Snapshot,
        DestroyOldestSnapshot,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..3, 0u8..8, any::<u8>()).prop_map(|(file, idx, fill)| Op::Write { file, idx, fill }),
            (0u8..3).prop_map(|file| Op::Delete { file }),
            Just(Op::Snapshot),
            Just(Op::DestroyOldestSnapshot),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn refcounts_always_consistent(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut p = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
            let mut snap_seq = 0u32;
            for f in 0..3 {
                p.create_file(&format!("f{f}"));
            }
            for op in ops {
                match op {
                    Op::Write { file, idx, fill } => {
                        p.write_block(&format!("f{file}"), idx as u64, &vec![fill; 512]);
                    }
                    Op::Delete { file } => {
                        let name = format!("f{file}");
                        p.delete_file(&name);
                        p.create_file(&name);
                    }
                    Op::Snapshot => {
                        p.snapshot(&format!("s{snap_seq}"));
                        snap_seq += 1;
                    }
                    Op::DestroyOldestSnapshot => {
                        if let Some(tag) = p.snapshot_tags().first().map(|s| s.to_string()) {
                            p.destroy_snapshot(&tag);
                        }
                    }
                }
                prop_assert!(p.check_refcounts());
            }
        }

        #[test]
        fn read_back_matches_last_write(
            writes in proptest::collection::vec((0u8..6, any::<u8>()), 1..40)
        ) {
            let mut p = ZPool::new(PoolConfig::new(512, Codec::Lz4));
            p.create_file("f");
            let mut model: std::collections::HashMap<u8, u8> = Default::default();
            for (idx, fill) in writes {
                p.write_block("f", idx as u64, &vec![fill; 512]);
                model.insert(idx, fill);
            }
            for (idx, fill) in model {
                prop_assert_eq!(p.read_block("f", idx as u64).expect("file"), vec![fill; 512]);
            }
        }

        /// Differential: the same corpus imported under fixed and CDC
        /// chunking must read back byte-identically at every block, through
        /// both the owned and shared read paths.
        #[test]
        fn cdc_reads_match_fixed_reads(
            specs in proptest::collection::vec((0u8..4, any::<u8>()), 1..24)
        ) {
            use squirrel_hash::cdc::{CdcParams, ChunkStrategy};
            let bs = 512usize;
            let blocks: Vec<Vec<u8>> = specs
                .iter()
                .map(|&(kind, fill)| match kind {
                    0 => vec![0u8; bs],
                    1 => vec![fill; bs],
                    2 => (0..bs).map(|j| (j as u8).wrapping_mul(fill | 1)).collect(),
                    _ => (0..bs).map(|j| fill.wrapping_add(j as u8)).collect(),
                })
                .collect();
            let len = (blocks.len() * bs) as u64;
            let mut fixed = ZPool::new(PoolConfig::new(bs, Codec::Lz4));
            fixed.import_file("f", blocks.iter().cloned(), len);
            let mut cdc = ZPool::new(
                PoolConfig::new(bs, Codec::Lz4)
                    .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(1024))),
            );
            cdc.import_file("f", blocks.iter().cloned(), len);
            for i in 0..blocks.len() as u64 {
                prop_assert_eq!(cdc.read_block("f", i), fixed.read_block("f", i));
                prop_assert_eq!(
                    cdc.read_block_shared("f", i).as_deref().map(<[u8]>::to_vec),
                    fixed.read_block_shared("f", i).as_deref().map(<[u8]>::to_vec)
                );
            }
            prop_assert!(cdc.check_refcounts());
        }

        /// Differential: a reverse-dedup pass changes *placement only* —
        /// every file and snapshot reads back identically, refcounts and
        /// physical accounting are untouched, and the relocated file's
        /// extent count never grows.
        #[test]
        fn reverse_pass_preserves_content_and_never_fragments(
            specs in proptest::collection::vec((0u8..3, any::<u8>(), any::<bool>()), 2..24)
        ) {
            let bs = 512usize;
            let mut p = ZPool::new(PoolConfig::new(bs, Codec::Lzjb));
            p.create_file("old");
            p.create_file("new");
            // Interleave writes so "new" picks up scattered shared extents.
            for (i, &(kind, fill, share)) in specs.iter().enumerate() {
                let b: Vec<u8> = match kind {
                    0 => vec![fill | 1; bs],
                    1 => (0..bs).map(|j| fill.wrapping_add(j as u8) | 1).collect(),
                    _ => (0..bs).map(|j| (j as u8).wrapping_mul(fill | 1) | 1).collect(),
                };
                p.write_block("old", i as u64, &b);
                if share {
                    p.write_block("new", i as u64, &b);
                } else {
                    p.write_block("new", i as u64, &vec![(fill ^ 0xa5) | 1; bs]);
                }
            }
            p.snapshot("s1");
            let n = specs.len() as u64;
            let read_all = |p: &ZPool, name: &str| -> Vec<Vec<u8>> {
                (0..n).map(|i| p.read_block(name, i).expect("file")).collect()
            };
            let old_before = read_all(&p, "old");
            let new_before = read_all(&p, "new");
            let phys_before = p.stats().physical_bytes;
            let extents_before = p.file_scatter("new").expect("file").extents;

            let report = p.reverse_dedup_pass("new").expect("file");

            prop_assert_eq!(report.extents_before, extents_before);
            prop_assert!(report.extents_after <= extents_before);
            prop_assert_eq!(read_all(&p, "old"), old_before);
            prop_assert_eq!(read_all(&p, "new"), new_before);
            prop_assert_eq!(p.stats().physical_bytes, phys_before);
            prop_assert!(p.check_refcounts());
            prop_assert!(p.scrub().is_clean());
        }
    }
}
