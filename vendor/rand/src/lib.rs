//! Offline shim for the `rand` API surface this workspace uses.
//!
//! Provides a seeded [`rngs::StdRng`] (SplitMix64) plus the [`RngExt`]
//! sampling methods (`random`, `random_range`) and [`SeedableRng`]. Only
//! `#[cfg(test)]` code may depend on this crate; it is deterministic by
//! construction so test data is reproducible across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64: tiny, fast, and statistically fine for test data.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x5851f42d4c957f2d }
        }
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by `rng.random_range(..)`. The output type is a generic
/// parameter (as in upstream rand) so the use site — e.g. indexing a slice —
/// can drive inference of integer-literal range bounds.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Sampling conveniences over any [`RngCore`] (rand 0.10's `Rng`).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
        }
    }
}
