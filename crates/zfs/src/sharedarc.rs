//! A concurrency-safe, shard-locked ARC for boot storms.
//!
//! [`ArcCache`] needs `&mut self`; during a boot storm N booting VMs hammer
//! one ccVolume's cache simultaneously, so [`SharedArcCache`] wraps a set of
//! `Mutex<ArcCache>` shards keyed by block key. `read_through` takes `&self`
//! and can be called from any number of `squirrel_hash::par` workers at
//! once; each block key always maps to the same shard, so a given block is
//! decompressed at most once per residency (the fill happens under the
//! shard lock — single-flight per key).
//!
//! Determinism: payload bytes returned are bit-identical to the serial
//! [`ArcCache`] path at any thread count (both alias the pool's shared
//! payloads). Aggregate counters (`reads`, `fills`) are additive and
//! commute, so metric snapshots are thread-count-invariant as long as the
//! cache never evicts — size the cache at or above the working set, as the
//! boot-storm bench does. Per-shard LRU order is the only schedule-dependent
//! state, and it is deliberately not exposed.

use crate::arc::{ArcCache, ArcStats};
use crate::ddt::{BlockKey, SharedPayload};
use crate::pool::ZPool;
use squirrel_obs::{Counter, Metrics};
use std::sync::{Arc, Mutex};

/// Shard-locked ARC: interior mutability over [`ArcCache`] shards so
/// concurrent readers only contend when their blocks map to the same shard.
pub struct SharedArcCache {
    shards: Vec<Mutex<ArcCache>>,
    reads: Counter,
    fills: Counter,
}

impl SharedArcCache {
    /// Build with `capacity_bytes` split evenly across `shards` shards
    /// (at least one). More shards = less lock contention; the byte budget
    /// is a per-shard bound, so pathological key distributions can evict
    /// earlier than a single monolithic cache would.
    pub fn new(capacity_bytes: u64, shards: usize) -> Self {
        let n = shards.max(1);
        let per_shard = capacity_bytes.div_ceil(n as u64);
        SharedArcCache {
            shards: (0..n).map(|_| Mutex::new(ArcCache::new(per_shard))).collect(),
            reads: Counter::default(),
            fills: Counter::default(),
        }
    }

    /// Attach observability. The shard caches accumulate into the shared
    /// `arc_*_total` counters (thread-safe atomics), and the wrapper adds
    /// `shared_arc_reads_total` / `shared_arc_fills_total`.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.reads = metrics.counter("shared_arc_reads_total");
        self.fills = metrics.counter("shared_arc_fills_total");
        for shard in &self.shards {
            shard.lock().expect("shard poisoned").set_metrics(metrics);
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: BlockKey) -> &Mutex<ArcCache> {
        &self.shards[(key % self.shards.len() as u128) as usize]
    }

    /// Concurrent read-through: hit bumps the payload refcount, miss
    /// decompresses under the shard lock and caches the produced buffer.
    /// Semantics match [`ArcCache::read_through`] exactly (missing file →
    /// `None`, hole → shared zero block).
    pub fn read_through(
        &self,
        pool: &ZPool,
        file: &str,
        block_idx: u64,
    ) -> Option<SharedPayload> {
        self.reads.inc();
        match pool.block_ref(file, block_idx)? {
            None => Some(pool.zero_block_shared()),
            Some(r) => {
                let mut shard = self.shard(r.key).lock().expect("shard poisoned");
                if let Some(data) = shard.get(r.key) {
                    return Some(Arc::clone(data));
                }
                let data = pool.read_block_shared(file, block_idx)?;
                self.fills.inc();
                shard.insert(r.key, Arc::clone(&data));
                Some(data)
            }
        }
    }

    /// Aggregate statistics summed over all shards.
    pub fn stats(&self) -> ArcStats {
        let mut total = ArcStats::default();
        for shard in &self.shards {
            let s = shard.lock().expect("shard poisoned").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Total cached bytes across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").used_bytes())
            .sum()
    }

    /// Total cached entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use squirrel_compress::Codec;

    fn pool_with_file(blocks: &[u8]) -> ZPool {
        let mut pool = ZPool::new(PoolConfig::new(512, Codec::Lz4));
        pool.create_file("img");
        for (i, &f) in blocks.iter().enumerate() {
            pool.write_block("img", i as u64, &vec![f; 512]);
        }
        pool
    }

    #[test]
    fn matches_serial_arc_semantics() {
        let pool = pool_with_file(&[1, 2, 3]);
        let shared = SharedArcCache::new(1 << 20, 4);
        let mut serial = ArcCache::new(1 << 20);
        for idx in [0u64, 1, 2, 0, 1, 2, 7] {
            let a = shared.read_through(&pool, "img", idx).expect("file");
            let b = serial.read_through(&pool, "img", idx).expect("file");
            assert_eq!(a, b, "idx {idx}");
        }
        assert!(shared.read_through(&pool, "missing", 0).is_none());
        assert_eq!(shared.stats(), serial.stats());
    }

    #[test]
    fn warm_hits_alias_one_buffer() {
        let pool = pool_with_file(&[9]);
        let shared = SharedArcCache::new(1 << 20, 2);
        let a = shared.read_through(&pool, "img", 0).expect("file");
        let b = shared.read_through(&pool, "img", 0).expect("file");
        assert!(Arc::ptr_eq(&a, &b), "warm read is a refcount bump");
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(shared.stats().misses, 1);
    }

    #[test]
    fn concurrent_readers_bit_identical_at_any_thread_count() {
        let pool = pool_with_file(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let reference: Vec<_> = (0..8u64)
            .map(|i| pool.read_block("img", i).expect("file"))
            .collect();
        for threads in [1usize, 2, 8] {
            let cache = SharedArcCache::new(1 << 20, 4);
            let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cache = &cache;
                        let pool = &pool;
                        scope.spawn(move || {
                            (0..8u64)
                                .map(|i| {
                                    cache.read_through(pool, "img", i).expect("file").to_vec()
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("reader panicked"))
                    .collect()
            });
            for (i, got) in results.iter().enumerate() {
                assert_eq!(got, &reference[i % 8], "threads={threads} read {i}");
            }
            // Cache sized above the working set: each unique block fills
            // exactly once regardless of reader count.
            assert_eq!(cache.stats().misses, 8, "threads={threads}");
            assert_eq!(cache.stats().evictions, 0, "threads={threads}");
            assert_eq!(cache.len(), 8);
        }
    }

    #[test]
    fn counters_track_reads_and_fills() {
        let registry = squirrel_obs::MetricsRegistry::new();
        let pool = pool_with_file(&[1, 2]);
        let mut cache = SharedArcCache::new(1 << 20, 4);
        cache.set_metrics(&registry.handle());
        for _ in 0..3 {
            cache.read_through(&pool, "img", 0).expect("file");
            cache.read_through(&pool, "img", 1).expect("file");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("shared_arc_reads_total"), Some(6));
        assert_eq!(snap.counter("shared_arc_fills_total"), Some(2));
        assert_eq!(snap.counter("arc_bytes_copied_total"), Some(0));
    }

    #[test]
    fn oversized_insert_through_shards_keeps_residents() {
        // Shard caches inherit the ArcCache bypass ordering: a payload
        // larger than the shard must not flush the shard's residents.
        let pool = pool_with_file(&[1, 2]);
        let cache = SharedArcCache::new(1300, 1);
        cache.read_through(&pool, "img", 0).expect("file");
        cache.read_through(&pool, "img", 1).expect("file");
        assert_eq!(cache.len(), 2);
        let mut big = ZPool::new(PoolConfig::new(2048, Codec::Lz4));
        big.create_file("big");
        big.write_block("big", 0, &[7u8; 2048]);
        cache.read_through(&big, "big", 0).expect("file");
        assert_eq!(cache.len(), 2, "oversized fill must not evict residents");
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.used_bytes(), 1024);
    }

    #[test]
    fn shard_capacity_split_still_bounds_bytes() {
        // 8 distinct 512-byte blocks through a 1-shard 1024-byte cache:
        // evictions keep used bytes within capacity.
        let pool = pool_with_file(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let cache = SharedArcCache::new(1024, 1);
        for i in 0..8u64 {
            cache.read_through(&pool, "img", i).expect("file");
        }
        assert!(cache.used_bytes() <= 1024);
        assert!(cache.stats().evictions > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::PoolConfig;
    use proptest::prelude::*;
    use squirrel_compress::Codec;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Differential oracle: a single-shard [`SharedArcCache`] and the
        /// serial [`ArcCache`] driven by one op sequence must agree on every
        /// payload, every hit/miss/eviction counter, and the resident set —
        /// including capacities below the block size, where every fill takes
        /// the oversized bypass and must leave residents untouched.
        #[test]
        fn differential_shared_vs_serial(
            capacity in 100u64..2600,
            ops in proptest::collection::vec(0u64..12, 1..120),
        ) {
            let mut pool = ZPool::new(PoolConfig::new(512, Codec::Lz4));
            pool.create_file("img");
            for i in 0..9u64 {
                pool.write_block("img", i, &vec![i as u8 + 1; 512]);
            }
            // Block 9 is a hole (served from the shared zero block, never
            // cached); 10 and 11 are out of range.
            pool.write_block("img", 9, &[0u8; 512]);
            let shared = SharedArcCache::new(capacity, 1);
            let mut serial = ArcCache::new(capacity);
            for (step, &idx) in ops.iter().enumerate() {
                let a = shared.read_through(&pool, "img", idx);
                let b = serial.read_through(&pool, "img", idx);
                prop_assert_eq!(&a, &b, "payload diverged at step {} (idx {})", step, idx);
            }
            prop_assert_eq!(shared.stats(), serial.stats());
            prop_assert_eq!(shared.used_bytes(), serial.used_bytes());
            prop_assert_eq!(shared.len(), serial.len());
            // Residency probe: a full scan hits exactly the resident set, so
            // stats still matching after it proves the LRU contents match.
            for idx in 0..12u64 {
                let a = shared.read_through(&pool, "img", idx);
                let b = serial.read_through(&pool, "img", idx);
                prop_assert_eq!(a, b, "probe diverged at idx {}", idx);
            }
            prop_assert_eq!(shared.stats(), serial.stats());
        }
    }
}
