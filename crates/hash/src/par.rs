//! Minimal std-only scoped worker pool (`std::thread::scope`; no external
//! thread crates, per the workspace dependency policy).
//!
//! Two shapes cover every parallel stage in the workspace:
//!
//! * [`run_workers`] — fixed worker count, each worker owns a round-robin
//!   slice of the input (the corpus-analysis shape).
//! * [`parallel_map`] — dynamic work-stealing over a slice via an atomic
//!   cursor, results returned **in input order** (the ingest-pipeline
//!   shape). Output order is independent of scheduling, which is what lets
//!   callers promise bit-identical results at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a `threads` knob: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Run `n_workers` copies of `work` (each told its worker index) on scoped
/// threads and collect their results in worker order. With one worker the
/// closure runs on the calling thread.
pub fn run_workers<R, F>(n_workers: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = n_workers.max(1);
    if n == 1 {
        return vec![work(0)];
    }
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..n).map(|w| scope.spawn(move || work(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Batch size pulled from the shared cursor per grab; amortizes contention
/// while keeping the tail balanced.
const GRAB: usize = 16;

/// Apply `f` to every item of `items` across up to `threads` scoped workers
/// (0 = all cores), returning results in input order regardless of how the
/// work was scheduled.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_indices(items.len(), threads, |i| f(i, &items[i]))
}

/// Apply `f` to every index in `0..count` across up to `threads` scoped
/// workers (0 = all cores), results in index order. The index-space variant
/// of [`parallel_map`] for callers whose work items are *generated* — e.g.
/// the M VMs of a boot storm — rather than stored in a slice.
pub fn parallel_map_indices<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = resolve_threads(threads).min(count.max(1));
    if n <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let parts = run_workers(n, |_w| {
        let mut out: Vec<(usize, R)> = Vec::new();
        loop {
            let start = cursor.fetch_add(GRAB, Ordering::Relaxed);
            if start >= count {
                break;
            }
            for i in start..(start + GRAB).min(count) {
                out.push((i, f(i)));
            }
        }
        out
    });
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn run_workers_orders_by_worker() {
        assert_eq!(run_workers(4, |w| w * 10), vec![0, 10, 20, 30]);
        assert_eq!(run_workers(1, |w| w), vec![0]);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(&items, threads, |i, &x| x * 2 + i as u64);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_indices_matches_serial() {
        for threads in [1, 2, 8] {
            let out = parallel_map_indices(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map_indices(0, 8, |i| i).is_empty());
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &b| b).is_empty());
        assert_eq!(parallel_map(&[7u8], 8, |_, &b| b + 1), vec![8]);
    }
}
