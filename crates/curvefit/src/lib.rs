//! Curve fitting for the paper's extrapolation study (Section 4.3.2).
//!
//! The paper feeds half of its resource-consumption data points to a curve
//! fitter, asks for the two best non-polynomial fits plus linear regression,
//! scores all three by RMSE over *all* points, and extrapolates with the
//! winner. The two non-polynomial shapes it ends up with are the
//! Morgan-Mercer-Flodin (MMF) and Hoerl curves:
//!
//! * MMF:   `f(x) = (a·b + c·x^d) / (b + x^d)`
//! * Hoerl: `f(x) = a · b^x · x^c`
//!
//! Linear least squares is closed-form; the nonlinear fits minimize sum of
//! squared residuals with Nelder–Mead from several deterministic starting
//! simplexes.

mod nelder;

pub use nelder::{nelder_mead, NelderMeadOptions};

/// A fitted model that can predict and report its parameters.
#[derive(Clone, Debug)]
pub enum FittedCurve {
    Linear { intercept: f64, slope: f64 },
    Mmf { a: f64, b: f64, c: f64, d: f64 },
    Hoerl { a: f64, b: f64, c: f64 },
}

impl FittedCurve {
    /// Evaluate the curve at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        match *self {
            FittedCurve::Linear { intercept, slope } => intercept + slope * x,
            FittedCurve::Mmf { a, b, c, d } => {
                let xd = x.max(0.0).powf(d);
                (a * b + c * xd) / (b + xd)
            }
            FittedCurve::Hoerl { a, b, c } => a * b.powf(x) * x.max(1e-12).powf(c),
        }
    }

    /// Name used in figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            FittedCurve::Linear { .. } => "linear",
            FittedCurve::Mmf { .. } => "MMF",
            FittedCurve::Hoerl { .. } => "hoerl",
        }
    }
}

/// Root-mean-square error of `curve` on `(xs, ys)`.
pub fn rmse(curve: &FittedCurve, xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty());
    let sse: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = curve.predict(x) - y;
            e * e
        })
        .sum();
    (sse / xs.len() as f64).sqrt()
}

/// Ordinary least squares line fit.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> FittedCurve {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let slope = if denom.abs() < 1e-12 { 0.0 } else { (n * sxy - sx * sy) / denom };
    let intercept = (sy - slope * sx) / n;
    FittedCurve::Linear { intercept, slope }
}

fn sse_of(params_to_curve: impl Fn(&[f64]) -> FittedCurve, xs: &[f64], ys: &[f64], p: &[f64]) -> f64 {
    let curve = params_to_curve(p);
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let v = curve.predict(x);
            if v.is_finite() {
                let e = v - y;
                e * e
            } else {
                1e30
            }
        })
        .sum()
}

/// Fit the MMF curve by Nelder–Mead from several deterministic starts.
pub fn fit_mmf(xs: &[f64], ys: &[f64]) -> FittedCurve {
    assert!(xs.len() >= 4, "MMF has four parameters");
    let y0 = ys.first().copied().unwrap_or(0.0);
    let ymax = ys.iter().copied().fold(f64::MIN, f64::max);
    let xmax = xs.iter().copied().fold(f64::MIN, f64::max).max(1.0);
    let to_curve = |p: &[f64]| FittedCurve::Mmf { a: p[0], b: p[1].abs().max(1e-9), c: p[2], d: p[3] };
    let mut best: Option<(f64, Vec<f64>)> = None;
    for &(c_mult, d0) in &[(1.5, 1.0), (2.0, 0.8), (1.2, 1.2), (3.0, 0.5)] {
        let start = vec![y0, xmax.powf(d0), ymax * c_mult, d0];
        let (p, sse) = nelder_mead(
            |p| sse_of(to_curve, xs, ys, p),
            &start,
            NelderMeadOptions::default(),
        );
        if best.as_ref().is_none_or(|(s, _)| sse < *s) {
            best = Some((sse, p));
        }
    }
    to_curve(&best.expect("at least one start").1)
}

/// Fit the Hoerl curve. With `y = a·b^x·x^c` and positive data, fitting
/// `ln y = ln a + x·ln b + c·ln x` is linear least squares in three
/// unknowns; refine the log-domain solution with Nelder–Mead on the real
/// residuals.
pub fn fit_hoerl(xs: &[f64], ys: &[f64]) -> FittedCurve {
    assert!(xs.len() >= 3, "Hoerl has three parameters");
    assert!(
        xs.iter().all(|&x| x > 0.0) && ys.iter().all(|&y| y > 0.0),
        "Hoerl fit needs positive data"
    );
    // Log-domain normal equations for [ln a, ln b, c].
    let rows: Vec<[f64; 3]> = xs.iter().map(|&x| [1.0, x, x.ln()]).collect();
    let rhs: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for (r, &b) in rows.iter().zip(&rhs) {
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += r[i] * r[j];
            }
            atb[i] += r[i] * b;
        }
    }
    let sol = solve3(ata, atb).unwrap_or([0.0, 0.0, 0.0]);
    let start = vec![sol[0].exp(), sol[1].exp(), sol[2]];
    let to_curve = |p: &[f64]| FittedCurve::Hoerl { a: p[0], b: p[1].abs().max(1e-12), c: p[2] };
    let (p, _) = nelder_mead(
        |p| sse_of(to_curve, xs, ys, p),
        &start,
        NelderMeadOptions::default(),
    );
    to_curve(&p)
}

/// Solve a 3x3 linear system by Gaussian elimination with partial pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("no NaN")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (x, p) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut v = b[row];
        for k in row + 1..3 {
            v -= a[row][k] * x[k];
        }
        x[row] = v / a[row][row];
    }
    Some(x)
}

/// The paper's model-selection procedure: train candidate curves on the
/// first half of the data, score RMSE on all points, return candidates
/// sorted best-first.
pub fn select_model(xs: &[f64], ys: &[f64]) -> Vec<(FittedCurve, f64)> {
    let half = xs.len() / 2;
    let (txs, tys) = (&xs[..half.max(2)], &ys[..half.max(2)]);
    let mut candidates = vec![fit_linear(txs, tys)];
    if txs.len() >= 4 && txs.iter().all(|&x| x > 0.0) && tys.iter().all(|&y| y > 0.0) {
        candidates.push(fit_mmf(txs, tys));
        candidates.push(fit_hoerl(txs, tys));
    }
    let mut scored: Vec<(FittedCurve, f64)> =
        candidates.into_iter().map(|c| (rmse(&c, xs, ys), c)).map(|(r, c)| (c, r)).collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let c = fit_linear(&xs, &ys);
        if let FittedCurve::Linear { intercept, slope } = c {
            assert!((intercept - 3.0).abs() < 1e-9);
            assert!((slope - 2.0).abs() < 1e-9);
        } else {
            panic!("wrong variant");
        }
        assert!(rmse(&c, &xs, &ys) < 1e-9);
    }

    #[test]
    fn hoerl_fit_recovers_parameters() {
        let (a, b, c): (f64, f64, f64) = (2.5, 1.001, 0.7);
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * b.powf(x) * x.powf(c)).collect();
        let fit = fit_hoerl(&xs, &ys);
        assert!(rmse(&fit, &xs, &ys) < 0.05 * ys.last().expect("nonempty"), "{fit:?}");
    }

    #[test]
    fn mmf_fit_tracks_saturating_data() {
        // MMF saturates toward c; generate such data and require a close fit.
        let (a, b, c, d) = (1.0, 500.0, 80.0, 1.1);
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 12.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let xd = x.powf(d);
                (a * b + c * xd) / (b + xd)
            })
            .collect();
        let fit = fit_mmf(&xs, &ys);
        let e = rmse(&fit, &xs, &ys);
        assert!(e < 2.0, "rmse {e} fit {fit:?}");
    }

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        let c = FittedCurve::Linear { intercept: 0.0, slope: 1.0 };
        assert_eq!(rmse(&c, &[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&c, &[1.0], &[3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn select_model_prefers_linear_on_linear_data() {
        let xs: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 + 0.25 * x).collect();
        let ranked = select_model(&xs, &ys);
        assert_eq!(ranked[0].0.name(), "linear", "{ranked:?}");
    }

    #[test]
    fn select_model_prefers_mmf_on_saturating_data() {
        // Memory consumption in the paper saturates; MMF should win there.
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 15.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (2.0 * 300.0 + 90.0 * x.powf(1.2)) / (300.0 + x.powf(1.2))).collect();
        let ranked = select_model(&xs, &ys);
        assert_eq!(ranked[0].0.name(), "MMF", "{:?}", ranked.iter().map(|(c, r)| (c.name(), *r)).collect::<Vec<_>>());
    }

    #[test]
    fn extrapolation_is_finite_and_monotone_for_linear() {
        let c = fit_linear(&[0.0, 100.0], &[1.0, 11.0]);
        let far = c.predict(3000.0);
        assert!(far.is_finite());
        assert!(far > c.predict(1000.0));
    }

    #[test]
    fn curve_names() {
        assert_eq!(FittedCurve::Linear { intercept: 0.0, slope: 0.0 }.name(), "linear");
        assert_eq!(FittedCurve::Mmf { a: 0.0, b: 1.0, c: 0.0, d: 1.0 }.name(), "MMF");
        assert_eq!(FittedCurve::Hoerl { a: 1.0, b: 1.0, c: 1.0 }.name(), "hoerl");
    }

    #[test]
    fn solve3_known_system() {
        // x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27.
        let a = [[1.0, 1.0, 1.0], [0.0, 2.0, 5.0], [2.0, 5.0, -1.0]];
        let b = [6.0, -4.0, 27.0];
        let x = solve3(a, b).expect("solvable");
        assert!((x[0] - 5.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn linear_fit_never_panics_and_rmse_finite(
            pts in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..50)
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let c = fit_linear(&xs, &ys);
            prop_assert!(rmse(&c, &xs, &ys).is_finite());
        }

        #[test]
        fn linear_fit_is_optimal_among_slope_perturbations(
            pts in proptest::collection::vec((0f64..1e3, 0f64..1e3), 3..30)
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let c = fit_linear(&xs, &ys);
            let base = rmse(&c, &xs, &ys);
            if let FittedCurve::Linear { intercept, slope } = c {
                for d in [-0.1, 0.1, -0.01, 0.01] {
                    let alt = FittedCurve::Linear { intercept, slope: slope + d };
                    prop_assert!(rmse(&alt, &xs, &ys) + 1e-9 >= base);
                }
            }
        }
    }
}
