//! Shared experiment configuration and corpus construction.

use squirrel_dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

/// Block-size sweeps used by the figures.
pub const FULL_BS_SWEEP: [usize; 11] = [
    1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576,
];
pub const ZFS_BS_SWEEP: [usize; 6] = [4096, 8192, 16384, 32768, 65536, 131072];
pub const BOOT_BS_SWEEP: [usize; 8] =
    [1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072];

/// Knobs shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Corpus size (607 = the full Azure census shape).
    pub images: u32,
    /// Byte-volume divisor versus the paper's 16.4 TB.
    pub scale: u64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs (`results/` by default); None disables.
    pub out_dir: Option<String>,
    /// Worker threads for corpus sweeps (0 = all cores).
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            images: 96,
            scale: 512,
            seed: 2014,
            out_dir: Some("results".to_string()),
            threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// Tiny setup for tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            images: 16,
            scale: 8192,
            seed: 7,
            out_dir: None,
            threads: 0,
        }
    }

    /// Build the corpus for these settings.
    pub fn corpus(&self) -> Arc<Corpus> {
        let cfg = CorpusConfig {
            n_images: self.images,
            scale: self.scale,
            ..CorpusConfig::azure(self.scale, self.seed)
        };
        Arc::new(Corpus::generate(cfg))
    }

    /// Paper-volume projection factor for byte quantities.
    pub fn projection(&self) -> f64 {
        // Byte volumes scale by `scale`; image-count differences scale
        // linearly too (the paper's corpus has 607 images).
        self.scale as f64 * 607.0 / self.images as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_builds_small_corpus() {
        let cfg = ExperimentConfig::smoke();
        let corpus = cfg.corpus();
        assert_eq!(corpus.len(), 16);
    }

    #[test]
    fn projection_scales_with_both_knobs() {
        let full = ExperimentConfig { images: 607, scale: 1, ..Default::default() };
        assert!((full.projection() - 1.0).abs() < 1e-9);
        let half = ExperimentConfig { images: 607, scale: 2, ..Default::default() };
        assert!((half.projection() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweeps_are_sorted() {
        assert!(FULL_BS_SWEEP.windows(2).all(|w| w[0] < w[1]));
        assert!(ZFS_BS_SWEEP.windows(2).all(|w| w[0] < w[1]));
        assert!(BOOT_BS_SWEEP.windows(2).all(|w| w[0] < w[1]));
    }
}
