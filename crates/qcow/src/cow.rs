//! The copy-on-write overlay (QCOW2-style, cluster granular).

use crate::disk::{ReadLog, VirtualDisk};
use crate::ImageError;
use squirrel_obs::{Counter, Metrics};
use std::collections::HashMap;

/// Default QCOW2 cluster size: 64 KiB (128 sectors) — the constant the paper
/// credits for the free-prefetch effect and for 64 KiB being the cVolume
/// sweet spot.
pub const DEFAULT_CLUSTER_SIZE: usize = 64 * 1024;

/// A copy-on-write image over a backing layer.
///
/// Reads of unallocated ranges are forwarded to the backing layer as whole
/// clusters (matching how QCOW2 issues `(offset, 128 sectors)` requests);
/// writes allocate private cluster copies filled from the backing first.
pub struct CowImage<B: VirtualDisk> {
    cluster_size: usize,
    clusters: HashMap<u64, Box<[u8]>>,
    backing: B,
    size: u64,
    log: Option<ReadLog>,
    chain_reads: Counter,
    chain_read_bytes: Counter,
    allocs: Counter,
}

impl<B: VirtualDisk> CowImage<B> {
    /// New empty overlay with the default 64 KiB cluster size.
    pub fn new(backing: B) -> Self {
        Self::with_cluster_size(backing, DEFAULT_CLUSTER_SIZE)
    }

    pub fn with_cluster_size(backing: B, cluster_size: usize) -> Self {
        Self::try_with_cluster_size(backing, cluster_size).expect("valid cluster size")
    }

    /// Fallible [`with_cluster_size`](Self::with_cluster_size): rejects
    /// cluster sizes that are not a power of two of at least 512 bytes.
    pub fn try_with_cluster_size(backing: B, cluster_size: usize) -> Result<Self, ImageError> {
        if !cluster_size.is_power_of_two() || cluster_size < 512 {
            return Err(ImageError::BadGranule { bytes: cluster_size });
        }
        let size = backing.len();
        Ok(CowImage {
            cluster_size,
            clusters: HashMap::new(),
            backing,
            size,
            log: None,
            chain_reads: Counter::default(),
            chain_read_bytes: Counter::default(),
            allocs: Counter::default(),
        })
    }

    /// Attach observability: backing-chain reads record `cow_chain_reads_total`
    /// / `cow_chain_read_bytes_total`, and CoW allocations record
    /// `cow_alloc_clusters_total` on `metrics`.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.chain_reads = metrics.counter("cow_chain_reads_total");
        self.chain_read_bytes = metrics.counter("cow_chain_read_bytes_total");
        self.allocs = metrics.counter("cow_alloc_clusters_total");
    }

    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// Number of privately allocated clusters (the CoW image's disk cost).
    pub fn allocated_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Enable logging of requests issued to the backing layer.
    pub fn log_backing_reads(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Drain the backing-request log.
    pub fn take_log(&mut self) -> ReadLog {
        match self.log.take() {
            Some(l) => {
                self.log = Some(Vec::new());
                l
            }
            None => ReadLog::default(),
        }
    }

    pub fn backing(&mut self) -> &mut B {
        &mut self.backing
    }

    /// Consume the overlay and return the backing layer — how the
    /// boot-storm driver reaches the CoR cache underneath a finished boot
    /// chain (to drain or inspect it) without copying its blocks.
    pub fn into_backing(self) -> B {
        self.backing
    }

    /// Write `data` at `offset`, allocating clusters copy-on-write.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let cs = self.cluster_size as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let cluster = abs / cs;
            let within = (abs % cs) as usize;
            let take = (self.cluster_size - within).min(data.len() - pos);
            if !self.clusters.contains_key(&cluster) {
                // Allocate: fill from backing (read-modify-write).
                let mut buf = vec![0u8; self.cluster_size].into_boxed_slice();
                if let Some(log) = &mut self.log {
                    log.push((cluster * cs, self.cluster_size as u32));
                }
                self.backing.read_at(cluster * cs, &mut buf);
                self.allocs.inc();
                self.chain_reads.inc();
                self.chain_read_bytes.add(self.cluster_size as u64);
                self.clusters.insert(cluster, buf);
            }
            let buf = self.clusters.get_mut(&cluster).expect("just allocated");
            buf[within..within + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
        }
        self.size = self.size.max(offset + data.len() as u64);
    }
}

impl<B: VirtualDisk> VirtualDisk for CowImage<B> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        let cs = self.cluster_size as u64;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let cluster = abs / cs;
            let within = (abs % cs) as usize;
            let take = (self.cluster_size - within).min(buf.len() - pos);
            match self.clusters.get(&cluster) {
                Some(data) => buf[pos..pos + take].copy_from_slice(&data[within..within + take]),
                None => {
                    // QCOW2 forwards the request to the backing file; the
                    // kernel's readahead plus qcow2's own granularity mean
                    // the backing layer effectively sees cluster-sized
                    // requests. Model that explicitly: fetch the whole
                    // cluster, copy the wanted part, discard the rest (the
                    // host page cache below will have kept it).
                    let mut cluster_buf = vec![0u8; self.cluster_size];
                    if let Some(log) = &mut self.log {
                        log.push((cluster * cs, self.cluster_size as u32));
                    }
                    self.backing.read_at(cluster * cs, &mut cluster_buf);
                    self.chain_reads.inc();
                    self.chain_read_bytes.add(self.cluster_size as u64);
                    buf[pos..pos + take].copy_from_slice(&cluster_buf[within..within + take]);
                }
            }
            pos += take;
        }
    }

    fn len(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn base(n: usize) -> MemDisk {
        MemDisk::new((0..n).map(|i| (i % 251) as u8).collect())
    }

    #[test]
    fn reads_pass_through_when_unallocated() {
        let mut cow = CowImage::with_cluster_size(base(4096), 1024);
        let mut buf = [0u8; 16];
        cow.read_at(100, &mut buf);
        assert_eq!(buf[0], 100);
        assert_eq!(cow.allocated_clusters(), 0, "reads must not allocate");
    }

    #[test]
    fn writes_are_private_and_read_back() {
        let mut cow = CowImage::with_cluster_size(base(4096), 1024);
        cow.write_at(100, &[0xaa; 8]);
        let mut buf = [0u8; 8];
        cow.read_at(100, &mut buf);
        assert_eq!(buf, [0xaa; 8]);
        // Backing unchanged around the write (read-modify-write fill).
        let mut buf2 = [0u8; 1];
        cow.read_at(99, &mut buf2);
        assert_eq!(buf2[0], 99);
        assert_eq!(cow.allocated_clusters(), 1);
    }

    #[test]
    fn backing_sees_cluster_granular_requests() {
        let mut cow = CowImage::with_cluster_size(base(8192), 1024);
        cow.log_backing_reads();
        let mut buf = [0u8; 10];
        cow.read_at(2500, &mut buf); // inside cluster 2
        let log = cow.take_log();
        assert_eq!(log, vec![(2048, 1024)], "whole-cluster over-fetch");
    }

    #[test]
    fn straddling_read_hits_both_clusters() {
        let mut cow = CowImage::with_cluster_size(base(8192), 1024);
        cow.log_backing_reads();
        let mut buf = [0u8; 100];
        cow.read_at(1000, &mut buf); // clusters 0 and 1
        assert_eq!(cow.take_log(), vec![(0, 1024), (1024, 1024)]);
        let want: Vec<u8> = (1000..1100).map(|i| (i % 251) as u8).collect();
        assert_eq!(buf.to_vec(), want);
    }

    #[test]
    fn write_straddling_clusters() {
        let mut cow = CowImage::with_cluster_size(base(4096), 1024);
        cow.write_at(1020, &[7u8; 10]);
        assert_eq!(cow.allocated_clusters(), 2);
        let mut buf = [0u8; 10];
        cow.read_at(1020, &mut buf);
        assert_eq!(buf, [7u8; 10]);
    }

    #[test]
    fn default_cluster_size_is_qcow2s() {
        let cow = CowImage::new(base(1024));
        assert_eq!(cow.cluster_size(), 65536);
    }

    #[test]
    fn into_backing_returns_the_layer_below() {
        let mut cow = CowImage::with_cluster_size(base(4096), 1024);
        cow.write_at(0, &[1u8; 4]); // private; backing untouched
        let mut backing = cow.into_backing();
        let mut buf = [0u8; 1];
        backing.read_at(0, &mut buf);
        assert_eq!(buf[0], 0, "CoW write never reached the backing");
    }

    #[test]
    fn len_grows_with_writes_past_end() {
        let mut cow = CowImage::with_cluster_size(base(1024), 1024);
        assert_eq!(cow.len(), 1024);
        cow.write_at(5000, &[1]);
        assert_eq!(cow.len(), 5001);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::disk::MemDisk;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random interleavings of reads and writes agree with a flat model.
        #[test]
        fn cow_matches_flat_model(
            ops in proptest::collection::vec(
                (any::<bool>(), 0u64..4000, 1usize..200, any::<u8>()),
                1..40
            )
        ) {
            let base_data: Vec<u8> = (0..4096).map(|i| (i * 13 % 256) as u8).collect();
            let mut model = base_data.clone();
            model.resize(8192, 0);
            let mut cow = CowImage::with_cluster_size(MemDisk::new(base_data), 512);
            for (is_write, off, len, fill) in ops {
                if is_write {
                    cow.write_at(off, &vec![fill; len]);
                    let end = (off as usize + len).min(model.len());
                    for b in &mut model[off as usize..end] {
                        *b = fill;
                    }
                } else {
                    let mut got = vec![0u8; len];
                    cow.read_at(off, &mut got);
                    let mut want = vec![0u8; len];
                    let end = (off as usize + len).min(model.len());
                    if (off as usize) < end {
                        want[..end - off as usize].copy_from_slice(&model[off as usize..end]);
                    }
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}
