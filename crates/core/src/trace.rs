//! Paper-scale boot-trace synthesis.
//!
//! The synthetic corpus runs at a byte-volume divisor (`scale`) to stay
//! laptop-sized, but boot *times* only make sense at paper volume (~132 MiB
//! working sets). This helper expands a scaled image's working-set size back
//! to paper volume and emits a trace with the same statistical shape as
//! `squirrel_dataset`'s: 128 KiB extents visited in shuffled order,
//! sequential 4–64 KiB reads inside each extent.

use squirrel_dataset::{BootTrace, ReadOp};

/// Deterministic mixer (same family as the dataset's SplitMix64).
#[inline]
fn mix(x: u64, salt: u64) -> u64 {
    let mut v = x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt.rotate_left(29);
    v ^= v >> 30;
    v = v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v ^= v >> 27;
    v = v.wrapping_mul(0x94d0_49bb_1331_11eb);
    v ^ (v >> 31)
}

/// Synthesize a boot trace over a working set of `ws_bytes`, seeded by
/// `image_seed` so distinct images get distinct (but reproducible) traces.
pub fn paper_scale_trace(ws_bytes: u64, image_seed: u64) -> BootTrace {
    const EXTENT: u64 = 128 * 1024;
    let ws = ws_bytes.max(EXTENT);
    let n_extents = ws / EXTENT;
    let mut order: Vec<u64> = (0..n_extents).collect();
    for i in (1..order.len()).rev() {
        let j = (mix(i as u64 ^ image_seed, 0x7ace) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut ops = Vec::new();
    for &e in &order {
        let mut off = e * EXTENT;
        let end = ((e + 1) * EXTENT).min(ws);
        let mut k = 0u64;
        while off < end {
            let len = match mix(e * 131 + k, image_seed) % 10 {
                0..=3 => 4 * 1024u64,
                4..=6 => 16 * 1024,
                7..=8 => 32 * 1024,
                _ => 64 * 1024,
            };
            let len = len.min(end - off) as u32;
            ops.push(ReadOp { offset: off, len });
            off += len as u64;
            k += 1;
        }
    }
    BootTrace { ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_covers_working_set_exactly() {
        let t = paper_scale_trace(10 << 20, 7);
        assert_eq!(t.total_bytes(), 10 << 20);
    }

    #[test]
    fn traces_differ_across_images() {
        let a = paper_scale_trace(4 << 20, 1);
        let b = paper_scale_trace(4 << 20, 2);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn trace_is_deterministic() {
        let a = paper_scale_trace(4 << 20, 5);
        let b = paper_scale_trace(4 << 20, 5);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn tiny_working_set_rounds_up_to_one_extent() {
        let t = paper_scale_trace(1000, 3);
        assert_eq!(t.total_bytes(), 128 * 1024);
    }
}
