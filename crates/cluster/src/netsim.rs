//! Network model: nodes, links, unicast/multicast transfer accounting.

/// Node identifier within the cluster.
pub type NodeId = u32;

/// What a node does (affects which ledger a transfer is charged to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    Compute,
    Storage,
}

/// Interconnect flavours available on DAS-4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Commodity 1 Gb/s Ethernet.
    GbE,
    /// QDR InfiniBand, ~32 Gb/s theoretical.
    QdrInfiniband,
}

impl LinkKind {
    /// Effective bandwidth in MB/s (payload, after protocol overhead).
    pub fn mbps(&self) -> f64 {
        match self {
            LinkKind::GbE => 112.0,
            LinkKind::QdrInfiniband => 3200.0,
        }
    }
}

/// Per-node byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    pub rx_bytes: u64,
    pub tx_bytes: u64,
}

/// The cluster network: a flat switch with per-node ledgers, supporting
/// unicast and (for cache propagation) IP multicast.
pub struct Network {
    link: LinkKind,
    roles: Vec<NodeRole>,
    ledgers: Vec<TrafficLedger>,
}

impl Network {
    /// A cluster of `compute` compute nodes followed by `storage` storage
    /// nodes; node ids are assigned in that order.
    pub fn new(link: LinkKind, compute: u32, storage: u32) -> Self {
        let mut roles = vec![NodeRole::Compute; compute as usize];
        roles.extend(std::iter::repeat_n(NodeRole::Storage, storage as usize));
        let n = roles.len();
        Network { link, roles, ledgers: vec![TrafficLedger::default(); n] }
    }

    pub fn link(&self) -> LinkKind {
        self.link
    }

    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node as usize]
    }

    pub fn compute_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len() as u32).filter(|&n| self.roles[n as usize] == NodeRole::Compute)
    }

    pub fn storage_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len() as u32).filter(|&n| self.roles[n as usize] == NodeRole::Storage)
    }

    /// Transfer `bytes` from `src` to `dst`; returns the transfer seconds.
    pub fn unicast(&mut self, src: NodeId, dst: NodeId, bytes: u64) -> f64 {
        assert_ne!(src, dst, "self-transfer");
        self.ledgers[src as usize].tx_bytes += bytes;
        self.ledgers[dst as usize].rx_bytes += bytes;
        bytes as f64 / (self.link.mbps() * 1e6)
    }

    /// IP-multicast `bytes` from `src` to `dsts`: the sender transmits once,
    /// every receiver's NIC receives the full payload (the mechanism the
    /// paper assumes for snapshot-diff propagation, Section 3.2).
    pub fn multicast(&mut self, src: NodeId, dsts: &[NodeId], bytes: u64) -> f64 {
        self.ledgers[src as usize].tx_bytes += bytes;
        for &d in dsts {
            assert_ne!(d, src, "multicast to self");
            self.ledgers[d as usize].rx_bytes += bytes;
        }
        bytes as f64 / (self.link.mbps() * 1e6)
    }

    /// LANTorrent-style pipelined transfer: the source sends once to the
    /// first receiver, each receiver forwards to the next while receiving.
    /// Every node transmits and receives at most one copy, and on a single
    /// switch the pipeline completes in roughly one transfer time plus a
    /// per-hop latency. Returns the transfer seconds.
    pub fn pipeline(&mut self, src: NodeId, dsts: &[NodeId], bytes: u64) -> f64 {
        if dsts.is_empty() {
            return 0.0;
        }
        let mut prev = src;
        for &d in dsts {
            assert_ne!(d, prev, "pipeline hop to self");
            self.ledgers[prev as usize].tx_bytes += bytes;
            self.ledgers[d as usize].rx_bytes += bytes;
            prev = d;
        }
        const HOP_LATENCY_S: f64 = 0.002;
        bytes as f64 / (self.link.mbps() * 1e6) + HOP_LATENCY_S * dsts.len() as f64
    }

    pub fn ledger(&self, node: NodeId) -> TrafficLedger {
        self.ledgers[node as usize]
    }

    /// Sum of rx bytes over compute nodes — Figure 18's y-axis.
    pub fn compute_rx_total(&self) -> u64 {
        self.compute_nodes().map(|n| self.ledger(n).rx_bytes).sum()
    }

    /// Reset all ledgers (between experiment phases: registration traffic
    /// versus boot-time traffic are reported separately).
    pub fn reset_ledgers(&mut self) {
        self.ledgers.fill(TrafficLedger::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_assigned_in_order() {
        let net = Network::new(LinkKind::GbE, 3, 2);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.role(0), NodeRole::Compute);
        assert_eq!(net.role(3), NodeRole::Storage);
        assert_eq!(net.compute_nodes().count(), 3);
        assert_eq!(net.storage_nodes().count(), 2);
    }

    #[test]
    fn unicast_charges_both_ends() {
        let mut net = Network::new(LinkKind::GbE, 2, 1);
        let secs = net.unicast(2, 0, 112_000_000);
        assert_eq!(net.ledger(2).tx_bytes, 112_000_000);
        assert_eq!(net.ledger(0).rx_bytes, 112_000_000);
        assert_eq!(net.ledger(1), TrafficLedger::default());
        assert!((secs - 1.0).abs() < 1e-9, "1 GbE moves 112 MB/s: {secs}");
    }

    #[test]
    fn multicast_sends_once_receives_everywhere() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        net.multicast(4, &[0, 1, 2, 3], 1000);
        assert_eq!(net.ledger(4).tx_bytes, 1000, "single transmission");
        for n in 0..4 {
            assert_eq!(net.ledger(n).rx_bytes, 1000);
        }
        assert_eq!(net.compute_rx_total(), 4000);
    }

    #[test]
    fn pipeline_spreads_tx_load() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        let t = net.pipeline(4, &[0, 1, 2, 3], 1_000_000);
        // Source transmits once; each intermediate node relays once.
        assert_eq!(net.ledger(4).tx_bytes, 1_000_000);
        assert_eq!(net.ledger(0).tx_bytes, 1_000_000);
        assert_eq!(net.ledger(3).tx_bytes, 0, "last hop only receives");
        for n in 0..4 {
            assert_eq!(net.ledger(n).rx_bytes, 1_000_000);
        }
        // Completes in about one transfer time, not n transfer times.
        let single = 1_000_000.0 / (LinkKind::GbE.mbps() * 1e6);
        assert!(t < 2.0 * single + 0.1, "{t} vs {single}");
    }

    #[test]
    fn pipeline_empty_is_noop() {
        let mut net = Network::new(LinkKind::GbE, 1, 1);
        assert_eq!(net.pipeline(1, &[], 100), 0.0);
        assert_eq!(net.compute_rx_total(), 0);
    }

    #[test]
    fn infiniband_is_faster() {
        let mut gbe = Network::new(LinkKind::GbE, 1, 1);
        let mut ib = Network::new(LinkKind::QdrInfiniband, 1, 1);
        assert!(ib.unicast(1, 0, 1 << 30) < gbe.unicast(1, 0, 1 << 30));
    }

    #[test]
    fn reset_clears_ledgers() {
        let mut net = Network::new(LinkKind::GbE, 1, 1);
        net.unicast(1, 0, 5);
        net.reset_ledgers();
        assert_eq!(net.compute_rx_total(), 0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_unicast_panics() {
        Network::new(LinkKind::GbE, 1, 1).unicast(0, 0, 1);
    }
}
