//! Quickstart: bring up Squirrel, register an image, boot it everywhere.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn main() {
    // A small synthetic image catalog (8 images, 1/256 of paper volume).
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: 8,
        scale: 256,
        ..CorpusConfig::azure(256, 42)
    }));
    println!("catalog: {} images", corpus.len());
    for img in corpus.iter().take(3) {
        println!(
            "  image {:>2}: {:?} release {}, {} MiB nonzero, {} KiB boot working set",
            img.id(),
            img.spec().family,
            img.spec().release,
            img.nonzero_bytes() >> 20,
            img.cache().bytes() >> 10,
        );
    }

    // Bring up a 8-compute-node cloud with Squirrel's default 64 KiB gzip-6
    // cVolumes.
    let mut squirrel = Squirrel::new(
        SquirrelConfig::builder().compute_nodes(8).build(),
        Arc::clone(&corpus),
    );

    // Register image 0: first boot on a storage node captures the boot
    // working set, which is deduplicated, compressed, snapshotted, and
    // multicast to every compute node's ccVolume.
    let report = squirrel.register(0).expect("register");
    println!(
        "\nregistered image 0: cache {} KiB, diff {} KiB to {} nodes in {:.1}s",
        report.cache_bytes >> 10,
        report.diff_wire_bytes >> 10,
        report.nodes_updated,
        report.seconds,
    );

    // Boot it on every node: all warm, zero network bytes.
    squirrel.network_mut().reset_ledgers();
    for node in 0..8 {
        let boot = squirrel.boot(node, 0).expect("boot");
        assert!(boot.warm);
        println!(
            "  node {node}: warm boot in {:.1}s, {} network bytes",
            boot.report.total_seconds, boot.net_bytes
        );
    }
    println!(
        "\ntotal compute-node network traffic during boots: {} bytes",
        squirrel.network().compute_rx_total()
    );

    let stats = squirrel.scvol_stats();
    println!(
        "scVolume: {} unique blocks, {} KiB physical, {} KiB DDT memory",
        stats.unique_blocks,
        stats.physical_bytes >> 10,
        stats.ddt_memory_bytes >> 10,
    );

    // One snapshot answers the workflow questions: what register put on
    // the wire, which boots hit the hoard, how big the dedup table is.
    let snap = squirrel.metrics().snapshot();
    println!("\nmetrics snapshot:");
    println!(
        "  squirrel_register_wire_bytes_total  {}",
        snap.counter("squirrel_register_wire_bytes_total").unwrap_or(0)
    );
    println!(
        "  squirrel_boot_total{{result=\"warm\"}}   {} across {} nodes",
        snap.counter_sum("squirrel_boot_total"),
        8,
    );
    println!(
        "  squirrel_scvol_ddt_entries          {}",
        snap.gauge_u64("squirrel_scvol_ddt_entries").unwrap_or(0)
    );
    println!(
        "  zpool_recv_streams_total{{ccvol}}     {}",
        snap.counter("zpool_recv_streams_total{pool=\"ccvol\"}").unwrap_or(0)
    );

    // Persist the full snapshot (JSON, includes the event journal) for the
    // acceptance record; the same data renders as Prometheus text.
    let path = "results/metrics_quickstart.json";
    let _ = std::fs::create_dir_all("results");
    std::fs::write(path, snap.to_json()).expect("write metrics json");
    println!("\nwrote {path} ({} series)", snap.counters.len() + snap.gauges.len());
}
