//! The Squirrel system: scVolume, ccVolumes, and the paper's workflows.

use crate::dist::{DistributionPolicy, TransferLeg, TransferPlan};
use crate::trace::paper_scale_trace;
use squirrel_bootsim::{Backend, BootReport, BootSim, DedupVolumeParams};
use squirrel_cluster::{
    EcConfig, EcError, EcRepairReport, EcStats, ErasureCodedVolume, GlusterConfig, GlusterVolume,
    LinkKind, NetError, Network, NodeId, TopologyConfig,
};
use squirrel_compress::Codec;
use squirrel_dataset::{Corpus, ImageId};
use squirrel_faults::{FaultPlan, FaultReport, TransferFault};
use squirrel_hash::par::WorkerPool;
use squirrel_obs::{Metrics, MetricsRegistry};
use squirrel_qcow::{CorCache, VirtualDisk};
use squirrel_zfs::{
    BlockKey, ChunkStrategy, DedupMode, PoolConfig, RecvError, ScrubReport, SendError,
    SendStream, SharedArcCache, SpaceStats, ZPool,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-node hoard budget: how much a compute node may spend on hoarded
/// caches, on the paper's two axes — ccVolume disk footprint and in-core
/// dedup-table memory. The paper's feasibility claim (Section 4.3) is that
/// the whole catalog fits in ~10 GB of disk and ~60 MB of DDT memory per
/// node; [`HoardBudget::paper`] encodes exactly those numbers. `0` on an
/// axis means unlimited.
///
/// Enforcement is whole-cache and popularity-aware: when a node exceeds
/// budget, [`Squirrel::enforce_hoard_budgets`] evicts its least-booted image
/// caches until it fits. Evicted images keep booting — degraded, via shared
/// storage — and re-hoard on demand ([`Squirrel::rehoard_cache`]): the
/// paper's partial-hoarding fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HoardBudget {
    /// ccVolume total-disk budget in bytes (`0` = unlimited).
    pub disk_bytes: u64,
    /// ccVolume in-core DDT budget in bytes (`0` = unlimited).
    pub ddt_mem_bytes: u64,
}

impl HoardBudget {
    /// No budget on either axis — full scatter hoarding (the default).
    pub fn unlimited() -> Self {
        HoardBudget::default()
    }

    /// The paper's per-node numbers: 10 GiB of disk, 60 MiB of DDT memory.
    pub fn paper() -> Self {
        HoardBudget { disk_bytes: 10 << 30, ddt_mem_bytes: 60 << 20 }
    }

    /// Both axes unlimited: enforcement is a no-op.
    pub fn is_unlimited(&self) -> bool {
        self.disk_bytes == 0 && self.ddt_mem_bytes == 0
    }
}

/// Physical layer of the scVolume's shared storage tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharedStorage {
    /// The paper's glusterfs 2×2: striping plus flat replication. Every
    /// byte is stored twice; a rack loss can take both replicas of a
    /// stripe with it.
    Replicated,
    /// k+m Reed–Solomon erasure coding: registration caches stripe into
    /// `k` data + `m` parity shards placed across distinct racks by the
    /// cluster topology, so the tier survives the loss of any `m` shards —
    /// a whole rack, when shards spread over at least `m`+1 racks — at
    /// `(k+m)/k`× storage overhead. Cold-path reads reconstruct from
    /// parity when shards are unreachable (degraded but byte-identical).
    ErasureCoded {
        k: u32,
        m: u32,
    },
}

/// System configuration; defaults match the paper's deployment.
///
/// Construct with [`SquirrelConfig::builder`] (the struct is
/// `#[non_exhaustive]`, so it cannot be built with a literal outside this
/// crate) or start from [`Default`] — both give the paper's deployment.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SquirrelConfig {
    /// cVolume record size. The paper's evaluation picks 64 KiB.
    pub block_size: usize,
    /// cVolume compression. The paper picks gzip-6.
    pub codec: Codec,
    /// Snapshot retention window `n`, in days (offline propagation window).
    pub gc_window_days: u64,
    /// Interconnect used for propagation and cold-path traffic.
    pub link: LinkKind,
    pub compute_nodes: u32,
    pub storage_nodes: u32,
    /// Worker threads for cache ingestion and multicast application
    /// (`0` = all available cores). Purely a throughput knob: results are
    /// bit-identical at any setting.
    pub threads: usize,
    /// Record metrics and journal events (see [`Squirrel::metrics`]). When
    /// `false` every instrument is a disabled no-op handle.
    pub metrics: bool,
    /// Per-node hoard budget (disk / DDT memory); unlimited by default.
    /// Enforced by [`Squirrel::enforce_hoard_budgets`].
    pub hoard_budget: HoardBudget,
    /// How hoard bytes travel to compute nodes (registration diffs, cache
    /// restores, rejoin catch-ups). Point-to-point unicast by default; see
    /// [`DistributionPolicy`].
    pub distribution: DistributionPolicy,
    /// How imported cache contents are cut into records. Fixed-size (the
    /// paper's ZFS recordsize) by default; a `Fixed` strategy always follows
    /// [`block_size`](Self::block_size), whatever size it names. Switch to
    /// [`ChunkStrategy::Cdc`] for content-defined chunking, which keeps
    /// dedup working across byte-shifted image versions.
    pub chunking: ChunkStrategy,
    /// Forward (ZFS-style: new blocks scatter toward old copies) or reverse
    /// (RevDedup-style: each import is relocated into one sequential run,
    /// fragmenting *older* snapshots instead) deduplication.
    pub dedup_mode: DedupMode,
    /// Failure-domain layout of the cluster (region → datacenter → rack →
    /// node). Flat — one rack, the paper's DAS-4 — by default; multi-rack
    /// layouts give cross-domain links higher transfer costs and let the
    /// fault layer take whole domains offline.
    pub topology: TopologyConfig,
    /// Physical layer of the shared storage tier; the paper's replicated
    /// gluster by default.
    pub shared_storage: SharedStorage,
}

impl Default for SquirrelConfig {
    fn default() -> Self {
        SquirrelConfig {
            block_size: 64 * 1024,
            codec: Codec::Gzip(6),
            gc_window_days: 7,
            link: LinkKind::GbE,
            compute_nodes: 64,
            storage_nodes: 4,
            threads: 0,
            metrics: true,
            hoard_budget: HoardBudget::unlimited(),
            distribution: DistributionPolicy::Unicast,
            chunking: ChunkStrategy::Fixed(64 * 1024),
            dedup_mode: DedupMode::Forward,
            topology: TopologyConfig::flat(),
            shared_storage: SharedStorage::Replicated,
        }
    }
}

impl SquirrelConfig {
    /// Builder seeded with the paper's deployment defaults.
    pub fn builder() -> SquirrelConfigBuilder {
        SquirrelConfigBuilder { config: SquirrelConfig::default() }
    }

    /// The chunking strategy as handed to pools: a `Fixed` strategy always
    /// tracks [`block_size`](Self::block_size), whatever size it was built
    /// with, so `..Default::default()` literals stay consistent when only
    /// the record size is overridden.
    pub fn pool_chunking(&self) -> ChunkStrategy {
        match self.chunking {
            ChunkStrategy::Fixed(_) => ChunkStrategy::Fixed(self.block_size),
            cdc => cdc,
        }
    }
}

/// Builder for [`SquirrelConfig`]; every unset knob keeps its paper default.
#[derive(Clone, Debug)]
pub struct SquirrelConfigBuilder {
    config: SquirrelConfig,
}

impl SquirrelConfigBuilder {
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.config.block_size = bytes;
        self
    }

    pub fn codec(mut self, codec: Codec) -> Self {
        self.config.codec = codec;
        self
    }

    pub fn gc_window_days(mut self, days: u64) -> Self {
        self.config.gc_window_days = days;
        self
    }

    pub fn link(mut self, link: LinkKind) -> Self {
        self.config.link = link;
        self
    }

    pub fn compute_nodes(mut self, nodes: u32) -> Self {
        self.config.compute_nodes = nodes;
        self
    }

    pub fn storage_nodes(mut self, nodes: u32) -> Self {
        self.config.storage_nodes = nodes;
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    pub fn metrics(mut self, enabled: bool) -> Self {
        self.config.metrics = enabled;
        self
    }

    /// Per-node hoard budget; [`HoardBudget::unlimited`] by default.
    pub fn hoard_budget(mut self, budget: HoardBudget) -> Self {
        self.config.hoard_budget = budget;
        self
    }

    /// Distribution policy for hoard transfers;
    /// [`DistributionPolicy::Unicast`] by default.
    pub fn distribution(mut self, policy: DistributionPolicy) -> Self {
        self.config.distribution = policy;
        self
    }

    /// Chunking strategy for cache imports; fixed records at
    /// [`block_size`](Self::block_size) by default. A `Fixed` strategy is
    /// normalized to the configured record size, so only its kind matters.
    pub fn chunking(mut self, strategy: ChunkStrategy) -> Self {
        self.config.chunking = strategy;
        self
    }

    /// Dedup placement mode; [`DedupMode::Forward`] by default.
    pub fn dedup_mode(mut self, mode: DedupMode) -> Self {
        self.config.dedup_mode = mode;
        self
    }

    /// Failure-domain layout; [`TopologyConfig::flat`] by default.
    pub fn topology(mut self, topology: TopologyConfig) -> Self {
        self.config.topology = topology;
        self
    }

    /// Shared storage tier; [`SharedStorage::Replicated`] by default.
    pub fn shared_storage(mut self, storage: SharedStorage) -> Self {
        self.config.shared_storage = storage;
        self
    }

    /// Finish the configuration.
    ///
    /// # Panics
    /// If the record size is not a power of two of at least 512 bytes, or
    /// fewer than four storage nodes are configured (gluster 2x2 striping +
    /// replication needs four bricks).
    pub fn build(self) -> SquirrelConfig {
        assert!(
            self.config.block_size >= 512 && self.config.block_size.is_power_of_two(),
            "record size must be a power of two >= 512"
        );
        assert!(self.config.storage_nodes >= 4, "gluster 2x2 needs four bricks");
        if let SharedStorage::ErasureCoded { k, m } = self.config.shared_storage {
            assert!(k > 0 && m > 0 && k + m <= 255, "bad erasure geometry k={k} m={m}");
            assert!(
                self.config.storage_nodes >= k + m,
                "erasure coding needs at least k+m={} storage nodes",
                k + m
            );
        }
        self.config
    }
}

/// Errors surfaced by Squirrel's operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SquirrelError {
    UnknownImage(ImageId),
    AlreadyRegistered(ImageId),
    NotRegistered(ImageId),
    NodeOffline(NodeId),
    NoSuchNode(NodeId),
    /// A snapshot stream failed to apply during catch-up; the underlying
    /// [`RecvError`] is reachable through [`std::error::Error::source`].
    Recv(RecvError),
    /// A snapshot stream could not be built (the requested snapshot is
    /// gone — e.g. collected between workflow steps).
    Send(SendError),
    /// A network transfer failed (link partitioned or bad endpoint); the
    /// underlying [`NetError`] is reachable through `source`.
    Net(NetError),
    /// The erasure-coded shared tier could not serve or store an object
    /// (too many shards lost, or a shard transfer failed); the underlying
    /// [`EcError`] is reachable through `source`.
    Ec(EcError),
    /// A node's hoarded cache disappeared between the warm-path check and
    /// the read that needed it.
    MissingCache { node: NodeId, image: ImageId },
}

impl std::fmt::Display for SquirrelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SquirrelError::UnknownImage(i) => write!(f, "unknown image {i}"),
            SquirrelError::AlreadyRegistered(i) => write!(f, "image {i} already registered"),
            SquirrelError::NotRegistered(i) => write!(f, "image {i} not registered"),
            SquirrelError::NodeOffline(n) => write!(f, "node {n} is offline"),
            SquirrelError::NoSuchNode(n) => write!(f, "no such compute node {n}"),
            SquirrelError::Recv(e) => write!(f, "snapshot stream rejected: {e}"),
            SquirrelError::Send(e) => write!(f, "snapshot stream unavailable: {e}"),
            SquirrelError::Net(e) => write!(f, "transfer failed: {e}"),
            SquirrelError::Ec(e) => write!(f, "shared storage failed: {e}"),
            SquirrelError::MissingCache { node, image } => {
                write!(f, "node {node} lost the hoarded cache of image {image}")
            }
        }
    }
}

impl std::error::Error for SquirrelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SquirrelError::Recv(e) => Some(e),
            SquirrelError::Send(e) => Some(e),
            SquirrelError::Net(e) => Some(e),
            SquirrelError::Ec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RecvError> for SquirrelError {
    fn from(e: RecvError) -> Self {
        SquirrelError::Recv(e)
    }
}

impl From<SendError> for SquirrelError {
    fn from(e: SendError) -> Self {
        SquirrelError::Send(e)
    }
}

impl From<NetError> for SquirrelError {
    fn from(e: NetError) -> Self {
        SquirrelError::Net(e)
    }
}

impl From<EcError> for SquirrelError {
    fn from(e: EcError) -> Self {
        SquirrelError::Ec(e)
    }
}

/// Outcome of a registration (paper Figure 6).
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterReport {
    pub image: ImageId,
    /// Bytes the copy-on-read boot captured (the raw cache size).
    pub cache_bytes: u64,
    /// Snapshot-diff wire size distributed to the compute nodes.
    pub diff_wire_bytes: u64,
    /// Compute nodes whose ccVolume received the diff.
    pub nodes_updated: u32,
    /// Online compute nodes that did *not* end up with the diff: cut off
    /// from every source, delivery abandoned under faults, or the stream
    /// was rejected because the node lags (missing base snapshot or
    /// budget-evicted blocks). They catch up via the repair workflow.
    pub nodes_lagging: u32,
    /// End-to-end registration seconds (first boot + snapshot + transfer
    /// under the configured [`DistributionPolicy`]).
    pub seconds: f64,
    /// Snapshot tag created on the scVolume.
    pub snapshot_tag: String,
}

/// Outcome of a VM boot on a compute node (paper Figure 7).
#[derive(Clone, Debug)]
pub struct BootOutcome {
    pub image: ImageId,
    pub node: NodeId,
    /// True when the node's ccVolume held the cache (scatter-hoard hit).
    pub warm: bool,
    /// True when the node *had* the cache but its stored blocks failed the
    /// integrity check, so the boot fell back to shared storage. Always
    /// `false` for a warm boot.
    pub degraded: bool,
    /// Bytes this boot moved over the network to the compute node.
    pub net_bytes: u64,
    /// Simulated boot duration at paper scale.
    pub report: BootReport,
}

/// Outcome of a lagging node's catch-up (paper Section 3.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejoinOutcome {
    /// Node was already in sync.
    UpToDate,
    /// Incremental snapshot stream applied.
    Incremental { wire_bytes: u64 },
    /// Base snapshot was collected; the whole scVolume was re-replicated.
    FullReplication { wire_bytes: u64 },
}

/// Outcome of a [`Squirrel::gc`] run (paper Section 3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct GcReport {
    /// Snapshots collected from the scVolume (and every ccVolume).
    pub snapshots_collected: u32,
    /// scVolume disk bytes freed by the collection.
    pub bytes_reclaimed: u64,
}

/// One compute node's entry in a [`ReplicationReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeReplication {
    pub node: NodeId,
    pub online: bool,
    /// Whether the ccVolume's file list matches the reference exactly.
    pub in_sync: bool,
    /// Caches the ccVolume currently holds.
    pub file_count: usize,
}

/// Outcome of [`Squirrel::check_replication`]: every node's sync state
/// against the scVolume's latest snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct ReplicationReport {
    /// The snapshot the comparison was taken against (`None` before the
    /// first registration, when the live file list is the reference).
    pub reference_snapshot: Option<String>,
    pub nodes: Vec<NodeReplication>,
}

impl ReplicationReport {
    /// The paper's invariant: every *online* node mirrors the scVolume.
    /// Offline nodes are expected to lag; they catch up on rejoin.
    pub fn is_consistent(&self) -> bool {
        self.nodes.iter().filter(|n| n.online).all(|n| n.in_sync)
    }

    /// Online nodes currently out of sync (empty iff consistent).
    pub fn lagging_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.online && !n.in_sync)
            .map(|n| n.node)
            .collect()
    }
}

/// Registration record of an image (see [`Squirrel::registration_info`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistrationInfo {
    pub image: ImageId,
    /// scVolume snapshot created by the registration.
    pub snapshot_tag: String,
    /// Simulated day the registration happened.
    pub day: u64,
}

/// Outcome of [`Squirrel::verify_boot`]: a boot-trace replay through the
/// real CoW → CoR → ccVolume data path, byte-checked against ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BootVerification {
    /// Bytes read and verified against the image content.
    pub bytes_verified: u64,
    /// Blocks the CoR layer had to fetch from the backing image (a warm
    /// cache keeps this at ~zero inside the working set).
    pub backing_fetches: u64,
}

/// Outcome of [`Squirrel::boot_storm`]: M VMs replay one image's boot
/// working set concurrently, served zero-copy from the nodes' hoarded
/// ccVolumes through a shard-locked ARC ([`SharedArcCache`]).
#[derive(Clone, Debug)]
#[must_use]
pub struct BootStormReport {
    pub image: ImageId,
    pub vms: u32,
    /// Worker threads the concurrent read phase used (`0` = all cores).
    pub threads: usize,
    /// VMs served from a warm (hoarded) ccVolume.
    pub warm_vms: u32,
    /// VMs that pulled the working set over the network instead.
    pub cold_vms: u32,
    /// Cold VMs whose node *held* the cache but failed the integrity check
    /// (degraded service from shared storage; a subset of `cold_vms`).
    pub degraded_vms: u32,
    /// Working-set blocks each VM read.
    pub blocks_per_vm: u64,
    /// Total payload bytes served to all VMs.
    pub bytes_served: u64,
    /// Network bytes the cold VMs moved.
    pub net_bytes: u64,
    /// Simulated per-boot seconds in VM order (queueing-adjusted per node).
    pub boot_seconds: Vec<f64>,
    /// Aggregate shared-ARC statistics over all warm nodes. Every hit is a
    /// decompression (and copy) avoided.
    pub arc: squirrel_zfs::ArcStats,
    /// Content hash over every VM's read bytes, in VM order — the
    /// determinism witness: bit-identical at any thread count.
    pub read_checksum: String,
}

/// Outcome of [`Squirrel::evict_cache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct EvictReport {
    pub node: NodeId,
    pub image: ImageId,
    /// Whether the cache was present before the eviction.
    pub was_cached: bool,
    /// ccVolume disk bytes the eviction reclaimed (data + DDT + pointers).
    pub disk_bytes_freed: u64,
    /// In-core DDT bytes the eviction reclaimed.
    pub ddt_mem_bytes_freed: u64,
    /// The image's boot count at eviction time — the popularity signal the
    /// budget policy ranked it by.
    pub popularity: u64,
}

/// Outcome of [`Squirrel::enforce_hoard_budgets`]: one deterministic
/// enforcement pass over every compute node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct BudgetReport {
    /// Every eviction the pass performed, in (node, eviction order).
    pub evictions: Vec<EvictReport>,
    /// Nodes that were over budget when the pass started.
    pub nodes_over_budget: u32,
    /// Nodes still over budget after evicting everything evictable (budget
    /// smaller than irreducible pool overhead — nothing is wedged, those
    /// nodes simply serve everything degraded).
    pub nodes_still_over: u32,
    /// Total ccVolume disk bytes reclaimed.
    pub disk_bytes_freed: u64,
    /// Total in-core DDT bytes reclaimed.
    pub ddt_mem_bytes_freed: u64,
}

impl BudgetReport {
    /// Every node fits its budget after the pass.
    pub fn is_within_budget(&self) -> bool {
        self.nodes_still_over == 0
    }
}

/// Outcome of [`Squirrel::rehoard_cache`]: a previously evicted cache pulled
/// back from the scVolume on demand (the paper's partial-hoarding fallback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct RehoardReport {
    pub node: NodeId,
    pub image: ImageId,
    /// Wire bytes the re-hoard moved (compressed frames + record headers).
    pub wire_bytes: u64,
    /// Cache blocks re-imported (holes included).
    pub blocks: u64,
    /// The warm peer that served the bytes, or `None` when the scVolume
    /// did (non-peer policies, or no peer qualified).
    pub peer: Option<NodeId>,
}

/// Outcome of a scrub-and-repair pass over one cVolume
/// ([`Squirrel::scrub_and_repair`] / [`Squirrel::scrub_and_repair_scvol`]).
/// Corrupt blocks are re-fetched from a replica holding an intact copy —
/// the scatter hoard *is* the redundancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct RepairReport {
    /// The repaired volume: a compute node's ccVolume, or `None` for the
    /// scVolume.
    pub node: Option<NodeId>,
    /// Unique records the scrub walked.
    pub blocks_checked: u64,
    /// Records whose stored bytes no longer hashed to their key.
    pub corrupt_found: u64,
    /// Corrupt records restored from an intact replica.
    pub repaired: u64,
    /// Corrupt records no reachable replica could heal.
    pub unrepaired: u64,
    /// Wire bytes the repair moved (compressed frames + record headers),
    /// charged to the network ledgers like any other transfer.
    pub refetch_bytes: u64,
}

impl RepairReport {
    /// The volume left the pass with every record intact.
    pub fn is_healed(&self) -> bool {
        self.unrepaired == 0
    }
}

/// Outcome of [`Squirrel::repair_replication`]: lagging online nodes pulled
/// back in sync via the rejoin path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct SyncRepairReport {
    /// Online nodes that were out of sync before the pass.
    pub lagging: u32,
    /// Nodes the pass brought back in sync.
    pub repaired: u32,
    /// Nodes that stayed lagging (storage unreachable or stream rejected).
    pub failed: u32,
    /// Catch-up stream bytes moved.
    pub wire_bytes: u64,
}

impl SyncRepairReport {
    pub fn all_repaired(&self) -> bool {
        self.failed == 0
    }
}

struct ComputeNode {
    ccvol: ZPool,
    online: bool,
    /// Caches the budget policy evicted from this node. Replication checks
    /// exempt them (the node is *deliberately* not hoarding them); a stream
    /// delivery or re-hoard that restores the file clears the mark.
    evicted: BTreeSet<ImageId>,
}

struct Registration {
    snapshot_tag: String,
    day: u64,
}

/// Outcome tally of one stream fan-out (see [`Squirrel::deliver_stream`]):
/// the numbers every delivery shape must report identically.
#[derive(Clone, Copy, Debug, Default)]
struct DeliveryStats {
    /// Receivers whose ccVolume applied the stream.
    updated: u32,
    /// Online receivers that did not (unreachable, abandoned, or lagging).
    lagging: u32,
    /// Simulated wall-clock seconds the whole fan-out took.
    seconds: f64,
    /// Bytes the storage tier transmitted (ledger delta).
    storage_bytes: u64,
    /// Bytes warm compute peers transmitted on its behalf (ledger delta).
    peer_bytes: u64,
    /// Receivers served by a peer (peer-assisted policy only).
    peer_hits: u64,
    /// Receivers the storage tier had to serve despite the peer-assisted
    /// policy (no peer qualified yet).
    peer_misses: u64,
}

/// How one receiver's `recv` outcome is treated — shared by the faulty and
/// fault-free delivery paths so their classifications cannot drift.
enum RecvDisposition {
    /// Stream applied (or an earlier duplicate already had).
    Delivered,
    /// The receiver lags: its base snapshot is missing (it slept through
    /// earlier registrations) or budget-evicted blocks the diff counts on
    /// are gone. Retrying the same stream cannot help; the rejoin/repair
    /// workflows own the catch-up.
    Lagging,
    /// Transient rejection (corrupt payload, unresolvable pointer): worth
    /// a bounded retry under a fault plan, fatal on the clean path.
    Retryable(RecvError),
}

fn classify_recv(result: Result<(), RecvError>) -> RecvDisposition {
    match result {
        Ok(()) | Err(RecvError::DuplicateTip(_)) => RecvDisposition::Delivered,
        Err(RecvError::MissingBase(_)) | Err(RecvError::MissingBlock(_)) => {
            RecvDisposition::Lagging
        }
        Err(e) => RecvDisposition::Retryable(e),
    }
}

/// The system: one scVolume, `compute_nodes` ccVolumes, a parallel FS for
/// the raw images, and a simulated clock (days).
pub struct Squirrel {
    config: SquirrelConfig,
    corpus: Arc<Corpus>,
    net: Network,
    gluster: GlusterVolume,
    /// Erasure-coded physical layer of the shared tier, when
    /// [`SharedStorage::ErasureCoded`] is configured: registration caches
    /// are striped into k+m shards across racks, and cold-path reads serve
    /// from any k (reconstructing through parity when domains are down).
    ec: Option<ErasureCodedVolume>,
    scvol: ZPool,
    nodes: Vec<ComputeNode>,
    registered: BTreeMap<ImageId, Registration>,
    /// Boot counts per image (single boots count 1, storms count their VM
    /// count) — the popularity signal hoard-budget eviction ranks by.
    popularity: BTreeMap<ImageId, u64>,
    day: u64,
    snapshot_days: BTreeMap<String, u64>,
    /// Monotonic registration counter: snapshot tags must be unique even
    /// when an image is deregistered and registered again.
    reg_seq: u64,
    sim: BootSim,
    registry: MetricsRegistry,
    /// Unlabeled handle used by the workflow layer (`squirrel_*` series).
    obs: Metrics,
    /// Shared `pool="ccvol"` handle: every ccVolume — including ones rebuilt
    /// on rejoin — records into the same commutative series, so parallel
    /// stream application stays deterministic.
    ccvol_obs: Metrics,
    /// Armed fault schedule, if any. Consulted only from serial
    /// orchestration code (never inside a parallel region), so one seed
    /// yields one schedule at any thread count.
    faults: Option<FaultPlan>,
    /// One persistent worker pool shared by every parallel region: the
    /// scVolume and all ccVolumes ingest through it, registration fans a
    /// stream out to receivers on it, and boot storms serve reads and
    /// replay boot timings on it. Workers spawn lazily on first use and
    /// live for the system's lifetime.
    workers: WorkerPool,
}

/// Adapter: expose a corpus image as a [`VirtualDisk`] for the registration
/// boot chain.
struct ImageDisk {
    corpus: Arc<Corpus>,
    image: ImageId,
}

impl VirtualDisk for ImageDisk {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        self.corpus.image(self.image).read_at(offset, buf);
    }

    fn len(&self) -> u64 {
        self.corpus.image(self.image).virtual_bytes()
    }
}

/// A materialized boot working set: `(offset, payload)` blocks in offset
/// order, as captured by the registration's copy-on-read cache.
type CacheBlocks = Vec<(u64, Arc<[u8]>)>;

impl Squirrel {
    /// Bring up the system for `corpus` (images known, none registered).
    pub fn new(config: SquirrelConfig, corpus: Arc<Corpus>) -> Self {
        assert!(config.storage_nodes >= 4, "gluster 2x2 needs four bricks");
        let registry = MetricsRegistry::new();
        let obs = if config.metrics { registry.handle() } else { Metrics::disabled() };
        let ccvol_obs = obs.with_label("pool", "ccvol");
        let mut net = Network::with_topology(
            config.link,
            config.compute_nodes,
            config.storage_nodes,
            config.topology,
        );
        net.set_metrics(&obs);
        let bricks: Vec<NodeId> =
            (config.compute_nodes..config.compute_nodes + 4).collect();
        let gluster = GlusterVolume::new(GlusterConfig::default(), bricks);
        let ec = match config.shared_storage {
            SharedStorage::Replicated => None,
            SharedStorage::ErasureCoded { k, m } => {
                let candidates: Vec<NodeId> = (config.compute_nodes
                    ..config.compute_nodes + config.storage_nodes)
                    .collect();
                Some(ErasureCodedVolume::new(
                    EcConfig { k, m, shard_unit: 64 * 1024 },
                    candidates,
                ))
            }
        };
        let workers = WorkerPool::new(config.threads);
        let ccvol_cfg = Self::ccvol_pool_config(&config);
        let nodes = (0..config.compute_nodes)
            .map(|_| {
                let mut ccvol = ZPool::new(ccvol_cfg);
                ccvol.set_metrics(&ccvol_obs);
                ccvol.set_worker_pool(workers.clone());
                ComputeNode { ccvol, online: true, evicted: BTreeSet::new() }
            })
            .collect();
        // The scVolume is the shared catalog: the hoard budget is a
        // per-compute-node constraint and does not apply to it.
        let mut scvol = ZPool::new(
            PoolConfig::new(config.block_size, config.codec)
                .with_threads(config.threads)
                .with_chunking(config.pool_chunking())
                .with_dedup_mode(config.dedup_mode),
        );
        scvol.set_metrics(&obs.with_label("pool", "scvol"));
        scvol.set_worker_pool(workers.clone());
        Squirrel {
            config,
            corpus,
            net,
            gluster,
            ec,
            scvol,
            nodes,
            registered: BTreeMap::new(),
            popularity: BTreeMap::new(),
            day: 0,
            snapshot_days: BTreeMap::new(),
            reg_seq: 0,
            sim: BootSim::new(),
            registry,
            obs,
            ccvol_obs,
            faults: None,
            workers,
        }
    }

    /// Arm a deterministic fault schedule: registration deliveries go
    /// through the lossy per-node path (drops, duplicates, transients,
    /// in-flight bit flips, crashed receives) with bounded retries and
    /// deterministic backoff. Disarm with [`Self::clear_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Disarm the fault schedule, returning it (and its tally) if one was
    /// armed.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// Tally of everything the armed plan has injected so far.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.faults.as_ref().map(|p| p.report())
    }

    /// The system's metrics registry. [`MetricsRegistry::snapshot`] after
    /// any workflow sequence is bit-identical across `threads` settings;
    /// see DESIGN.md's observability section for the contract.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn config(&self) -> &SquirrelConfig {
        &self.config
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The simulated clock, in days since bring-up.
    pub fn today(&self) -> u64 {
        self.day
    }

    /// Advance the clock (drives the GC window).
    pub fn advance_days(&mut self, days: u64) {
        self.day += days;
    }

    /// Pool configuration for compute nodes' ccVolumes: the hoard budget is
    /// carried as a pool quota so the pool reports pressure. Also used when
    /// a rejoin rebuilds a ccVolume from a full stream.
    fn ccvol_pool_config(config: &SquirrelConfig) -> PoolConfig {
        PoolConfig::new(config.block_size, config.codec)
            .with_threads(config.threads)
            .with_chunking(config.pool_chunking())
            .with_dedup_mode(config.dedup_mode)
            .with_quotas(config.hoard_budget.disk_bytes, config.hoard_budget.ddt_mem_bytes)
    }

    fn cache_file_name(image: ImageId) -> String {
        format!("cache-{image:06}")
    }

    /// Replay the registration's copy-on-read boot to materialize `image`'s
    /// cache: the boot trace drives reads through a CoR cache, capturing
    /// exactly the working set. Deterministic — the same image yields the
    /// same bytes — so the EC repair path can rebuild an authoritative copy
    /// long after registration.
    fn materialize_cache(&self, image: ImageId) -> (u64, CacheBlocks) {
        let trace = self.corpus.image(image).cache().boot_trace();
        let mut cor = CorCache::new(
            ImageDisk { corpus: Arc::clone(&self.corpus), image },
            self.config.block_size,
        );
        for op in &trace.ops {
            let mut buf = vec![0u8; op.len as usize];
            cor.read_at(op.offset, &mut buf);
        }
        (cor.cached_bytes(), cor.into_blocks())
    }

    /// Concatenate a cache's blocks (offset order) into the byte payload
    /// the erasure-coded tier stripes.
    fn ec_payload(blocks: &[(u64, Arc<[u8]>)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (_, data) in blocks {
            out.extend_from_slice(data);
        }
        out
    }

    /// Inverse of [`Self::cache_file_name`].
    fn image_of_cache_name(name: &str) -> Option<ImageId> {
        name.strip_prefix("cache-")?.parse().ok()
    }

    fn snapshot_tag(image: ImageId, seq: u64) -> String {
        format!("vmi-{image:06}-r{seq}")
    }

    /// Register an image (paper Section 3.2): first boot on a storage node
    /// behind a copy-on-read cache, store the cache into the scVolume,
    /// snapshot, and multicast the incremental diff to online nodes.
    pub fn register(&mut self, image: ImageId) -> Result<RegisterReport, SquirrelError> {
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }
        if self.registered.contains_key(&image) {
            return Err(SquirrelError::AlreadyRegistered(image));
        }
        let mut span = self.obs.span("register");
        span.field("image", image);

        // 1. First boot behind a CoR cache on the storage node. The cache
        //    captures exactly the boot working set.
        let (cache_bytes, blocks) = self.materialize_cache(image);

        // 2. Move the cache from memory into the scVolume through the
        //    staged pipeline: hashing and compression fan out over workers,
        //    the dedup/file-table commit stays serial and in block order,
        //    so the pool state matches a write_block replay exactly.
        let name = Self::cache_file_name(image);
        self.scvol.import_blocks_parallel(&name, &blocks);

        // 2b. Under erasure-coded shared storage, the cache's physical
        //     bytes also stripe into k+m shards across racks — the layer a
        //     rack loss actually tests.
        if let Some(ec) = self.ec.as_mut() {
            let payload = Self::ec_payload(&blocks);
            let storage_root = self.config.compute_nodes;
            ec.write(&mut self.net, storage_root, &name, &payload)
                .map_err(SquirrelError::Ec)?;
        }

        // 3. Snapshot the scVolume for this registration.
        self.reg_seq += 1;
        let tag = Self::snapshot_tag(image, self.reg_seq);
        self.scvol.snapshot(&tag);
        self.snapshot_days.insert(tag.clone(), self.day);

        // 4. Distribute the incremental diff to all online compute nodes
        //    under the configured DistributionPolicy. With a fault plan
        //    armed, delivery goes per node through the lossy path (retry +
        //    deterministic backoff); either way the one executor charges
        //    the ledgers and dist counters.
        let stream = self.scvol.send_latest().map_err(SquirrelError::Send)?;
        let wire = stream.wire_bytes();
        let online: Vec<NodeId> = (0..self.nodes.len() as u32)
            .filter(|&n| self.nodes[n as usize].online)
            .collect();
        let delivery = self.deliver_stream(&stream, &online)?;

        // First boot takes a normal boot's time (paper: ~20 s), snapshot
        // creation is cheap, multicast as computed.
        let first_boot = self
            .sim
            .boot(
                &paper_scale_trace(self.paper_ws_bytes(image), image as u64),
                &Backend::ColdCache {
                    net_mbps: self.config.link.mbps(),
                    image_bytes: self.paper_image_bytes(image),
                },
            )
            .total_seconds;

        self.registered.insert(image, Registration { snapshot_tag: tag.clone(), day: self.day });
        // A delivered stream mirrors the scVolume's tip, restoring any cache
        // the budget policy had evicted: clear the marks for restored files.
        self.reconcile_evictions();

        self.obs.inc("squirrel_register_total");
        self.obs.add("squirrel_register_wire_bytes_total", wire);
        self.obs.add("squirrel_register_cache_bytes_total", cache_bytes);
        let sc = self.scvol.stats();
        self.obs.set_gauge("squirrel_registered_images", self.registered.len() as u64);
        self.obs.set_gauge("squirrel_scvol_ddt_entries", sc.unique_blocks);
        self.obs.set_gauge("squirrel_scvol_disk_bytes", sc.total_disk_bytes());
        self.obs.set_gauge("squirrel_scvol_ddt_mem_bytes", sc.ddt_memory_bytes);
        span.field("cache_bytes", cache_bytes);
        span.field("wire_bytes", wire);
        span.field("nodes_updated", u64::from(delivery.updated));
        span.field("nodes_lagging", u64::from(delivery.lagging));
        span.field("snapshot_tag", tag.as_str());

        Ok(RegisterReport {
            image,
            cache_bytes,
            diff_wire_bytes: wire,
            nodes_updated: delivery.updated,
            nodes_lagging: delivery.lagging,
            seconds: first_boot + 1.0 + delivery.seconds,
            snapshot_tag: tag,
        })
    }

    /// Resolve the configured [`DistributionPolicy`] into a deterministic
    /// [`TransferPlan`] for fanning one payload out to `targets`: which
    /// link carries each copy, in which parallel round, and which
    /// receivers have no usable source at all (they stay lagging).
    /// Partitions are respected through [`Network::is_reachable`]. Only
    /// consulted from serial orchestration code, so one configuration
    /// yields one plan at any thread count.
    pub fn plan_fanout(&self, targets: &[NodeId], payload_bytes: u64) -> TransferPlan {
        let root = self.config.compute_nodes; // first storage node
        let policy = self.config.distribution;
        let mut plan = TransferPlan::new(policy, root, payload_bytes);
        match policy {
            DistributionPolicy::Unicast => {
                // Serial storage uplink: one leg per receiver, one round
                // each — the cost model the paper's Section 3.2 worries
                // about at fleet scale.
                let mut round = 0u32;
                for &t in targets {
                    if self.net.is_reachable(root, t) {
                        plan.legs.push(TransferLeg { src: root, dst: t, round, from_peer: false });
                        round += 1;
                    } else {
                        plan.unreachable.push(t);
                    }
                }
            }
            DistributionPolicy::Multicast { .. } | DistributionPolicy::Pipeline => {
                // Group shapes ride one charged network call over every
                // receiver the storage tier can reach.
                for &t in targets {
                    if self.net.is_reachable(root, t) {
                        plan.group.push(t);
                    } else {
                        plan.unreachable.push(t);
                    }
                }
            }
            DistributionPolicy::PeerAssisted => self.plan_peer_rounds(targets, &mut plan),
        }
        plan
    }

    /// Doubling rounds for the peer-assisted shape: the storage tier seeds
    /// the first copy; every delivered receiver becomes a donor and serves
    /// its nearest pending receiver in later rounds, so capacity doubles
    /// per round. The storage tier steps back in (one receiver per round)
    /// only for receivers partitioned from every donor.
    fn plan_peer_rounds(&self, targets: &[NodeId], plan: &mut TransferPlan) {
        let root = plan.root;
        let mut donors: Vec<NodeId> = Vec::new();
        let mut pending: Vec<NodeId> = targets.to_vec();
        let mut round = 0u32;
        while !pending.is_empty() {
            let mut busy: BTreeSet<NodeId> = BTreeSet::new();
            let mut root_used = false;
            let mut served: Vec<NodeId> = Vec::new();
            let mut waiting: Vec<NodeId> = Vec::new();
            for &t in &pending {
                let donor = donors
                    .iter()
                    .copied()
                    .filter(|&d| !busy.contains(&d) && self.net.is_reachable(d, t))
                    .min_by_key(|&d| (d.abs_diff(t), d));
                if let Some(d) = donor {
                    busy.insert(d);
                    plan.legs.push(TransferLeg { src: d, dst: t, round, from_peer: true });
                    served.push(t);
                } else if donors.iter().any(|&d| self.net.is_reachable(d, t)) {
                    // Every donor that could serve it is busy this round.
                    waiting.push(t);
                } else if self.net.is_reachable(root, t) {
                    if root_used {
                        waiting.push(t);
                    } else {
                        root_used = true;
                        plan.legs
                            .push(TransferLeg { src: root, dst: t, round, from_peer: false });
                        served.push(t);
                    }
                } else if targets.iter().any(|&o| o != t && self.net.is_reachable(o, t)) {
                    // A future donor might still reach it.
                    waiting.push(t);
                } else {
                    plan.unreachable.push(t);
                }
            }
            if served.is_empty() {
                // No source can make progress; whatever is left stays
                // lagging until links heal.
                plan.unreachable.append(&mut waiting);
                break;
            }
            donors.extend(served);
            pending = waiting;
            round += 1;
        }
    }

    /// The one fan-out executor behind [`Self::register`]: resolve the
    /// configured policy into a [`TransferPlan`], charge the network per
    /// shape (or run the lossy per-node path when a fault plan is armed),
    /// apply the stream to every receiver that got a copy, and record the
    /// `squirrel_dist_*` counters — identically for every shape.
    fn deliver_stream(
        &mut self,
        stream: &SendStream,
        online: &[NodeId],
    ) -> Result<DeliveryStats, SquirrelError> {
        let storage_tx0 = self.net.storage_tx_total();
        let compute_tx0 = self.net.compute_tx_total();
        let mut stats = if let Some(mut plan) = self.faults.take() {
            let stats = self.deliver_with_faults(&mut plan, stream, online);
            self.faults = Some(plan);
            stats
        } else {
            self.deliver_clean(stream, online)?
        };
        // Byte attribution comes from the ledgers themselves, so every
        // shape (and the fault path's retries and duplicates) is counted
        // by what actually crossed each link.
        stats.storage_bytes = self.net.storage_tx_total() - storage_tx0;
        stats.peer_bytes = self.net.compute_tx_total() - compute_tx0;
        self.record_dist(&stats);
        Ok(stats)
    }

    /// Record the distribution counters for one completed fan-out or
    /// restore transfer. Same series regardless of shape or fault state.
    fn record_dist(&self, stats: &DeliveryStats) {
        self.obs.add_with(
            "squirrel_dist_transfers_total",
            &[("policy", self.config.distribution.name())],
            1,
        );
        self.obs.add("squirrel_dist_storage_bytes_total", stats.storage_bytes);
        self.obs.add("squirrel_dist_peer_bytes_total", stats.peer_bytes);
        self.obs.add("squirrel_dist_peer_hits_total", stats.peer_hits);
        self.obs.add("squirrel_dist_peer_misses_total", stats.peer_misses);
        self.obs
            .observe("squirrel_dist_transfer_seconds_ms", (stats.seconds * 1000.0).round() as u64);
    }

    /// Fault-free delivery: charge the plan's group call or legs, then
    /// apply the one prepared stream to every receiver that got a copy
    /// concurrently (N independent receivers, bit-identical at any thread
    /// count).
    fn deliver_clean(
        &mut self,
        stream: &SendStream,
        online: &[NodeId],
    ) -> Result<DeliveryStats, SquirrelError> {
        let wire = stream.wire_bytes();
        let plan = self.plan_fanout(online, wire);
        let mut seconds = 0.0f64;
        let mut peer_hits = 0u64;
        let mut peer_misses = 0u64;
        let mut delivered: BTreeSet<NodeId> = BTreeSet::new();

        // Group shapes ride one charged network call. A cut compute-to-
        // compute relay edge fails the group atomically; delivery then
        // degrades to serial unicast from the storage tier rather than
        // failing the registration.
        let mut legs = plan.legs.clone();
        if !plan.group.is_empty() {
            let result = match plan.policy {
                DistributionPolicy::Multicast { fanout } => {
                    self.net.try_tree_multicast(plan.root, &plan.group, wire, fanout)
                }
                _ => self.net.try_pipeline(plan.root, &plan.group, wire),
            };
            match result {
                Ok(r) => {
                    seconds += r.seconds;
                    delivered.extend(plan.group.iter().copied());
                }
                Err(_) => {
                    legs = plan
                        .group
                        .iter()
                        .enumerate()
                        .map(|(i, &dst)| TransferLeg {
                            src: plan.root,
                            dst,
                            round: i as u32,
                            from_peer: false,
                        })
                        .collect();
                }
            }
        }

        // Leg shapes: legs sharing a round overlap in time, rounds
        // serialize — so peer-assisted fan-out costs one payload time per
        // doubling round while serial unicast costs one per receiver.
        let mut round_secs: BTreeMap<u32, f64> = BTreeMap::new();
        for leg in &legs {
            // The plan was resolved against this same network state, so a
            // failing leg means a malformed plan; the receiver simply
            // stays lagging.
            if let Ok(r) = self.net.try_unicast(leg.src, leg.dst, wire) {
                delivered.insert(leg.dst);
                if leg.from_peer {
                    peer_hits += 1;
                } else if plan.policy == DistributionPolicy::PeerAssisted {
                    peer_misses += 1;
                }
                let slot = round_secs.entry(leg.round).or_insert(0.0);
                *slot = slot.max(r.seconds);
            }
        }
        seconds += round_secs.values().sum::<f64>();

        let workers = self.workers.clone();
        let targets: Vec<&mut ZPool> = self
            .nodes
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| delivered.contains(&(*i as NodeId)))
            .map(|(_, n)| &mut n.ccvol)
            .collect();
        let mut updated = 0u32;
        for result in stream.apply_all_on(targets, &workers) {
            match classify_recv(result) {
                RecvDisposition::Delivered => updated += 1,
                RecvDisposition::Lagging => {}
                // A stream built straight off the scVolume resolves every
                // block — but an injected-corrupt scVolume can produce a
                // rejected stream, so surface anything else instead of
                // asserting.
                RecvDisposition::Retryable(e) => return Err(SquirrelError::Recv(e)),
            }
        }
        Ok(DeliveryStats {
            updated,
            lagging: online.len() as u32 - updated,
            seconds,
            peer_hits,
            peer_misses,
            ..DeliveryStats::default()
        })
    }

    /// Deliver one registration stream to every online node over the lossy
    /// network: each node is served independently with bounded retries and
    /// deterministic exponential backoff (charged in simulated seconds).
    /// Every fault decision is drawn here, serially — never inside a worker
    /// thread — so a plan seed yields one schedule at any thread count.
    /// Under [`DistributionPolicy::PeerAssisted`] a receiver that took the
    /// stream earlier in this call donates to later receivers (nearest
    /// reachable donor; the storage tier is the fallback). Nodes whose
    /// delivery is abandoned stay lagging; the repair workflow
    /// ([`Self::repair_replication`]) catches them up.
    fn deliver_with_faults(
        &mut self,
        plan: &mut FaultPlan,
        stream: &SendStream,
        online: &[NodeId],
    ) -> DeliveryStats {
        let storage_src = self.config.compute_nodes; // first storage node
        let peer_policy = self.config.distribution == DistributionPolicy::PeerAssisted;
        let framed = stream.encode_framed();
        let wire = stream.wire_bytes();
        let mut updated = 0u32;
        let mut secs = 0.0f64;
        let mut peer_hits = 0u64;
        let mut peer_misses = 0u64;
        let mut donors: Vec<NodeId> = Vec::new();
        for &node in online {
            let src = if peer_policy {
                donors
                    .iter()
                    .copied()
                    .filter(|&d| self.net.is_reachable(d, node))
                    .min_by_key(|&d| (d.abs_diff(node), d))
                    .unwrap_or(storage_src)
            } else {
                storage_src
            };
            let mut delivered = false;
            for attempt in 0..=plan.max_retries() {
                if attempt > 0 {
                    plan.note_retry();
                    self.obs.inc("squirrel_fault_retries_total");
                    secs += plan.backoff_secs(attempt - 1);
                }
                let fault = plan.transfer_fault();
                if fault == TransferFault::Transient {
                    // The link errors before any bytes move.
                    self.obs.inc("squirrel_fault_net_transients_total");
                    continue;
                }
                // Bytes move for drops, duplicates and clean deliveries
                // alike — a dropped stream still consumed the wire.
                let t = match self.net.try_unicast(src, node, wire) {
                    Ok(r) => r.seconds,
                    Err(_) => {
                        // Link partitioned: nothing was charged; burn the
                        // attempt (the cut may heal between workflow steps).
                        self.obs.inc("squirrel_fault_partitioned_total");
                        continue;
                    }
                };
                secs += t;
                if fault == TransferFault::Drop {
                    self.obs.inc("squirrel_fault_net_drops_total");
                    continue;
                }
                if fault == TransferFault::Duplicate {
                    // The frame arrives twice; the second copy is charged
                    // and discarded by the transactional recv's tip check.
                    if let Ok(r) = self.net.try_unicast(src, node, wire) {
                        secs += r.seconds;
                    }
                    self.obs.inc("squirrel_fault_net_duplicates_total");
                }
                // In-flight corruption: flip one bit of this node's copy.
                // The frame checksum catches it before anything is applied.
                let mut bytes = framed.clone();
                if plan.corrupt_stream(&mut bytes) {
                    self.obs.inc("squirrel_fault_stream_corruptions_total");
                }
                let decoded = match SendStream::decode_framed(&bytes) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let ccvol = &mut self.nodes[node as usize].ccvol;
                if plan.crash_mid_recv() {
                    // Validate, then die before the apply phase: the pool is
                    // untouched and the retry starts clean.
                    self.obs.inc("squirrel_fault_recv_crashes_total");
                    let _ = ccvol.recv_crashed(&decoded);
                    continue;
                }
                match classify_recv(ccvol.recv(&decoded)) {
                    RecvDisposition::Delivered => {
                        delivered = true;
                        updated += 1;
                        break;
                    }
                    RecvDisposition::Lagging => break,
                    // Corrupt source payload or unresolvable pointer:
                    // bounded retries, then give up.
                    RecvDisposition::Retryable(_) => continue,
                }
            }
            if delivered {
                if peer_policy {
                    if src == storage_src {
                        peer_misses += 1;
                    } else {
                        peer_hits += 1;
                    }
                }
                donors.push(node);
            } else {
                plan.note_giveup();
                self.obs.inc("squirrel_fault_giveups_total");
            }
        }
        DeliveryStats {
            updated,
            lagging: online.len() as u32 - updated,
            seconds: secs,
            peer_hits,
            peer_misses,
            ..DeliveryStats::default()
        }
    }

    /// Paper-volume working-set bytes of `image` (scaled back up).
    fn paper_ws_bytes(&self, image: ImageId) -> u64 {
        self.corpus.image(image).cache().bytes() * self.corpus.config().scale
    }

    /// Paper-volume virtual image size.
    fn paper_image_bytes(&self, image: ImageId) -> u64 {
        self.corpus.image(image).virtual_bytes() * self.corpus.config().scale
    }

    /// Boot `image` on compute node `node` (paper Section 3.3): warm when
    /// the ccVolume holds the cache (zero network I/O), cold otherwise
    /// (CoW over the parallel file system).
    pub fn boot(&mut self, node: NodeId, image: ImageId) -> Result<BootOutcome, SquirrelError> {
        if !self
            .nodes
            .get(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?
            .online
        {
            return Err(SquirrelError::NodeOffline(node));
        }
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }
        let n = &self.nodes[node as usize];

        let name = Self::cache_file_name(image);
        let trace = paper_scale_trace(self.paper_ws_bytes(image), image as u64);
        // Trust, but verify: a hoarded cache only serves the boot if its
        // stored records still hash to their keys. Silent corruption
        // downgrades to the cold path — the shared volume is the safe
        // fallback until scrub-and-repair heals the replica. A cache the
        // budget policy evicted is degraded too: the boot works, from
        // shared storage, exactly as the paper's partial hoarding promises.
        let cached = n.ccvol.has_file(&name);
        let warm = cached && n.ccvol.file_is_intact(&name).unwrap_or(false);
        let degraded = (cached && !warm) || (!cached && n.evicted.contains(&image));

        if warm {
            let backend = self.warm_backend(&n.ccvol, &name);
            let report = self.sim.boot(&trace, &backend);
            // Popularity counts only boots that succeed: the warm path is
            // infallible from here, the cold path below counts after its
            // shared read went through.
            self.note_popularity(image, 1);
            self.record_boot(node, image, true, 0);
            Ok(BootOutcome { image, node, warm: true, degraded: false, net_bytes: 0, report })
        } else {
            // Cold path: the boot working set crosses the network from the
            // shared tier (charged at corpus scale in the ledger, simulated
            // at paper scale for timing). A node cut off from every replica
            // — or from k shards — cannot boot at all.
            let ws_corpus_scale = self.shared_read(node, image)?;
            let report = self.sim.boot(
                &trace,
                &Backend::ColdCache {
                    net_mbps: self.config.link.mbps(),
                    image_bytes: self.paper_image_bytes(image),
                },
            );
            self.note_popularity(image, 1);
            self.record_boot(node, image, false, ws_corpus_scale);
            if degraded {
                self.obs.inc("squirrel_boot_degraded_total");
            }
            Ok(BootOutcome {
                image,
                node,
                warm: false,
                degraded,
                net_bytes: ws_corpus_scale,
                report,
            })
        }
    }

    /// Serve a cold boot's working set from the shared tier, charging the
    /// transfer to the network ledgers. Under erasure-coded storage the
    /// registered cache object serves from any k reachable shards
    /// (reconstructing through parity when a domain is down — tallied in
    /// `squirrel_ec_*`); otherwise, or for images never registered, the
    /// replicated gluster volume serves the raw bytes. Returns the bytes
    /// that crossed the network.
    fn shared_read(&mut self, node: NodeId, image: ImageId) -> Result<u64, SquirrelError> {
        if let Some(ec) = self.ec.as_mut() {
            let name = Self::cache_file_name(image);
            if ec.has_object(&name) {
                let r = ec.try_read(&mut self.net, node, &name).map_err(SquirrelError::Ec)?;
                if r.degraded {
                    self.obs.inc("squirrel_ec_degraded_reads_total");
                    self.obs.add("squirrel_ec_shards_reconstructed_total", r.reconstructed);
                }
                return Ok(r.net_bytes);
            }
        }
        let ws_corpus_scale = self.corpus.image(image).cache().bytes();
        self.gluster
            .try_read(&mut self.net, node, 0, ws_corpus_scale)
            .map_err(SquirrelError::Net)?;
        Ok(ws_corpus_scale)
    }

    /// Derive the dedup-backend parameters for a boot served from a warm
    /// (hoarded) ccVolume, from the pool's real dedup/compression state.
    fn warm_backend(&self, ccvol: &ZPool, name: &str) -> Backend {
        let stats = ccvol.stats();
        let scale = self.corpus.config().scale;
        let threshold = 1 + ccvol.snapshot_tags().len() as u64;
        let shared = ccvol.file_shared_fraction(name, threshold).unwrap_or(0.6);
        Backend::DedupVolume(DedupVolumeParams {
            record_size: self.config.block_size as u64,
            compressed_fraction: (stats.physical_bytes as f64
                / (stats.unique_blocks.max(1) * stats.block_size) as f64)
                .clamp(0.05, 1.0),
            ddt_entries: stats.unique_blocks * scale / self.config.block_size as u64 * 512,
            pool_physical_bytes: (stats.physical_bytes * scale).max(1),
            shared_fraction: shared,
            ..DedupVolumeParams::new(self.config.block_size as u64)
        })
    }

    /// Count boots of `image` — the popularity signal
    /// [`Self::enforce_hoard_budgets`] ranks eviction candidates by. Called
    /// only from serial workflow code, so the counts (and the labeled
    /// counter) are deterministic at any thread count.
    fn note_popularity(&mut self, image: ImageId, boots: u64) {
        *self.popularity.entry(image).or_insert(0) += boots;
        if self.obs.is_enabled() {
            self.obs.add_with(
                "squirrel_image_boots_total",
                &[("image", image.to_string().as_str())],
                boots,
            );
        }
    }

    /// Boot count of `image` across single boots (1 each) and storms (VM
    /// count each).
    pub fn image_popularity(&self, image: ImageId) -> u64 {
        self.popularity.get(&image).copied().unwrap_or(0)
    }

    /// Exponentially decay every image's popularity: each count becomes
    /// `floor(count * factor)` and entries that cool to zero are dropped.
    /// Without decay the signal is a monotone counter — an image hot on day
    /// one outranks everything forever and is never evictable, however cold
    /// it has gone. Run on a cadence (the fleet driver does), decay turns
    /// popularity into a recency-weighted score: each surviving count is a
    /// geometric sum of past boots, so [`Self::enforce_hoard_budgets`]
    /// evicts what stopped booting, not what never boomed. `factor` is
    /// clamped to `[0, 1]`; returns how many images cooled to zero.
    pub fn decay_popularity(&mut self, factor: f64) -> u64 {
        let f = factor.clamp(0.0, 1.0);
        let mut dropped = 0u64;
        self.popularity.retain(|_, count| {
            *count = (*count as f64 * f).floor() as u64;
            if *count == 0 {
                dropped += 1;
                false
            } else {
                true
            }
        });
        self.obs.inc("squirrel_popularity_decays_total");
        self.obs.add("squirrel_popularity_dropped_total", dropped);
        dropped
    }

    /// Unlabeled workflow metrics handle, for sibling orchestration modules
    /// in this crate (the fleet driver records `squirrel_fleet_*` series
    /// through it).
    pub(crate) fn obs_handle(&self) -> &Metrics {
        &self.obs
    }

    /// Per-node boot accounting (serial: boots never run concurrently).
    fn record_boot(&self, node: NodeId, image: ImageId, warm: bool, net_bytes: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        let result = if warm { "warm" } else { "cold" };
        self.obs.add_with(
            "squirrel_boot_total",
            &[("node", node.to_string().as_str()), ("result", result)],
            1,
        );
        self.obs.add("squirrel_boot_net_bytes_total", net_bytes);
        self.obs.event(
            "boot",
            &[
                ("node", node.into()),
                ("image", image.into()),
                ("warm", warm.into()),
                ("net_bytes", net_bytes.into()),
            ],
        );
    }

    /// Serve a boot storm: `vms` instances of `image` boot at once,
    /// round-robined over the online compute nodes. Warm nodes serve every
    /// working-set block zero-copy from their hoarded ccVolume through a
    /// shard-locked [`SharedArcCache`] (a warm read is a refcount bump on
    /// the pool's shared payload — `arc_bytes_copied_total` stays zero);
    /// cold nodes pull the working set over the network first. The read
    /// phase fans out over `config.threads` workers; read bytes, ARC
    /// statistics, and metric snapshots are bit-identical at any thread
    /// count (see [`BootStormReport::read_checksum`]).
    ///
    /// Errors: [`SquirrelError::UnknownImage`] for an unknown image;
    /// [`SquirrelError::NodeOffline`] (reported against node 0) when every
    /// compute node is offline.
    pub fn boot_storm(
        &mut self,
        image: ImageId,
        vms: u32,
    ) -> Result<BootStormReport, SquirrelError> {
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }
        let online: Vec<usize> =
            (0..self.nodes.len()).filter(|&i| self.nodes[i].online).collect();
        if online.is_empty() {
            return Err(SquirrelError::NodeOffline(0));
        }
        let threads = self.config.threads;
        let bs = self.config.block_size as u64;
        let name = Self::cache_file_name(image);
        let mut span = self.obs.span("boot_storm");
        span.field("image", image);
        span.field("vms", u64::from(vms));

        // VM i boots on the i-th online node, round-robin.
        let assignments: Vec<usize> =
            (0..vms as usize).map(|i| online[i % online.len()]).collect();

        // The working set every VM reads: the boot trace's blocks at
        // cVolume record granularity — exactly the set registration's
        // copy-on-read boot captured into the cache file.
        let trace = self.corpus.image(image).cache().boot_trace();
        let mut block_set = BTreeSet::new();
        for op in &trace.ops {
            if op.len == 0 {
                continue;
            }
            let first = op.offset / bs;
            let last = (op.offset + op.len as u64 - 1) / bs;
            block_set.extend(first..=last);
        }
        let blocks: Vec<u64> = block_set.into_iter().collect();

        // Classify each participating node once: warm only when the cache
        // is present *and* passes the integrity walk; a present-but-corrupt
        // cache — like one the budget policy evicted — serves its VMs
        // degraded from shared storage.
        let mut node_warm: BTreeMap<usize, bool> = BTreeMap::new();
        let mut node_degraded: BTreeMap<usize, bool> = BTreeMap::new();
        for &node in &assignments {
            if node_warm.contains_key(&node) {
                continue;
            }
            let cc = &self.nodes[node].ccvol;
            let cached = cc.has_file(&name);
            let warm = cached && cc.file_is_intact(&name).unwrap_or(false);
            let evicted = !cached && self.nodes[node].evicted.contains(&image);
            node_warm.insert(node, warm);
            node_degraded.insert(node, (cached && !warm) || evicted);
        }

        // Cold nodes fetch the working set over the network up front
        // (serial: the network ledger is single-threaded state).
        let mut net_bytes = 0u64;
        let mut cold_vms = 0u32;
        let mut degraded_vms = 0u32;
        for &node in &assignments {
            if !node_warm[&node] {
                net_bytes += self.shared_read(node as NodeId, image)?;
                cold_vms += 1;
                if node_degraded[&node] {
                    degraded_vms += 1;
                }
            }
        }
        let warm_vms = vms - cold_vms;

        // One shard-locked ARC per warm node. The byte budget splits per
        // shard, so oversize by the shard count: even a fully skewed key
        // distribution must never evict — evictions are the one
        // schedule-dependent statistic (see DESIGN.md's determinism
        // contract).
        let ws_bytes = (blocks.len() as u64 * bs).max(bs);
        let mut caches: BTreeMap<usize, SharedArcCache> = BTreeMap::new();
        for &node in &assignments {
            if node_warm[&node] && !caches.contains_key(&node) {
                let mut cache = SharedArcCache::new(ws_bytes * 16, 16);
                cache.set_metrics(&self.ccvol_obs);
                caches.insert(node, cache);
            }
        }

        // Concurrent read phase: every VM reads its whole working set. Warm
        // VMs go through the shared ARC (a hit is a refcount bump on the
        // one decompressed buffer); cold VMs read the image bytes the
        // network just delivered. Results come back in VM order, so the
        // checksum is schedule-independent.
        let nodes = &self.nodes;
        let corpus = &self.corpus;
        let raw: Vec<Result<(u64, String), SquirrelError>> =
            self.workers.parallel_map(&assignments, |_i, &node| {
                let mut bytes = Vec::with_capacity(blocks.len() * bs as usize);
                if let Some(cache) = caches.get(&node) {
                    for &b in &blocks {
                        let data = cache
                            .read_through(&nodes[node].ccvol, &name, b)
                            .ok_or(SquirrelError::MissingCache {
                                node: node as NodeId,
                                image,
                            })?;
                        bytes.extend_from_slice(&data);
                    }
                } else {
                    let handle = corpus.image(image);
                    let mut buf = vec![0u8; bs as usize];
                    for &b in &blocks {
                        handle.read_at(b * bs, &mut buf);
                        bytes.extend_from_slice(&buf);
                    }
                }
                Ok((bytes.len() as u64, squirrel_hash::ContentHash::of(&bytes).to_hex()))
            });
        let mut per_vm = Vec::with_capacity(raw.len());
        for r in raw {
            per_vm.push(r?);
        }

        let bytes_served: u64 = per_vm.iter().map(|(n, _)| n).sum();
        let mut concat = String::new();
        for (_, hex) in &per_vm {
            concat.push_str(hex);
        }
        let read_checksum = squirrel_hash::ContentHash::of(concat.as_bytes()).to_hex();

        // Every fallible phase is behind us: only now do the storm's VMs
        // count toward the eviction signal. A storm that errored out above
        // (offline fleet, unreachable storage, missing cache) must not
        // inflate popularity for boots that never happened.
        self.note_popularity(image, u64::from(vms));

        // Timing: VMs sharing a node queue on that node's device. Backends
        // derive serially (they read pool state), then the node groups
        // replay concurrently on the persistent worker pool — `BootSim::boot`
        // is pure, and the serial reduction below assigns results in node
        // order, so `boot_seconds` is bit-identical at any thread count.
        let paper_trace = paper_scale_trace(self.paper_ws_bytes(image), image as u64);
        let mut by_node: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (vm, &node) in assignments.iter().enumerate() {
            by_node.entry(node).or_default().push(vm);
        }
        let groups: Vec<(Vec<usize>, Backend)> = by_node
            .iter()
            .map(|(&node, vm_ids)| {
                let backend = if caches.contains_key(&node) {
                    self.warm_backend(&self.nodes[node].ccvol, &name)
                } else {
                    Backend::ColdCache {
                        net_mbps: self.config.link.mbps(),
                        image_bytes: self.paper_image_bytes(image),
                    }
                };
                (vm_ids.clone(), backend)
            })
            .collect();
        let sim = &self.sim;
        let workers = &self.workers;
        let timed = workers.parallel_map(&groups, |_i, (vm_ids, backend)| {
            let traces = vec![paper_trace.clone(); vm_ids.len()];
            sim.boot_concurrent_on(&traces, backend, workers)
        });
        let mut boot_seconds = vec![0.0f64; vms as usize];
        for ((vm_ids, _), reports) in groups.iter().zip(&timed) {
            for (&vm, report) in vm_ids.iter().zip(reports) {
                boot_seconds[vm] = report.total_seconds;
            }
        }

        // Aggregate ARC statistics over the warm nodes. Every hit is a
        // decompression (and a payload copy) the shared read path avoided.
        let mut arc = squirrel_zfs::ArcStats::default();
        for cache in caches.values() {
            let s = cache.stats();
            arc.hits += s.hits;
            arc.misses += s.misses;
            arc.evictions += s.evictions;
        }

        // Serial post-phase: record the storm in deterministic VM order.
        for &s in &boot_seconds {
            self.obs
                .observe("squirrel_boot_storm_seconds_ms", (s * 1000.0).round() as u64);
        }
        self.obs.add("squirrel_boot_storm_boots_total", u64::from(vms));
        self.obs.add("squirrel_boot_storm_bytes_total", bytes_served);
        self.obs.add("squirrel_boot_storm_copies_avoided_total", arc.hits);
        self.obs.add("squirrel_boot_storm_net_bytes_total", net_bytes);
        if degraded_vms > 0 {
            self.obs.add("squirrel_boot_degraded_total", u64::from(degraded_vms));
        }
        span.field("warm_vms", u64::from(warm_vms));
        span.field("cold_vms", u64::from(cold_vms));
        span.field("bytes_served", bytes_served);
        span.field("read_checksum", read_checksum.as_str());

        Ok(BootStormReport {
            image,
            vms,
            threads,
            warm_vms,
            cold_vms,
            degraded_vms,
            blocks_per_vm: blocks.len() as u64,
            bytes_served,
            net_bytes,
            boot_seconds,
            arc,
            read_checksum,
        })
    }

    /// Deregister an image (paper Section 3.4): delete the VMI and its
    /// cache from the scVolume. No snapshot is taken; the deletion reaches
    /// ccVolumes with the next registration's diff.
    pub fn deregister(&mut self, image: ImageId) -> Result<(), SquirrelError> {
        let reg = self
            .registered
            .remove(&image)
            .ok_or(SquirrelError::NotRegistered(image))?;
        let _ = reg;
        let name = Self::cache_file_name(image);
        self.scvol.delete_file(&name);
        if let Some(ec) = self.ec.as_mut() {
            ec.remove_object(&name);
        }
        Ok(())
    }

    /// Daily garbage collection (paper Section 3.4): on every cVolume, keep
    /// snapshots from the last `n` days plus the latest one regardless of
    /// age.
    pub fn gc(&mut self) -> GcReport {
        let mut span = self.obs.span("gc");
        let before = self.scvol.stats().total_disk_bytes();
        let cutoff = self.day.saturating_sub(self.config.gc_window_days);
        let latest = self.scvol.latest_snapshot().map(|s| s.to_string());
        let doomed: Vec<String> = self
            .scvol
            .snapshot_tags()
            .iter()
            .filter(|t| {
                Some(**t) != latest.as_deref()
                    && self.snapshot_days.get(**t).copied().unwrap_or(0) < cutoff
            })
            .map(|t| t.to_string())
            .collect();
        for tag in &doomed {
            self.scvol.destroy_snapshot(tag);
            for node in &mut self.nodes {
                node.ccvol.destroy_snapshot(tag);
            }
            self.snapshot_days.remove(tag);
        }
        let after = self.scvol.stats().total_disk_bytes();
        let report = GcReport {
            snapshots_collected: doomed.len() as u32,
            bytes_reclaimed: before.saturating_sub(after),
        };
        self.obs.inc("squirrel_gc_runs_total");
        self.obs.add("squirrel_gc_snapshots_total", u64::from(report.snapshots_collected));
        self.obs.add("squirrel_gc_bytes_reclaimed_total", report.bytes_reclaimed);
        self.obs.set_gauge("squirrel_scvol_disk_bytes", after);
        span.field("snapshots_collected", u64::from(report.snapshots_collected));
        span.field("bytes_reclaimed", report.bytes_reclaimed);
        report
    }

    /// Take a compute node offline (fail-stop).
    pub fn node_offline(&mut self, node: NodeId) -> Result<(), SquirrelError> {
        self.nodes
            .get_mut(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?
            .online = false;
        Ok(())
    }

    /// The nearest warm peer that can serve a rejoin catch-up stream to
    /// `node`: online, reachable, its ccVolume exactly at the scVolume's
    /// tip snapshot, and scrub-clean (a donor serving rotten bytes never
    /// qualifies). Candidates are probed nearest-first so at most one
    /// scrub walks a qualified pool. In-sync replicas are bit-identical by
    /// the determinism contract, so a qualified peer can serve any stream
    /// the scVolume could.
    fn nearest_rejoin_donor(&self, node: NodeId, tip: &str) -> Option<NodeId> {
        let mut cands: Vec<(u32, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let peer = i as NodeId;
                (peer != node
                    && n.online
                    && self.net.is_reachable(peer, node)
                    && n.ccvol.latest_snapshot() == Some(tip))
                .then_some((peer.abs_diff(node), peer))
            })
            .collect();
        cands.sort_unstable();
        cands
            .into_iter()
            .find(|&(_, peer)| self.nodes[peer as usize].ccvol.scrub().is_clean())
            .map(|(_, peer)| peer)
    }

    /// Bring a node back (paper Section 3.5): ask for the diff between its
    /// latest local snapshot and the scVolume's latest; if the base is gone
    /// (offline longer than `n` days), replicate the whole scVolume. Under
    /// [`DistributionPolicy::PeerAssisted`] the stream's bytes are served
    /// by the nearest in-sync, scrub-clean peer — a node can rejoin even
    /// through a partitioned storage link — with the scVolume as fallback.
    pub fn node_rejoin(&mut self, node: NodeId) -> Result<RejoinOutcome, SquirrelError> {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return Err(SquirrelError::NoSuchNode(node));
        }
        self.nodes[idx].online = true;
        let mut span = self.obs.span("rejoin");
        span.field("node", node);

        let sc_latest = match self.scvol.latest_snapshot() {
            Some(t) => t.to_string(),
            None => {
                span.field("outcome", "up-to-date");
                return Ok(RejoinOutcome::UpToDate);
            }
        };
        let local_latest = self.nodes[idx].ccvol.latest_snapshot().map(|s| s.to_string());
        if local_latest.as_deref() == Some(sc_latest.as_str()) {
            span.field("outcome", "up-to-date");
            return Ok(RejoinOutcome::UpToDate);
        }

        let storage = self.config.compute_nodes;
        let peer_policy = self.config.distribution == DistributionPolicy::PeerAssisted;
        let donor = if peer_policy { self.nearest_rejoin_donor(node, &sc_latest) } else { None };
        let src = donor.unwrap_or(storage);
        if let Some(peer) = donor {
            span.field("peer", peer);
        }
        // Wire bytes already charged by an incremental attempt that fell
        // through to full replication (the transfer happened, the apply
        // didn't).
        let mut charged = 0u64;
        let record = |sq: &Self, charged: u64, secs: f64| {
            sq.record_dist(&DeliveryStats {
                updated: 1,
                seconds: secs,
                storage_bytes: if donor.is_some() { 0 } else { charged },
                peer_bytes: if donor.is_some() { charged } else { 0 },
                peer_hits: u64::from(donor.is_some()),
                peer_misses: u64::from(peer_policy && donor.is_none()),
                ..DeliveryStats::default()
            });
        };
        // Try incremental first.
        if let Some(base) = &local_latest {
            if self.scvol.has_snapshot(base) {
                let stream = self
                    .scvol
                    .send_between(Some(base), &sc_latest)
                    .map_err(SquirrelError::Send)?;
                let wire = stream.wire_bytes();
                // A link partitioned from every source leaves the node
                // online but still lagging; repair_replication retries
                // later.
                let secs = self
                    .net
                    .try_unicast(src, node, wire)
                    .map_err(SquirrelError::Net)?
                    .seconds;
                charged += wire;
                // The transactional recv applies the catch-up stream
                // all-or-nothing.
                match self.nodes[idx].ccvol.recv(&stream) {
                    Ok(()) => {
                        // The stream mirrors the scVolume's tip, restoring
                        // any budget-evicted cache it could resolve.
                        self.reconcile_evictions();
                        self.obs.add_with(
                            "squirrel_rejoin_total",
                            &[("outcome", "incremental")],
                            1,
                        );
                        self.obs.add("squirrel_rejoin_wire_bytes_total", wire);
                        record(self, charged, secs);
                        span.field("outcome", "incremental");
                        span.field("wire_bytes", wire);
                        return Ok(RejoinOutcome::Incremental { wire_bytes: wire });
                    }
                    // A budget eviction purged blocks the diff counts on
                    // the receiver holding; only the full stream below can
                    // resolve them. (The failed attempt's wire bytes stay
                    // charged: the transfer happened, the apply didn't.)
                    Err(RecvError::MissingBlock(_)) => {}
                    Err(e) => return Err(SquirrelError::Recv(e)),
                }
            }
        }

        // Full replication: rebuild the ccVolume from a full stream.
        let stream = self
            .scvol
            .send_between(None, &sc_latest)
            .map_err(SquirrelError::Send)?;
        let wire = stream.wire_bytes();
        let secs = self
            .net
            .try_unicast(src, node, wire)
            .map_err(SquirrelError::Net)?
            .seconds;
        charged += wire;
        let mut fresh = ZPool::new(Self::ccvol_pool_config(&self.config));
        // The rebuilt pool records into the same shared ccVolume series and
        // reuses the system's persistent workers.
        fresh.set_metrics(&self.ccvol_obs);
        fresh.set_worker_pool(self.workers.clone());
        fresh.recv(&stream).map_err(SquirrelError::Recv)?;
        self.nodes[idx].ccvol = fresh;
        // A full replication hoards everything again; the budget pass (if
        // any) re-evicts on its next run.
        self.nodes[idx].evicted.clear();
        self.obs.add_with("squirrel_rejoin_total", &[("outcome", "full-replication")], 1);
        self.obs.add("squirrel_rejoin_wire_bytes_total", wire);
        record(self, charged, secs);
        span.field("outcome", "full-replication");
        span.field("wire_bytes", wire);
        Ok(RejoinOutcome::FullReplication { wire_bytes: wire })
    }

    /// Replay `image`'s boot trace on `node` through the *real* data path —
    /// a QCOW2-style CoW overlay chained onto a copy-on-read layer that is
    /// pre-populated from the node's ccVolume (decompressing actual pool
    /// records) and backed by the image over the parallel FS — verifying
    /// every byte against the image's ground-truth content.
    ///
    /// A warm cache must give zero backing fetches for reads inside the
    /// working set; see [`BootVerification`].
    pub fn verify_boot(
        &mut self,
        node: NodeId,
        image: ImageId,
    ) -> Result<BootVerification, SquirrelError> {
        let n = self
            .nodes
            .get(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        if !n.online {
            return Err(SquirrelError::NodeOffline(node));
        }
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }

        let bs = self.config.block_size;
        let mut chain = squirrel_qcow::CowImage::new(CorCache::new(
            ImageDisk { corpus: Arc::clone(&self.corpus), image },
            bs,
        ));
        chain.set_metrics(&self.obs);
        chain.backing().set_metrics(&self.obs);
        // Warm the CoR layer from the ccVolume's cache file, exercising the
        // full decompress path of the pool.
        let name = Self::cache_file_name(image);
        if let Some(len) = n.ccvol.file_len(&name) {
            let blocks = len.div_ceil(bs as u64);
            for b in 0..blocks {
                // The decompressed buffer moves into the CoR layer as a
                // shared payload: one decompression, zero copies. Holes (or
                // a cache mutated underneath us) simply aren't prewarmed —
                // the CoR layer fetches them from the backing image.
                let Some(data) = n.ccvol.read_block_shared(&name, b) else {
                    continue;
                };
                chain.backing().prepopulate_shared(b, data);
            }
        }

        let handle = self.corpus.image(image);
        let trace = handle.cache().boot_trace();
        let mut verified = 0u64;
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for op in &trace.ops {
            expect.resize(op.len as usize, 0);
            got.resize(op.len as usize, 0);
            handle.read_at(op.offset, &mut expect);
            chain.read_at(op.offset, &mut got);
            if expect != got {
                panic!(
                    "boot data corruption: image {image} node {node} at offset {}",
                    op.offset
                );
            }
            verified += op.len as u64;
        }
        Ok(BootVerification {
            bytes_verified: verified,
            backing_fetches: chain.backing().fetch_count,
        })
    }

    /// Boot a sequence of images on `node`, reading every cache block
    /// through a byte-bounded ARC, and report the cache statistics. This
    /// *measures* the cross-VMI hot-record effect that the boot simulator's
    /// `hot_fraction` parameter assumes: records shared between working
    /// sets stay resident across consecutive boots of different images.
    pub fn measure_arc_hit_rate(
        &mut self,
        node: NodeId,
        images: &[ImageId],
        arc_bytes: u64,
    ) -> Result<squirrel_zfs::ArcStats, SquirrelError> {
        let n = self
            .nodes
            .get(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        if !n.online {
            return Err(SquirrelError::NodeOffline(node));
        }
        let bs = self.config.block_size as u64;
        let mut arc = squirrel_zfs::ArcCache::new(arc_bytes);
        arc.set_metrics(&self.obs);
        for &image in images {
            if (image as usize) >= self.corpus.len() {
                return Err(SquirrelError::UnknownImage(image));
            }
            let name = Self::cache_file_name(image);
            let Some(len) = n.ccvol.file_len(&name) else {
                continue; // not hoarded: nothing to measure
            };
            for b in 0..len.div_ceil(bs) {
                arc.read_through(&n.ccvol, &name, b);
            }
        }
        let stats = arc.stats();
        self.obs.set_gauge_f64("squirrel_arc_hit_rate", stats.hit_rate());
        Ok(stats)
    }

    /// Evict one cache from one node's ccVolume (capacity-limited partial
    /// hoarding, paper Section 4.3 — also what [`Self::enforce_hoard_budgets`]
    /// calls per victim). The cache is *purged*: live file and snapshot
    /// references both go, so the blocks nothing else shares actually leave
    /// the disk and the DDT. Subsequent boots of that image on that node are
    /// degraded (served from shared storage) until a diff or an explicit
    /// [`Self::rehoard_cache`] restores it.
    pub fn evict_cache(
        &mut self,
        node: NodeId,
        image: ImageId,
    ) -> Result<EvictReport, SquirrelError> {
        let popularity = self.image_popularity(image);
        let n = self
            .nodes
            .get_mut(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        let name = Self::cache_file_name(image);
        let had = n.ccvol.has_file(&name);
        if !had {
            return Ok(EvictReport {
                node,
                image,
                was_cached: false,
                disk_bytes_freed: 0,
                ddt_mem_bytes_freed: 0,
                popularity,
            });
        }
        let before = n.ccvol.stats();
        n.ccvol.purge_file(&name);
        n.evicted.insert(image);
        let after = n.ccvol.stats();
        self.obs.inc("squirrel_cache_evictions_total");
        Ok(EvictReport {
            node,
            image,
            was_cached: true,
            disk_bytes_freed: before
                .total_disk_bytes()
                .saturating_sub(after.total_disk_bytes()),
            ddt_mem_bytes_freed: before.ddt_memory_bytes.saturating_sub(after.ddt_memory_bytes),
            popularity,
        })
    }

    /// Drop eviction marks for caches a stream delivery restored: once the
    /// file is present again the node is simply hoarding it, and replication
    /// checks hold it to the full reference.
    fn reconcile_evictions(&mut self) {
        for node in &mut self.nodes {
            let ccvol = &node.ccvol;
            node.evicted.retain(|&img| !ccvol.has_file(&Self::cache_file_name(img)));
        }
    }

    /// One deterministic hoard-budget enforcement pass (the tentpole of the
    /// paper's feasibility argument turned into a policy): for every compute
    /// node whose ccVolume exceeds [`SquirrelConfig::hoard_budget`] on
    /// either axis, evict whole image caches — least-booted first, ties
    /// broken by ascending image id — until the node fits. Nodes are visited
    /// in id order and every decision reads only serial state (popularity
    /// counts and pool accounting), so the eviction sequence is bit-identical
    /// at any thread count.
    ///
    /// A node that stays over budget after losing every cache is reported in
    /// [`BudgetReport::nodes_still_over`], not wedged: its images all serve
    /// degraded from shared storage.
    pub fn enforce_hoard_budgets(&mut self) -> BudgetReport {
        let mut report = BudgetReport::default();
        if self.config.hoard_budget.is_unlimited() {
            return report;
        }
        let mut span = self.obs.span("enforce_budget");
        self.obs
            .set_gauge("squirrel_hoard_max_disk_bytes", self.config.hoard_budget.disk_bytes);
        self.obs.set_gauge(
            "squirrel_hoard_max_ddt_mem_bytes",
            self.config.hoard_budget.ddt_mem_bytes,
        );
        for node in 0..self.nodes.len() as NodeId {
            if self.nodes[node as usize].ccvol.within_quota() {
                continue;
            }
            report.nodes_over_budget += 1;
            while !self.nodes[node as usize].ccvol.within_quota() {
                let victim = self.nodes[node as usize]
                    .ccvol
                    .file_names()
                    .filter_map(Self::image_of_cache_name)
                    .map(|img| (self.image_popularity(img), img))
                    .min();
                let Some((_, image)) = victim else {
                    report.nodes_still_over += 1;
                    break;
                };
                let ev = self.evict_cache(node, image).expect("node exists");
                report.disk_bytes_freed += ev.disk_bytes_freed;
                report.ddt_mem_bytes_freed += ev.ddt_mem_bytes_freed;
                report.evictions.push(ev);
            }
        }
        self.obs.add("squirrel_budget_evictions_total", report.evictions.len() as u64);
        self.obs.add("squirrel_budget_bytes_freed_total", report.disk_bytes_freed);
        span.field("evictions", report.evictions.len() as u64);
        span.field("nodes_over_budget", u64::from(report.nodes_over_budget));
        span.field("disk_bytes_freed", report.disk_bytes_freed);
        report
    }

    /// The nearest warm peer able to donate `image`'s cache to `node`:
    /// online, reachable, not under an eviction mark for the image, holding
    /// the file with every record intact (a rotten donor never qualifies).
    /// Distance is node-id distance (the flat switch's stand-in for
    /// topology); ties go to the smaller id. `None` when no peer qualifies.
    fn nearest_cache_donor(&self, node: NodeId, image: ImageId) -> Option<NodeId> {
        let name = Self::cache_file_name(image);
        let mut best: Option<(u32, NodeId)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            let peer = i as NodeId;
            if peer == node || !n.online || !self.net.is_reachable(peer, node) {
                continue;
            }
            if n.evicted.contains(&image) || !n.ccvol.has_file(&name) {
                continue;
            }
            if n.ccvol.file_is_intact(&name) != Some(true) {
                continue;
            }
            let key = (peer.abs_diff(node), peer);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, peer)| peer)
    }

    /// Pull an evicted (or never-delivered) cache back on demand — the
    /// paper's partial-hoarding fallback. Under
    /// [`DistributionPolicy::PeerAssisted`] the nearest warm peer holding
    /// an intact, unevicted copy serves the bytes; the scVolume serves them
    /// otherwise (and whenever no peer qualifies). Replicas are
    /// bit-identical by construction (same keys, same frames: compression
    /// is deterministic), so the re-import lands the node in the same state
    /// regardless of donor. The transfer is charged to the network ledgers
    /// and `squirrel_dist_*` counters like every other hoard transfer.
    pub fn rehoard_cache(
        &mut self,
        node: NodeId,
        image: ImageId,
    ) -> Result<RehoardReport, SquirrelError> {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return Err(SquirrelError::NoSuchNode(node));
        }
        if !self.nodes[idx].online {
            return Err(SquirrelError::NodeOffline(node));
        }
        let name = Self::cache_file_name(image);
        if !self.scvol.has_file(&name) {
            return Err(SquirrelError::NotRegistered(image));
        }
        let mut span = self.obs.span("rehoard");
        span.field("node", node);
        span.field("image", image);
        let peer_policy = self.config.distribution == DistributionPolicy::PeerAssisted;
        let donor = if peer_policy { self.nearest_cache_donor(node, image) } else { None };
        let (src, donor_pool) = match donor {
            Some(peer) => (peer, &self.nodes[peer as usize].ccvol),
            None => (self.config.compute_nodes, &self.scvol),
        };
        let refs = donor_pool.block_refs(&name).expect("donor holds the file");
        // Compressed frames + 24-byte record headers, like repair transfers.
        let wire: u64 = refs.iter().flatten().map(|r| u64::from(r.psize) + 24).sum();
        let len = donor_pool.file_len(&name).expect("donor holds the file");
        // Block count from the file length, not `refs.len()`: for chunked
        // (CDC) files the refs are per *record*, not per block.
        let nblocks = len.div_ceil(self.config.block_size as u64);
        let blocks: Vec<Vec<u8>> = (0..nblocks)
            .map(|b| donor_pool.read_block(&name, b).expect("donor holds the file"))
            .collect();
        self.net
            .try_unicast(src, node, wire)
            .map_err(SquirrelError::Net)?;
        self.nodes[idx].ccvol.import_file(&name, blocks.into_iter(), len);
        self.nodes[idx].evicted.remove(&image);
        self.obs.inc("squirrel_rehoard_total");
        self.obs.add("squirrel_rehoard_wire_bytes_total", wire);
        let stats = DeliveryStats {
            updated: 1,
            seconds: wire as f64 / (self.config.link.mbps() * 1e6),
            storage_bytes: if donor.is_some() { 0 } else { wire },
            peer_bytes: if donor.is_some() { wire } else { 0 },
            peer_hits: u64::from(donor.is_some()),
            peer_misses: u64::from(peer_policy && donor.is_none()),
            ..DeliveryStats::default()
        };
        self.record_dist(&stats);
        span.field("wire_bytes", wire);
        if let Some(peer) = donor {
            span.field("peer", peer);
        }
        Ok(RehoardReport { node, image, wire_bytes: wire, blocks: nblocks, peer: donor })
    }

    /// Whether `node`'s ccVolume currently holds `image`'s cache.
    pub fn has_cache(&self, node: NodeId, image: ImageId) -> bool {
        self.nodes
            .get(node as usize)
            .is_some_and(|n| n.ccvol.has_file(&Self::cache_file_name(image)))
    }

    // --- fault injection & self-healing recovery ---------------------------

    /// Fault hook: rot the `nth` unique block (mod the pool's block count)
    /// of `node`'s ccVolume. Returns the corrupted key, or `None` for an
    /// unknown node or empty pool.
    pub fn corrupt_cc_block(&mut self, node: NodeId, nth: u64) -> Option<BlockKey> {
        let n = self.nodes.get_mut(node as usize)?;
        let key = n.ccvol.corrupt_nth_block(nth);
        if key.is_some() {
            self.obs.inc("squirrel_fault_block_corruptions_total");
        }
        key
    }

    /// Fault hook: rot the `nth` unique block of the scVolume itself.
    pub fn corrupt_sc_block(&mut self, nth: u64) -> Option<BlockKey> {
        let key = self.scvol.corrupt_nth_block(nth);
        if key.is_some() {
            self.obs.inc("squirrel_fault_block_corruptions_total");
        }
        key
    }

    /// Integrity walk over `node`'s ccVolume (no repair). `None` for an
    /// unknown node.
    pub fn scrub_node(&self, node: NodeId) -> Option<ScrubReport> {
        self.nodes.get(node as usize).map(|n| n.ccvol.scrub())
    }

    /// Integrity walk over the scVolume (no repair).
    pub fn scrub_scvol(&self) -> ScrubReport {
        self.scvol.scrub()
    }

    /// Scrub `node`'s ccVolume and re-fetch every corrupt record from the
    /// scVolume's authoritative copy, charging the transfer to the network
    /// ledgers. A donor record that is itself rotten — or a partitioned
    /// storage link — leaves the block unrepaired.
    pub fn scrub_and_repair(&mut self, node: NodeId) -> Result<RepairReport, SquirrelError> {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return Err(SquirrelError::NoSuchNode(node));
        }
        let mut span = self.obs.span("repair");
        span.field("node", node);
        let storage = self.config.compute_nodes;
        let scrub = self.nodes[idx].ccvol.scrub();
        let mut report = RepairReport {
            node: Some(node),
            blocks_checked: scrub.blocks_checked,
            corrupt_found: scrub.corrupt.len() as u64,
            repaired: 0,
            unrepaired: 0,
            refetch_bytes: 0,
        };
        for key in &scrub.corrupt {
            // 16-byte key + 4-byte psize + 4-byte length: the stream
            // payload's per-record framing.
            let fixed = match self.scvol.payload_of(*key) {
                Some((psize, frame)) => {
                    let bytes = u64::from(psize) + 24;
                    match self.net.try_unicast(storage, node, bytes) {
                        Ok(_) => {
                            report.refetch_bytes += bytes;
                            self.nodes[idx].ccvol.repair_block(*key, psize, &frame)
                        }
                        Err(_) => false,
                    }
                }
                None => false,
            };
            if fixed {
                report.repaired += 1;
            } else {
                report.unrepaired += 1;
            }
        }
        self.record_repair(&report);
        span.field("corrupt_found", report.corrupt_found);
        span.field("repaired", report.repaired);
        Ok(report)
    }

    /// Scrub the scVolume and heal every corrupt record from the first
    /// online compute node hoarding an intact copy — the scatter hoard
    /// itself is the redundancy. Donors serving a rotten copy are charged
    /// but rejected ([`ZPool::repair_block`] verifies before installing).
    pub fn scrub_and_repair_scvol(&mut self) -> RepairReport {
        let mut span = self.obs.span("repair");
        span.field("node", "scvol");
        let storage = self.config.compute_nodes;
        let scrub = self.scvol.scrub();
        let mut report = RepairReport {
            node: None,
            blocks_checked: scrub.blocks_checked,
            corrupt_found: scrub.corrupt.len() as u64,
            repaired: 0,
            unrepaired: 0,
            refetch_bytes: 0,
        };
        for key in &scrub.corrupt {
            let mut fixed = false;
            for idx in 0..self.nodes.len() {
                if !self.nodes[idx].online {
                    continue;
                }
                let Some((psize, frame)) = self.nodes[idx].ccvol.payload_of(*key) else {
                    continue;
                };
                let bytes = u64::from(psize) + 24;
                if self.net.try_unicast(idx as NodeId, storage, bytes).is_err() {
                    continue;
                }
                report.refetch_bytes += bytes;
                if self.scvol.repair_block(*key, psize, &frame) {
                    fixed = true;
                    break;
                }
            }
            if fixed {
                report.repaired += 1;
            } else {
                report.unrepaired += 1;
            }
        }
        self.record_repair(&report);
        span.field("corrupt_found", report.corrupt_found);
        span.field("repaired", report.repaired);
        report
    }

    /// Scrub the erasure-coded shared tier and repair it: lost or corrupt
    /// shards are rebuilt from any k healthy donors, shards stranded in
    /// unreachable domains are re-materialized onto replacement nodes in
    /// live domains, and a stripe that lost more than m shards is rewritten
    /// wholesale from a deterministically re-materialized authoritative
    /// cache. All transfers are charged to the ledgers; the cross-domain
    /// share feeds `squirrel_ec_cross_domain_repair_bytes_total`. `None`
    /// under replicated shared storage.
    pub fn repair_shared_storage(&mut self) -> Option<EcRepairReport> {
        let mut ec = self.ec.take()?;
        let coordinator = self.config.compute_nodes;
        let mut report = ec.scrub_and_repair(&mut self.net, coordinator);
        for name in std::mem::take(&mut report.unrepaired_objects) {
            let rewritten = Self::image_of_cache_name(&name)
                .filter(|&img| self.registered.contains_key(&img))
                .is_some_and(|img| {
                    let (_, blocks) = self.materialize_cache(img);
                    let payload = Self::ec_payload(&blocks);
                    ec.rewrite_object(&mut self.net, coordinator, &name, &payload).is_ok()
                });
            if !rewritten {
                report.unrepaired_objects.push(name);
            }
        }
        self.obs.add(
            "squirrel_ec_shards_rematerialized_total",
            report.shards_rematerialized + report.shards_relocated,
        );
        self.obs.add("squirrel_ec_repair_bytes_total", report.repair_bytes);
        self.obs.add(
            "squirrel_ec_cross_domain_repair_bytes_total",
            report.cross_domain_repair_bytes,
        );
        self.ec = Some(ec);
        Some(report)
    }

    /// Whether the shared tier's physical layer is fully intact: every
    /// erasure-coded shard present and passing its checksum. Always `true`
    /// under replicated storage, whose block health lives in the scVolume's
    /// own scrub.
    pub fn shared_storage_clean(&self) -> bool {
        self.ec.as_ref().is_none_or(ErasureCodedVolume::is_clean)
    }

    /// Lifetime counters of the erasure-coded tier; `None` when replicated.
    pub fn ec_stats(&self) -> Option<EcStats> {
        self.ec.as_ref().map(ErasureCodedVolume::stats)
    }

    /// Fault hook: flip one byte of the `nth` stored erasure shard (mod the
    /// shard population). `None` under replicated storage or while no
    /// shards are stored.
    pub fn corrupt_ec_shard(&mut self, nth: u64) -> Option<(String, u32, u32)> {
        let victim = self.ec.as_mut()?.corrupt_nth_shard(nth);
        if victim.is_some() {
            self.obs.inc("squirrel_fault_ec_shard_corruptions_total");
        }
        victim
    }

    /// Take a whole rack's boundary links down (correlated failure: every
    /// node in the rack loses cross-rack connectivity at once). Counted in
    /// `squirrel_domain_rack_downs_total`; idempotent while already down.
    /// Returns the number of links cut.
    pub fn rack_down(&mut self, rack: u32) -> usize {
        let cut = self.net.rack_down(rack);
        if cut > 0 {
            self.obs.inc("squirrel_domain_rack_downs_total");
        }
        cut
    }

    /// Heal a rack taken down by [`Self::rack_down`]. Node-level cuts that
    /// happen to cross the boundary stay cut.
    pub fn rack_up(&mut self, rack: u32) {
        if self.net.rack_is_down(rack) {
            self.obs.inc("squirrel_domain_rack_ups_total");
        }
        self.net.rack_up(rack);
    }

    /// Take a whole datacenter's boundary links down. Counted in
    /// `squirrel_domain_dc_downs_total`; idempotent while already down.
    pub fn datacenter_down(&mut self, dc: u32) -> usize {
        let cut = self.net.datacenter_down(dc);
        if cut > 0 {
            self.obs.inc("squirrel_domain_dc_downs_total");
        }
        cut
    }

    /// Heal a datacenter taken down by [`Self::datacenter_down`].
    pub fn datacenter_up(&mut self, dc: u32) {
        if self.net.datacenter_is_down(dc) {
            self.obs.inc("squirrel_domain_dc_ups_total");
        }
        self.net.datacenter_up(dc);
    }

    fn record_repair(&self, report: &RepairReport) {
        self.obs.inc("squirrel_repair_runs_total");
        self.obs.add("squirrel_repair_blocks_total", report.repaired);
        self.obs.add("squirrel_repair_unrepaired_total", report.unrepaired);
        self.obs.add("squirrel_repair_bytes_total", report.refetch_bytes);
    }

    /// Pull every lagging *online* node back in sync through the rejoin
    /// path (incremental stream, or full re-replication when the base
    /// snapshot is gone). Nodes behind a partitioned link stay lagging and
    /// are reported as failed; re-run after the cut heals.
    pub fn repair_replication(&mut self) -> SyncRepairReport {
        let lagging = self.check_replication().lagging_nodes();
        let mut report = SyncRepairReport {
            lagging: lagging.len() as u32,
            repaired: 0,
            failed: 0,
            wire_bytes: 0,
        };
        for node in lagging {
            match self.node_rejoin(node) {
                Ok(RejoinOutcome::Incremental { wire_bytes })
                | Ok(RejoinOutcome::FullReplication { wire_bytes }) => {
                    report.repaired += 1;
                    report.wire_bytes += wire_bytes;
                }
                Ok(RejoinOutcome::UpToDate) => report.repaired += 1,
                Err(_) => report.failed += 1,
            }
        }
        self.obs.inc("squirrel_repair_sync_runs_total");
        self.obs.add("squirrel_repair_sync_nodes_total", u64::from(report.repaired));
        report
    }

    // --- introspection for experiments and tests ---------------------------

    pub fn registered_images(&self) -> Vec<ImageId> {
        self.registered.keys().copied().collect()
    }

    /// Registration record of `image`, if registered.
    pub fn registration_info(&self, image: ImageId) -> Option<RegistrationInfo> {
        self.registered.get(&image).map(|r| RegistrationInfo {
            image,
            snapshot_tag: r.snapshot_tag.clone(),
            day: r.day,
        })
    }

    pub fn is_registered(&self, image: ImageId) -> bool {
        self.registered.contains_key(&image)
    }

    pub fn scvol_stats(&self) -> SpaceStats {
        self.scvol.stats()
    }

    pub fn ccvol_stats(&self, node: NodeId) -> Option<SpaceStats> {
        self.nodes.get(node as usize).map(|n| n.ccvol.stats())
    }

    pub fn ccvol_file_count(&self, node: NodeId) -> Option<usize> {
        self.nodes.get(node as usize).map(|n| n.ccvol.file_count())
    }

    pub fn node_is_online(&self, node: NodeId) -> bool {
        self.nodes.get(node as usize).is_some_and(|n| n.online)
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Consistency check: every online node's ccVolume mirrors the
    /// scVolume's state *as of its latest snapshot* — deregistrations after
    /// the last snapshot intentionally haven't propagated yet (they ride
    /// along with the next registration's diff, paper Section 3.4). Offline
    /// nodes are reported but don't count against
    /// [`ReplicationReport::is_consistent`].
    pub fn check_replication(&self) -> ReplicationReport {
        let reference_snapshot = self.scvol.latest_snapshot().map(|s| s.to_string());
        let reference: Vec<&str> = reference_snapshot
            .as_ref()
            .and_then(|tag| self.scvol.snapshot_file_names(tag))
            .unwrap_or_else(|| self.scvol.file_names().collect());
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let cc: Vec<&str> = n.ccvol.file_names().collect();
                // A budget-evicted cache is *deliberately* absent from this
                // node: hold the node to the reference minus its evictions,
                // or repair would re-hoard what the budget just reclaimed.
                let expected: Vec<&str> = reference
                    .iter()
                    .copied()
                    .filter(|name| {
                        !Self::image_of_cache_name(name)
                            .is_some_and(|img| n.evicted.contains(&img))
                    })
                    .collect();
                NodeReplication {
                    node: i as NodeId,
                    online: n.online,
                    in_sync: cc == expected,
                    file_count: cc.len(),
                }
            })
            .collect();
        ReplicationReport { reference_snapshot, nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squirrel_dataset::CorpusConfig;

    fn small_system(nodes: u32) -> Squirrel {
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        Squirrel::new(
            SquirrelConfig {
                compute_nodes: nodes,
                block_size: 16 * 1024,
                ..Default::default()
            },
            corpus,
        )
    }

    #[test]
    fn register_propagates_to_all_nodes() {
        let mut sq = small_system(4);
        let r = sq.register(0).expect("register");
        assert_eq!(r.nodes_updated, 4);
        assert!(r.cache_bytes > 0);
        assert!(r.diff_wire_bytes > 0);
        assert!(sq.check_replication().is_consistent());
        for n in 0..4 {
            assert_eq!(sq.ccvol_file_count(n), Some(1));
        }
    }

    #[test]
    fn register_is_identical_at_any_thread_count() {
        let run = |threads: usize| {
            let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
            let mut sq = Squirrel::new(
                SquirrelConfig {
                    compute_nodes: 4,
                    block_size: 16 * 1024,
                    threads,
                    ..Default::default()
                },
                corpus,
            );
            let r0 = sq.register(0).expect("r0");
            let r1 = sq.register(1).expect("r1");
            assert!(sq.check_replication().is_consistent(), "threads={threads}");
            assert_eq!(r0.nodes_updated, 4);
            assert_eq!(r1.nodes_updated, 4);
            (sq.scvol_stats(), sq.ccvol_stats(0).expect("node"), r0.diff_wire_bytes)
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn register_twice_fails() {
        let mut sq = small_system(2);
        sq.register(1).expect("first");
        assert!(matches!(
            sq.register(1),
            Err(SquirrelError::AlreadyRegistered(1))
        ));
    }

    #[test]
    fn warm_boot_has_zero_network_traffic() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        sq.network_mut().reset_ledgers();
        let out = sq.boot(1, 0).expect("boot");
        assert!(out.warm);
        assert_eq!(out.net_bytes, 0);
        assert_eq!(sq.network().ledger(1).rx_bytes, 0);
        assert!(out.report.total_seconds > 5.0 && out.report.total_seconds < 60.0);
    }

    #[test]
    fn cold_boot_crosses_network() {
        let mut sq = small_system(2);
        sq.network_mut().reset_ledgers();
        let out = sq.boot(0, 3).expect("boot unregistered image");
        assert!(!out.warm);
        assert!(out.net_bytes > 0);
        assert_eq!(sq.network().ledger(0).rx_bytes, out.net_bytes);
    }

    #[test]
    fn warm_boot_faster_than_cold() {
        let mut sq = small_system(2);
        sq.register(2).expect("register");
        let warm = sq.boot(0, 2).expect("warm");
        let cold = sq.boot(1, 3).expect("cold");
        assert!(
            warm.report.total_seconds < cold.report.total_seconds,
            "warm {} cold {}",
            warm.report.total_seconds,
            cold.report.total_seconds
        );
    }

    #[test]
    fn deregister_then_next_register_propagates_deletion() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.register(1).expect("r1");
        sq.deregister(0).expect("deregister");
        // ccVolumes still hold cache-0 (no snapshot on delete).
        assert_eq!(sq.ccvol_file_count(0), Some(2));
        sq.register(2).expect("r2");
        // The new diff carries the deletion.
        assert_eq!(sq.ccvol_file_count(0), Some(2));
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn offline_node_misses_diffs_then_catches_up_incrementally() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(2).expect("offline");
        sq.register(1).expect("r1");
        assert_eq!(sq.ccvol_file_count(2), Some(1), "missed the diff");
        let outcome = sq.node_rejoin(2).expect("rejoin");
        assert!(matches!(outcome, RejoinOutcome::Incremental { .. }), "{outcome:?}");
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn long_offline_node_needs_full_replication() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(1).expect("offline");
        sq.advance_days(10);
        sq.register(1).expect("r1");
        sq.advance_days(10);
        sq.register(2).expect("r2");
        let _ = sq.gc(); // collects vmi-0 and vmi-1 (older than the window)
        let outcome = sq.node_rejoin(1).expect("rejoin");
        assert!(
            matches!(outcome, RejoinOutcome::FullReplication { .. }),
            "{outcome:?}"
        );
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn gc_keeps_latest_snapshot_regardless_of_age() {
        let mut sq = small_system(2);
        sq.register(0).expect("r0");
        sq.advance_days(100);
        let _ = sq.gc();
        assert!(sq.scvol_stats().unique_blocks > 0);
        // Latest snapshot must survive.
        let outcome = sq.node_rejoin(0).expect("rejoin");
        assert_eq!(outcome, RejoinOutcome::UpToDate);
    }

    #[test]
    fn rejoin_when_up_to_date_is_noop() {
        let mut sq = small_system(2);
        sq.register(0).expect("r0");
        let outcome = sq.node_rejoin(1).expect("rejoin");
        assert_eq!(outcome, RejoinOutcome::UpToDate);
    }

    #[test]
    fn boot_on_offline_node_fails() {
        let mut sq = small_system(2);
        sq.node_offline(0).expect("offline");
        assert!(matches!(sq.boot(0, 0), Err(SquirrelError::NodeOffline(0))));
    }

    #[test]
    fn scvol_grows_sublinearly_with_registrations() {
        // The scatter-hoarding feasibility claim: caches dedup heavily.
        // Use a corpus whose head images are all Ubuntu (the census head),
        // like the real catalog where one family dominates.
        let corpus = Arc::new(Corpus::generate(
            CorpusConfig { scale: 1024, ..CorpusConfig::test_corpus(16, 77) },
        ));
        let mut sq = Squirrel::new(
            SquirrelConfig { compute_nodes: 1, block_size: 16 * 1024, ..Default::default() },
            corpus,
        );
        sq.register(0).expect("r");
        let one = sq.scvol_stats().total_disk_bytes();
        for i in 1..8 {
            sq.register(i).expect("r");
        }
        let eight = sq.scvol_stats().total_disk_bytes();
        assert!(
            (eight as f64) < 5.0 * one as f64,
            "eight caches {eight} vs one {one}: dedup must help"
        );
    }

    #[test]
    fn errors_on_unknown_entities() {
        let mut sq = small_system(1);
        assert!(matches!(sq.register(999), Err(SquirrelError::UnknownImage(999))));
        assert!(matches!(sq.deregister(0), Err(SquirrelError::NotRegistered(0))));
        assert!(matches!(sq.boot(9, 0), Err(SquirrelError::NoSuchNode(9))));
        assert!(matches!(sq.node_offline(9), Err(SquirrelError::NoSuchNode(9))));
    }

    #[test]
    fn arc_hit_rate_rises_with_cross_vmi_sharing() {
        // Booting several same-family images back to back: later boots hit
        // the records earlier boots left resident.
        let corpus = Arc::new(Corpus::generate(
            CorpusConfig { scale: 1024, ..CorpusConfig::test_corpus(12, 77) },
        ));
        let mut sq = Squirrel::new(
            SquirrelConfig { compute_nodes: 1, block_size: 16 * 1024, ..Default::default() },
            corpus,
        );
        for img in 0..6 {
            sq.register(img).expect("register");
        }
        let one = sq.measure_arc_hit_rate(0, &[0], 64 << 20).expect("one image");
        let many = sq
            .measure_arc_hit_rate(0, &[0, 1, 2, 3, 4, 5], 64 << 20)
            .expect("many images");
        assert_eq!(one.hits, 0, "first boot of a lone image cannot hit");
        assert!(
            many.hit_rate() > 0.2,
            "cross-VMI sharing must produce ARC hits: {:?}",
            many
        );
    }

    #[test]
    fn verify_boot_serves_exact_bytes_from_warm_cache() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        let v = sq.verify_boot(1, 0).expect("verify");
        assert!(v.bytes_verified > 0);
        // The QCOW2 cluster over-fetch may cross the working-set boundary
        // once at the tail; everything inside the set must be served warm.
        assert!(
            v.backing_fetches <= 2,
            "warm boot fetched {} blocks from the base",
            v.backing_fetches
        );
    }

    #[test]
    fn cdc_reverse_system_full_workflow() {
        use squirrel_zfs::CdcParams;
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        let mut sq = Squirrel::new(
            SquirrelConfig {
                compute_nodes: 2,
                block_size: 16 * 1024,
                chunking: ChunkStrategy::Cdc(CdcParams::with_average(16 * 1024)),
                dedup_mode: DedupMode::Reverse,
                ..Default::default()
            },
            corpus,
        );
        sq.register(0).expect("r0");
        sq.register(1).expect("r1");
        // Warm boots are served byte-exact from the chunked hoarded cache.
        let v = sq.verify_boot(1, 0).expect("verify");
        assert!(v.bytes_verified > 0);
        assert!(v.backing_fetches <= 2, "warm boot fetched {}", v.backing_fetches);
        // Chunked pools scrub clean end to end (scVolume and ccVolume).
        assert!(sq.scrub_scvol().is_clean());
        assert!(sq.scrub_node(0).expect("node").is_clean());
        // Evict + rehoard round-trips a chunked cache, whose block count
        // comes from the file length rather than the per-record refs.
        assert!(sq.evict_cache(1, 0).expect("evict").was_cached);
        let re = sq.rehoard_cache(1, 0).expect("rehoard");
        assert!(re.blocks > 0);
        let v2 = sq.verify_boot(1, 0).expect("verify rehoarded");
        assert!(v2.bytes_verified > 0);
        assert!(v2.backing_fetches <= 2);
    }

    #[test]
    fn verify_boot_without_cache_fetches_from_backing() {
        let mut sq = small_system(1);
        let v = sq.verify_boot(0, 1).expect("verify");
        assert!(v.bytes_verified > 0);
        assert!(v.backing_fetches > 0, "cold path must reach the base image");
    }

    #[test]
    fn evicted_cache_forces_cold_boot_until_restored() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        assert!(sq.has_cache(1, 0));
        assert!(sq.evict_cache(1, 0).expect("evict").was_cached);
        assert!(!sq.has_cache(1, 0));
        // Node 1 now cold-boots image 0; node 0 still warm.
        assert!(!sq.boot(1, 0).expect("boot").warm);
        assert!(sq.boot(0, 0).expect("boot").warm);
        // Idempotent eviction.
        assert!(!sq.evict_cache(1, 0).expect("evict again").was_cached);
    }

    fn ec_system() -> Squirrel {
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        Squirrel::new(
            SquirrelConfig {
                compute_nodes: 4,
                storage_nodes: 8,
                block_size: 16 * 1024,
                topology: TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 },
                shared_storage: SharedStorage::ErasureCoded { k: 4, m: 2 },
                ..Default::default()
            },
            corpus,
        )
    }

    #[test]
    fn ec_cold_boot_survives_rack_loss_and_repair_rehomes_shards() {
        let mut sq = ec_system();
        sq.register(0).expect("register");
        assert!(sq.shared_storage_clean());
        // Evict node 1's cache so its next boot is cold (served from the
        // shared EC tier), then take down rack 3. Nodes land in racks
        // round-robin, so rack 3 holds compute node 3 and storage nodes
        // 7 and 11 — and the distinct-rack placement phase guarantees at
        // least one of the object's shards lives there.
        assert!(sq.evict_cache(1, 0).expect("evict").was_cached);
        assert!(sq.rack_down(3) > 0);
        let boot = sq.boot(1, 0).expect("cold boot through rack loss");
        assert!(!boot.warm);
        let stats = sq.ec_stats().expect("ec tier armed");
        assert_eq!(stats.direct_reads + stats.degraded_reads, 1);
        // The scrub pass re-homes the stranded shards onto surviving
        // racks, leaving the tier clean even while rack 3 is still dark.
        let rep = sq.repair_shared_storage().expect("ec repair report");
        assert!(rep.shards_relocated > 0, "no shard left rack 3: {rep:?}");
        assert!(rep.unrepaired_stripes == 0 && sq.shared_storage_clean());
        sq.rack_up(3);
        assert!(sq.evict_cache(2, 0).expect("evict").was_cached);
        assert!(!sq.boot(2, 0).expect("boot after heal").warm);
        assert!(sq.shared_storage_clean());
    }

    #[test]
    fn deregister_drops_the_ec_object() {
        let mut sq = ec_system();
        sq.register(0).expect("register");
        sq.register(1).expect("register");
        sq.deregister(0).expect("deregister");
        // Only image 1's cache remains in the EC tier; the pass stays
        // clean (no orphaned shards keep getting scrubbed).
        assert!(sq.shared_storage_clean());
        let rep = sq.repair_shared_storage().expect("ec repair report");
        assert_eq!(rep.stripes_scanned, 1);
    }

    #[test]
    fn boot_storm_serves_warm_vms_zero_copy_and_deterministically() {
        let run = |threads: usize| {
            let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
            let mut sq = Squirrel::new(
                SquirrelConfig {
                    compute_nodes: 4,
                    block_size: 16 * 1024,
                    threads,
                    ..Default::default()
                },
                corpus,
            );
            sq.register(0).expect("register");
            let storm = sq.boot_storm(0, 8).expect("storm");
            assert_eq!((storm.vms, storm.warm_vms, storm.cold_vms), (8, 8, 0));
            assert_eq!(storm.net_bytes, 0, "warm storm moves nothing");
            assert!(storm.blocks_per_vm > 0);
            assert_eq!(storm.bytes_served, 8 * storm.blocks_per_vm * 16 * 1024);
            assert!(storm.arc.hits > 0, "storm must avoid copies: {:?}", storm.arc);
            assert_eq!(storm.arc.evictions, 0);
            let snap = sq.metrics().snapshot();
            assert_eq!(
                snap.counter("arc_bytes_copied_total{pool=\"ccvol\"}"),
                Some(0),
                "warm storm must not copy payload bytes"
            );
            assert_eq!(
                snap.counter("squirrel_boot_storm_copies_avoided_total"),
                Some(storm.arc.hits)
            );
            let bits: Vec<u64> = storm.boot_seconds.iter().map(|s| s.to_bits()).collect();
            (storm.read_checksum, storm.bytes_served, storm.arc, bits, snap)
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn boot_storm_mixes_warm_and_cold_nodes() {
        let mut sq = small_system(3);
        sq.register(0).expect("register");
        let _ = sq.evict_cache(2, 0).expect("evict");
        sq.network_mut().reset_ledgers();
        let storm = sq.boot_storm(0, 6).expect("storm");
        // Round-robin: VMs 2 and 5 land on the evicted node 2.
        assert_eq!(storm.warm_vms, 4);
        assert_eq!(storm.cold_vms, 2);
        assert!(storm.net_bytes > 0, "cold VMs must cross the network");
        assert_eq!(sq.network().ledger(2).rx_bytes, storm.net_bytes);
        assert_eq!(storm.boot_seconds.len(), 6);
        // Cold boots pay for the network pull; warm boots stay fast.
        assert!(
            storm.boot_seconds[2] > storm.boot_seconds[0],
            "cold {} vs warm {}",
            storm.boot_seconds[2],
            storm.boot_seconds[0]
        );
    }

    #[test]
    fn boot_storm_errors_on_unknown_image_and_dead_cluster() {
        let mut sq = small_system(2);
        assert!(matches!(
            sq.boot_storm(999, 4),
            Err(SquirrelError::UnknownImage(999))
        ));
        sq.node_offline(0).expect("offline");
        sq.node_offline(1).expect("offline");
        assert!(matches!(sq.boot_storm(0, 1), Err(SquirrelError::NodeOffline(0))));
    }

    #[test]
    fn registration_info_reflects_clock() {
        let mut sq = small_system(1);
        sq.advance_days(3);
        sq.register(0).expect("register");
        let info = sq.registration_info(0).expect("registered");
        assert_eq!(info.snapshot_tag, "vmi-000000-r1");
        assert_eq!(info.day, 3);
        assert_eq!(info.image, 0);
        assert_eq!(sq.registration_info(5), None);
    }

    #[test]
    fn registration_report_times_are_plausible() {
        let mut sq = small_system(2);
        let r = sq.register(0).expect("register");
        // Paper: registration "does not take more than a minute".
        assert!(r.seconds > 10.0 && r.seconds < 120.0, "{}", r.seconds);
    }

    #[test]
    fn config_builder_mirrors_literal_and_validates() {
        let built = SquirrelConfig::builder()
            .block_size(16 * 1024)
            .codec(Codec::Gzip(1))
            .gc_window_days(3)
            .link(LinkKind::QdrInfiniband)
            .compute_nodes(8)
            .storage_nodes(4)
            .threads(2)
            .metrics(false)
            .chunking(ChunkStrategy::Cdc(squirrel_zfs::CdcParams::with_average(4096)))
            .dedup_mode(DedupMode::Reverse)
            .build();
        assert_eq!(built.block_size, 16 * 1024);
        assert_eq!(built.codec, Codec::Gzip(1));
        assert_eq!(built.gc_window_days, 3);
        assert_eq!(built.compute_nodes, 8);
        assert_eq!(built.threads, 2);
        assert!(!built.metrics);
        assert!(built.chunking.is_cdc());
        assert_eq!(built.dedup_mode, DedupMode::Reverse);
        let default = SquirrelConfig::builder().build();
        assert_eq!(default.block_size, SquirrelConfig::default().block_size);
        assert!(default.metrics);
        assert_eq!(default.dedup_mode, DedupMode::Forward);
        // A Fixed strategy is normalized to the configured record size.
        let odd = SquirrelConfig::builder().block_size(16 * 1024).build();
        assert_eq!(odd.pool_chunking(), ChunkStrategy::Fixed(16 * 1024));
    }

    #[test]
    #[should_panic(expected = "record size")]
    fn config_builder_rejects_bad_block_size() {
        let _ = SquirrelConfig::builder().block_size(1000).build();
    }

    #[test]
    fn gc_reports_collected_snapshots_and_reclaimed_bytes() {
        let mut sq = small_system(2);
        sq.register(0).expect("r0");
        let noop = sq.gc();
        assert_eq!(noop, GcReport { snapshots_collected: 0, bytes_reclaimed: 0 });
        sq.advance_days(10);
        sq.register(1).expect("r1");
        sq.advance_days(10);
        sq.register(2).expect("r2");
        let report = sq.gc();
        assert_eq!(report.snapshots_collected, 2, "{report:?}");
    }

    #[test]
    fn replication_report_names_lagging_nodes() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(2).expect("offline");
        sq.register(1).expect("r1");
        let report = sq.check_replication();
        assert!(report.is_consistent(), "offline lag is expected: {report:?}");
        assert_eq!(report.reference_snapshot.as_deref(), Some("vmi-000001-r2"));
        assert_eq!(report.nodes.len(), 3);
        assert!(!report.nodes[2].in_sync);
        assert!(!report.nodes[2].online);
        assert!(report.lagging_nodes().is_empty());
        // Bring it back without rejoining: now it counts as lagging.
        sq.nodes[2].online = true;
        let report = sq.check_replication();
        assert!(!report.is_consistent());
        assert_eq!(report.lagging_nodes(), vec![2]);
    }

    #[test]
    fn workflow_metrics_land_in_one_snapshot() {
        let mut sq = small_system(2);
        let r = sq.register(0).expect("register");
        sq.boot(0, 0).expect("warm boot");
        sq.boot(1, 3).expect("cold boot");
        let _ = sq.gc();
        let snap = sq.metrics().snapshot();
        assert_eq!(snap.counter("squirrel_register_total"), Some(1));
        assert_eq!(
            snap.counter("squirrel_register_wire_bytes_total"),
            Some(r.diff_wire_bytes)
        );
        assert_eq!(
            snap.counter("squirrel_boot_total{node=\"0\",result=\"warm\"}"),
            Some(1)
        );
        assert_eq!(
            snap.counter("squirrel_boot_total{node=\"1\",result=\"cold\"}"),
            Some(1)
        );
        assert_eq!(snap.counter("squirrel_gc_runs_total"), Some(1));
        assert!(snap.gauge_u64("squirrel_scvol_ddt_entries").unwrap() > 0);
        // The pool layers reported through the same registry.
        assert!(snap.counter("zpool_ingest_blocks_total{pool=\"scvol\"}").unwrap() > 0);
        assert!(snap.counter("zpool_recv_streams_total{pool=\"ccvol\"}").unwrap() >= 2);
        assert!(snap.counter_sum("net_tx_bytes_total") > 0);
        // Workflow events are journaled in order.
        let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["register", "boot", "boot", "gc"]);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        let mut sq = Squirrel::new(
            SquirrelConfig {
                compute_nodes: 2,
                block_size: 16 * 1024,
                metrics: false,
                ..Default::default()
            },
            corpus,
        );
        sq.register(0).expect("register");
        sq.boot(0, 0).expect("boot");
        let snap = sq.metrics().snapshot();
        assert_eq!(snap, squirrel_obs::MetricsSnapshot::default());
    }

    #[test]
    fn error_source_chains_to_recv_error() {
        use std::error::Error as _;
        let err = SquirrelError::Recv(RecvError::MissingBase("vmi-x".into()));
        assert!(err.source().is_some());
        assert!(err.to_string().contains("snapshot stream rejected"));
        assert_eq!(SquirrelError::NodeOffline(1).source().map(|_| ()), None);
        let err = SquirrelError::Net(NetError::SelfTransfer { node: 3 });
        assert!(err.source().is_some());
        assert!(err.to_string().contains("transfer failed"));
    }

    // --- churn edge cases ---------------------------------------------------

    #[test]
    fn node_offline_twice_is_idempotent() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(1).expect("first offline");
        sq.node_offline(1).expect("second offline is a no-op");
        assert!(!sq.node_is_online(1));
        sq.register(1).expect("r1");
        let outcome = sq.node_rejoin(1).expect("rejoin");
        assert!(matches!(outcome, RejoinOutcome::Incremental { .. }), "{outcome:?}");
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn rejoin_of_never_offline_node_is_up_to_date() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.register(1).expect("r1");
        assert!(sq.node_is_online(2));
        let outcome = sq.node_rejoin(2).expect("rejoin");
        assert_eq!(outcome, RejoinOutcome::UpToDate);
        assert!(sq.node_is_online(2));
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn boot_storm_skips_offline_nodes() {
        let mut sq = small_system(4);
        sq.register(0).expect("register");
        sq.node_offline(1).expect("offline");
        sq.node_offline(3).expect("offline");
        sq.network_mut().reset_ledgers();
        let storm = sq.boot_storm(0, 6).expect("storm");
        assert_eq!((storm.warm_vms, storm.cold_vms), (6, 0));
        // Round-robin lands only on the online nodes 0 and 2.
        assert_eq!(sq.network().ledger(1).rx_bytes, 0);
        assert_eq!(sq.network().ledger(3).rx_bytes, 0);
    }

    #[test]
    fn gc_while_offline_then_rejoin_across_retention_window() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(2).expect("offline");
        // Several registration+gc cycles pass while the node is down; its
        // base snapshot ages out of the window and is collected.
        for (i, img) in [1u32, 2, 3].iter().enumerate() {
            sq.advance_days(sq.config().gc_window_days + 1);
            sq.register(*img).expect("register");
            let gc = sq.gc();
            assert!(gc.snapshots_collected > 0, "cycle {i}: {gc:?}");
        }
        let outcome = sq.node_rejoin(2).expect("rejoin");
        assert!(matches!(outcome, RejoinOutcome::FullReplication { .. }), "{outcome:?}");
        assert!(sq.check_replication().is_consistent());
        assert!(sq.boot(2, 3).expect("boot").warm, "rebuilt hoard serves warm");
    }

    // --- fault injection & recovery -----------------------------------------

    #[test]
    fn degraded_boot_falls_back_to_shared_storage_until_repaired() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        let key = sq.corrupt_cc_block(1, 0).expect("victim block");
        sq.network_mut().reset_ledgers();

        let out = sq.boot(1, 0).expect("degraded boot");
        assert!(!out.warm && out.degraded, "{out:?}");
        assert!(out.net_bytes > 0, "degraded boot pulls from shared storage");
        let snap = sq.metrics().snapshot();
        assert_eq!(snap.counter("squirrel_boot_degraded_total"), Some(1));

        let repair = sq.scrub_and_repair(1).expect("repair");
        assert_eq!((repair.corrupt_found, repair.repaired, repair.unrepaired), (1, 1, 0));
        assert!(repair.is_healed());
        assert!(repair.refetch_bytes > 0, "repair is charged to the network");
        assert!(sq.scrub_node(1).expect("node").is_clean());
        let _ = key;

        let out = sq.boot(1, 0).expect("healed boot");
        assert!(out.warm && !out.degraded, "{out:?}");
    }

    #[test]
    fn boot_storm_serves_corrupt_node_degraded() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        sq.corrupt_cc_block(1, 3).expect("corrupt");
        let storm = sq.boot_storm(0, 4).expect("storm");
        assert_eq!((storm.warm_vms, storm.cold_vms, storm.degraded_vms), (2, 2, 2));
        assert!(storm.net_bytes > 0);
    }

    #[test]
    fn scvol_heals_from_intact_ccvol_replicas() {
        let mut sq = small_system(3);
        sq.register(0).expect("register");
        sq.corrupt_sc_block(1).expect("corrupt");
        assert!(!sq.scrub_scvol().is_clean());
        let repair = sq.scrub_and_repair_scvol();
        assert_eq!((repair.node, repair.repaired, repair.unrepaired), (None, 1, 0));
        assert!(sq.scrub_scvol().is_clean());
    }

    #[test]
    fn register_under_total_loss_gives_up_then_repair_replication_recovers() {
        use squirrel_faults::{FaultConfig, FaultPlan};
        let mut sq = small_system(3);
        sq.register(0).expect("clean register");
        // Every delivery attempt drops; retries are exhausted immediately.
        let config = FaultConfig { drop_prob: 1.0, max_retries: 1, ..FaultConfig::default() };
        sq.set_fault_plan(FaultPlan::new(9, config));
        let r = sq.register(1).expect("register survives total loss");
        assert_eq!(r.nodes_updated, 0);
        let fault = sq.fault_report().expect("armed");
        assert_eq!(fault.giveups, 3);
        assert_eq!(fault.net_drops, 6, "two attempts per node");
        assert!(!sq.check_replication().is_consistent());

        // The plan stays armed: the repair path itself must work under it.
        let sync = sq.repair_replication();
        assert_eq!((sync.lagging, sync.repaired, sync.failed), (3, 3, 0));
        assert!(sync.all_repaired());
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn register_behind_partition_leaves_node_lagging_until_heal() {
        use squirrel_faults::FaultPlan;
        let mut sq = small_system(3);
        sq.register(0).expect("clean register");
        let storage = sq.config().compute_nodes;
        sq.network_mut().partition(storage, 2);
        // A quiet plan injects nothing; the partition alone blocks node 2.
        sq.set_fault_plan(FaultPlan::quiet(5));
        let r = sq.register(1).expect("register");
        assert_eq!(r.nodes_updated, 2);
        assert_eq!(sq.check_replication().lagging_nodes(), vec![2]);
        // Repair can't reach it either, until the cut heals.
        let sync = sq.repair_replication();
        assert_eq!((sync.repaired, sync.failed), (0, 1));
        sq.network_mut().heal_all();
        let sync = sq.repair_replication();
        assert_eq!((sync.repaired, sync.failed), (1, 0));
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn faulty_register_is_deterministic_per_seed_and_thread_count() {
        use squirrel_faults::{FaultConfig, FaultPlan};
        let run = |threads: usize, seed: u64| {
            let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
            let mut sq = Squirrel::new(
                SquirrelConfig {
                    compute_nodes: 4,
                    block_size: 16 * 1024,
                    threads,
                    ..Default::default()
                },
                corpus,
            );
            sq.set_fault_plan(FaultPlan::new(seed, FaultConfig::chaos()));
            let r0 = sq.register(0).expect("r0");
            let r1 = sq.register(1).expect("r1");
            let fault = sq.clear_fault_plan().expect("armed").report();
            ((r0.nodes_updated, r1.nodes_updated), fault, sq.metrics().snapshot())
        };
        let reference = run(1, 21);
        for threads in [2, 8] {
            assert_eq!(run(threads, 21), reference, "threads={threads}");
        }
        assert_ne!(run(1, 22).1, reference.1, "different seed, different schedule");
    }

    // --- hoard budgets ------------------------------------------------------

    /// A system over the same corpus as [`small_system`], with a per-node
    /// hoard budget.
    fn budgeted_system(nodes: u32, budget: HoardBudget) -> Squirrel {
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        Squirrel::new(
            SquirrelConfig {
                compute_nodes: nodes,
                block_size: 16 * 1024,
                hoard_budget: budget,
                ..Default::default()
            },
            corpus,
        )
    }

    #[test]
    fn unlimited_budget_enforcement_is_a_noop() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        let report = sq.enforce_hoard_budgets();
        assert_eq!(report, BudgetReport::default());
        assert!(report.is_within_budget());
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn budget_equal_to_footprint_evicts_nothing() {
        let mut probe = small_system(1);
        for img in 0..3 {
            probe.register(img).expect("register");
        }
        let full = probe.ccvol_stats(0).expect("node");
        let mut sq = budgeted_system(
            1,
            HoardBudget {
                disk_bytes: full.total_disk_bytes(),
                ddt_mem_bytes: full.ddt_memory_bytes,
            },
        );
        for img in 0..3 {
            sq.register(img).expect("register");
        }
        let report = sq.enforce_hoard_budgets();
        assert!(report.evictions.is_empty(), "{report:?}");
        assert_eq!(report.nodes_over_budget, 0);
        assert!(report.is_within_budget());
        assert!(sq.boot(0, 0).expect("boot").warm);
    }

    #[test]
    fn budget_enforcement_evicts_least_popular_first() {
        let mut probe = small_system(1);
        for img in 0..3 {
            probe.register(img).expect("register");
        }
        let full = probe.ccvol_stats(0).expect("node").total_disk_bytes();
        // A disk budget one byte under the full hoard: at least one cache
        // must go.
        let mut sq =
            budgeted_system(1, HoardBudget { disk_bytes: full - 1, ddt_mem_bytes: 0 });
        for img in 0..3 {
            sq.register(img).expect("register");
        }
        // Popularity skew: image 0 never boots, image 1 once, image 2 most.
        sq.boot(0, 1).expect("boot");
        sq.boot(0, 2).expect("boot");
        sq.boot(0, 2).expect("boot");
        assert_eq!(sq.image_popularity(0), 0);
        assert_eq!(sq.image_popularity(1), 1);
        assert_eq!(sq.image_popularity(2), 2);

        let report = sq.enforce_hoard_budgets();
        assert_eq!(report.nodes_over_budget, 1);
        assert!(report.is_within_budget());
        assert!(!report.evictions.is_empty());
        assert_eq!(report.evictions[0].image, 0, "least popular goes first");
        assert!(report.evictions[0].was_cached);
        assert!(report.evictions[0].disk_bytes_freed > 0);
        assert!(report.evictions[0].ddt_mem_bytes_freed > 0);
        assert_eq!(report.evictions[0].popularity, 0);
        assert!(report.disk_bytes_freed >= report.evictions[0].disk_bytes_freed);
        // The node actually fits now, and the metrics recorded the pass.
        let cc = sq.ccvol_stats(0).expect("node");
        assert!(cc.total_disk_bytes() < full);
        let snap = sq.metrics().snapshot();
        assert_eq!(
            snap.counter("squirrel_budget_evictions_total"),
            Some(report.evictions.len() as u64)
        );
        assert_eq!(snap.gauge_u64("squirrel_hoard_max_disk_bytes"), Some(full - 1));
        // Evicted images boot degraded from shared storage, warm ones warm.
        let evicted: Vec<ImageId> = report.evictions.iter().map(|e| e.image).collect();
        let out = sq.boot(0, evicted[0]).expect("degraded boot");
        assert!(!out.warm && out.degraded, "{out:?}");
        assert!(out.net_bytes > 0);
        // Replication stays consistent: evictions are deliberate, not lag.
        assert!(sq.check_replication().is_consistent());
        // Idempotent: a second pass finds every node within budget.
        let again = sq.enforce_hoard_budgets();
        assert!(again.evictions.is_empty(), "{again:?}");
        assert_eq!(again.nodes_over_budget, 0);
    }

    #[test]
    fn starved_budget_degrades_everything_but_never_wedges() {
        // A budget smaller than any single cache: every cache goes, the
        // node may stay nominally over (pool overhead), and every image
        // still boots — degraded.
        let mut sq = budgeted_system(1, HoardBudget { disk_bytes: 1, ddt_mem_bytes: 1 });
        for img in 0..3 {
            sq.register(img).expect("register");
        }
        let report = sq.enforce_hoard_budgets();
        assert_eq!(report.nodes_over_budget, 1);
        assert_eq!(report.evictions.len(), 3, "{report:?}");
        assert_eq!(sq.ccvol_file_count(0), Some(0));
        for img in 0..3 {
            let out = sq.boot(0, img).expect("boot still works");
            assert!(!out.warm && out.degraded, "image {img}: {out:?}");
        }
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn rehoard_restores_warm_boot_bit_identically() {
        let mut probe = small_system(1);
        for img in 0..2 {
            probe.register(img).expect("register");
        }
        let full = probe.ccvol_stats(0).expect("node").total_disk_bytes();
        let mut sq =
            budgeted_system(1, HoardBudget { disk_bytes: full - 1, ddt_mem_bytes: 0 });
        for img in 0..2 {
            sq.register(img).expect("register");
        }
        let first = sq.ccvol_stats(0).expect("node");
        let baselines: Vec<BootVerification> =
            (0..2).map(|img| sq.verify_boot(0, img).expect("baseline verify")).collect();
        let report = sq.enforce_hoard_budgets();
        let victim = report.evictions[0].image;
        assert!(!sq.has_cache(0, victim));
        assert!(!sq.boot(0, victim).expect("boot").warm);

        let re = sq.rehoard_cache(0, victim).expect("rehoard");
        assert_eq!(re.node, 0);
        assert_eq!(re.image, victim);
        assert!(re.wire_bytes > 0, "re-hoard crosses the network");
        assert!(re.blocks > 0);
        assert!(sq.has_cache(0, victim));
        // Bit-identical to the first hoard: same live space accounting
        // (snapshot history legitimately slims down — the purge removed the
        // cache from old snapshots too), and the full decompress-and-compare
        // walk sees the original image bytes.
        let after = sq.ccvol_stats(0).expect("node");
        assert_eq!(after.logical_bytes, first.logical_bytes);
        assert_eq!(after.unique_blocks, first.unique_blocks);
        assert_eq!(after.physical_bytes, first.physical_bytes);
        assert_eq!(after.ddt_memory_bytes, first.ddt_memory_bytes);
        let v = sq.verify_boot(0, victim).expect("verify");
        assert!(v.bytes_verified > 0);
        assert_eq!(v, baselines[victim as usize], "same fetch profile as the first hoard");
        let out = sq.boot(0, victim).expect("boot");
        assert!(out.warm && !out.degraded, "{out:?}");
        assert!(sq.check_replication().is_consistent());
    }

    #[test]
    fn register_after_eviction_leaves_node_lagging_until_repair() {
        // An incremental diff can reference blocks the budget purge freed.
        // Same-release images share boot working-set blocks, so registering
        // one after evicting the other ships a diff whose pointers the
        // sender knows the receiver "already has" — except the purge freed
        // them. The node skips the stream (MissingBlock), stays lagging,
        // and the repair path's full replication re-hoards everything.
        let (a, b) = (0, 2); // same Ubuntu release in this corpus
        let mut cfg = CorpusConfig::test_corpus(8, 77);
        cfg.scale = 2048; // big enough caches for cross-image block sharing
        // Guard: a and b really do share cache blocks at this scale.
        {
            let corpus = Arc::new(Corpus::generate(cfg.clone()));
            let mut probe = Squirrel::new(
                SquirrelConfig { compute_nodes: 1, block_size: 16 * 1024, ..Default::default() },
                corpus,
            );
            probe.register(a).expect("probe a");
            let solo = probe.ccvol_stats(0).expect("node");
            probe.register(b).expect("probe b");
            let both = probe.ccvol_stats(0).expect("node");
            assert!(
                both.unique_blocks < 2 * solo.unique_blocks,
                "corpus drifted: caches {a} and {b} no longer dedup"
            );
        }

        let corpus = Arc::new(Corpus::generate(cfg));
        let mut sq = Squirrel::new(
            SquirrelConfig {
                compute_nodes: 2,
                block_size: 16 * 1024,
                hoard_budget: HoardBudget { disk_bytes: 1, ddt_mem_bytes: 1 },
                ..Default::default()
            },
            corpus,
        );
        sq.register(a).expect("register a");
        let evicted = sq.enforce_hoard_budgets();
        assert_eq!(evicted.evictions.len(), 2, "both nodes drop the cache");

        let r = sq.register(b).expect("register proceeds on the scVolume");
        assert_eq!(r.nodes_updated, 0, "purged nodes skip the diff");
        assert!(!sq.check_replication().is_consistent());

        let sync = sq.repair_replication();
        assert!(sync.all_repaired(), "{sync:?}");
        assert!(sq.check_replication().is_consistent());
        // Full replication re-hoarded everything, marks included.
        assert!(sq.has_cache(0, a) && sq.has_cache(0, b));
        assert!(sq.boot(0, b).expect("boot").warm);
        // The budget pass then re-evicts deterministically.
        let again = sq.enforce_hoard_budgets();
        assert!(again.is_within_budget());
        assert!(!again.evictions.is_empty());
    }

    #[test]
    fn budget_enforcement_is_deterministic_across_thread_counts() {
        let mut probe = small_system(1);
        for img in 0..4 {
            probe.register(img).expect("register");
        }
        let full = probe.ccvol_stats(0).expect("node").total_disk_bytes();
        let run = |threads: usize| {
            let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
            let mut sq = Squirrel::new(
                SquirrelConfig {
                    compute_nodes: 3,
                    block_size: 16 * 1024,
                    threads,
                    hoard_budget: HoardBudget { disk_bytes: full / 2, ddt_mem_bytes: 0 },
                    ..Default::default()
                },
                corpus,
            );
            for img in 0..4 {
                sq.register(img).expect("register");
            }
            sq.boot(0, 3).expect("boot");
            let storm = sq.boot_storm(1, 6).expect("storm");
            let report = sq.enforce_hoard_budgets();
            (report, storm.read_checksum, sq.metrics().snapshot())
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn rehoard_errors_match_the_workflow_contract() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        assert!(matches!(sq.rehoard_cache(9, 0), Err(SquirrelError::NoSuchNode(9))));
        assert!(matches!(sq.rehoard_cache(0, 5), Err(SquirrelError::NotRegistered(5))));
        sq.node_offline(1).expect("offline");
        assert!(matches!(sq.rehoard_cache(1, 0), Err(SquirrelError::NodeOffline(1))));
    }

    #[test]
    fn repair_errors_on_unknown_node_and_empty_pools() {
        let mut sq = small_system(2);
        assert!(matches!(sq.scrub_and_repair(9), Err(SquirrelError::NoSuchNode(9))));
        assert_eq!(sq.corrupt_cc_block(9, 0), None);
        assert_eq!(sq.corrupt_cc_block(0, 0), None, "empty pool has no victim");
        assert_eq!(sq.corrupt_sc_block(0), None);
        let repair = sq.scrub_and_repair(0).expect("empty pool repair");
        assert_eq!(repair.corrupt_found, 0);
        assert!(repair.is_healed());
    }

    #[test]
    fn errored_boot_leaves_popularity_unchanged() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        sq.boot(0, 0).expect("boot");
        assert_eq!(sq.image_popularity(0), 1);

        // Offline node: the boot fails before any work happens.
        sq.node_offline(1).expect("offline");
        assert!(sq.boot(1, 0).is_err());
        assert_eq!(sq.image_popularity(0), 1, "failed boot must not count");

        // Cold boot with the shared tier unreachable: the boot fails after
        // validation, in the shared read.
        sq.node_rejoin(1).expect("rejoin");
        let storage = sq.config().compute_nodes;
        for n in 0..sq.config().storage_nodes {
            sq.network_mut().partition(0, storage + n);
        }
        assert!(sq.boot(0, 5).is_err(), "unregistered image, storage cut");
        assert_eq!(sq.image_popularity(5), 0, "failed cold boot must not count");
    }

    #[test]
    fn errored_boot_storm_leaves_popularity_unchanged() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");

        // Unknown image: rejected up front.
        assert!(sq.boot_storm(99, 4).is_err());
        assert_eq!(sq.image_popularity(99), 0);

        // Whole fleet offline: rejected before any VM boots.
        sq.node_offline(0).expect("offline");
        sq.node_offline(1).expect("offline");
        assert!(sq.boot_storm(0, 4).is_err());
        assert_eq!(sq.image_popularity(0), 0, "failed storm must not count");

        // A storm that goes through counts every VM.
        sq.node_rejoin(0).expect("rejoin");
        sq.node_rejoin(1).expect("rejoin");
        let _ = sq.boot_storm(0, 4).expect("storm");
        assert_eq!(sq.image_popularity(0), 4);
    }

    #[test]
    fn decay_popularity_cools_counts_geometrically() {
        let mut sq = small_system(1);
        sq.register(0).expect("register");
        sq.register(1).expect("register");
        for _ in 0..8 {
            sq.boot(0, 0).expect("boot");
        }
        sq.boot(0, 1).expect("boot");
        assert_eq!(sq.image_popularity(0), 8);

        let cooled = sq.decay_popularity(0.5);
        assert_eq!(sq.image_popularity(0), 4);
        assert_eq!(sq.image_popularity(1), 0, "floor(1 * 0.5) cools to zero");
        assert_eq!(cooled, 1);

        // factor is clamped; 0 empties the signal.
        let cooled = sq.decay_popularity(0.0);
        assert_eq!(cooled, 1);
        assert_eq!(sq.image_popularity(0), 0);
    }

    #[test]
    fn once_hot_image_becomes_the_eviction_victim_after_decay() {
        // Image 0 is hot early, then goes cold while image 1 keeps booting.
        // Without decay the day-one burst outranks image 1 forever; with
        // decay on a cadence, the budget pass evicts the image that
        // *stopped* booting.
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        let mut probe = Squirrel::new(
            SquirrelConfig { compute_nodes: 1, block_size: 16 * 1024, ..Default::default() },
            Arc::clone(&corpus),
        );
        probe.register(1).expect("register");
        let one_image = probe.ccvol_stats(0).expect("node").total_disk_bytes();
        probe.register(0).expect("register");
        let two_images = probe.ccvol_stats(0).expect("node").total_disk_bytes();

        let mut sq = Squirrel::new(
            SquirrelConfig {
                compute_nodes: 1,
                block_size: 16 * 1024,
                // Room for image 1's cache alone, but not for both:
                // registering both forces the budget pass to pick exactly
                // one victim.
                hoard_budget: HoardBudget {
                    disk_bytes: (one_image + two_images) / 2,
                    ddt_mem_bytes: 0,
                },
                ..Default::default()
            },
            corpus,
        );
        sq.register(0).expect("register");
        sq.register(1).expect("register");
        // Day-one burst on image 0, then silence; image 1 trickles daily.
        for _ in 0..20 {
            sq.boot(0, 0).expect("boot");
        }
        for _ in 0..6 {
            sq.decay_popularity(0.5);
            sq.boot(0, 1).expect("boot");
        }
        assert!(
            sq.image_popularity(1) > sq.image_popularity(0),
            "decay must let the steady image overtake the stale burst: {} vs {}",
            sq.image_popularity(1),
            sq.image_popularity(0)
        );
        let report = sq.enforce_hoard_budgets();
        assert!(
            report.evictions.iter().any(|e| e.image == 0),
            "the once-hot, now-cold image is the victim: {report:?}"
        );
        assert!(
            report.evictions.iter().all(|e| e.image != 1),
            "the steadily-booting image survives: {report:?}"
        );
    }
}
