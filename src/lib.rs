//! Workspace facade crate for the Squirrel reproduction.
//!
//! Re-exports every subsystem so the runnable `examples/` and cross-crate
//! integration `tests/` can use one import root. Library users should depend
//! on the individual crates (`squirrel-core` and friends) directly.

pub use squirrel_bootsim as bootsim;
pub use squirrel_cluster as cluster;
pub use squirrel_compress as compress;
pub use squirrel_core as core;
pub use squirrel_curvefit as curvefit;
pub use squirrel_dataset as dataset;
pub use squirrel_faults as faults;
pub use squirrel_hash as hash;
pub use squirrel_obs as obs;
pub use squirrel_qcow as qcow;
pub use squirrel_zfs as zfs;
