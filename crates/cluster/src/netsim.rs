//! Network model: nodes, links, unicast/multicast transfer accounting.

use squirrel_obs::{Counter, Histogram, Metrics};

/// Node identifier within the cluster.
pub type NodeId = u32;

/// What a node does (affects which ledger a transfer is charged to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    Compute,
    Storage,
}

/// Interconnect flavours available on DAS-4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Commodity 1 Gb/s Ethernet.
    GbE,
    /// QDR InfiniBand, ~32 Gb/s theoretical.
    QdrInfiniband,
}

impl LinkKind {
    /// Effective bandwidth in MB/s (payload, after protocol overhead).
    pub fn mbps(&self) -> f64 {
        match self {
            LinkKind::GbE => 112.0,
            LinkKind::QdrInfiniband => 3200.0,
        }
    }

    /// Stable identifier used as the `link` metric label.
    pub fn name(&self) -> &'static str {
        match self {
            LinkKind::GbE => "gbe",
            LinkKind::QdrInfiniband => "qdr-ib",
        }
    }
}

/// Errors from the fallible transfer APIs ([`Network::try_unicast`] and
/// friends). The panicking variants treat these as caller bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A transfer was addressed to its own source.
    SelfTransfer { node: NodeId },
    /// A node id outside the cluster.
    UnknownNode { node: NodeId, nodes: usize },
    /// The link between the two nodes is partitioned (see
    /// [`Network::partition`]).
    Partitioned { src: NodeId, dst: NodeId },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::SelfTransfer { node } => write!(f, "node {node} transfer to itself"),
            NetError::UnknownNode { node, nodes } => {
                write!(f, "unknown node {node} (cluster has {nodes})")
            }
            NetError::Partitioned { src, dst } => {
                write!(f, "link {src}<->{dst} is partitioned")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Per-node byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    pub rx_bytes: u64,
    pub tx_bytes: u64,
}

/// Interned metric handles for the transfer paths.
struct NetMeters {
    tx_bytes: Counter,
    rx_bytes: Counter,
    unicasts: Counter,
    multicasts: Counter,
    pipelines: Counter,
    multicast_fanout: Histogram,
}

impl NetMeters {
    fn new(m: &Metrics) -> Self {
        NetMeters {
            tx_bytes: m.counter("net_tx_bytes_total"),
            rx_bytes: m.counter("net_rx_bytes_total"),
            unicasts: m.counter("net_unicast_total"),
            multicasts: m.counter("net_multicast_total"),
            pipelines: m.counter("net_pipeline_total"),
            multicast_fanout: m.histogram("net_multicast_fanout"),
        }
    }

    fn disabled() -> Self {
        Self::new(&Metrics::disabled())
    }
}

/// The cluster network: a flat switch with per-node ledgers, supporting
/// unicast and (for cache propagation) IP multicast.
pub struct Network {
    link: LinkKind,
    roles: Vec<NodeRole>,
    ledgers: Vec<TrafficLedger>,
    /// Cut links, stored as normalized `(min, max)` pairs. Partitions are
    /// symmetric: cutting `a<->b` blocks traffic in both directions.
    partitions: std::collections::BTreeSet<(NodeId, NodeId)>,
    meters: NetMeters,
}

impl Network {
    /// A cluster of `compute` compute nodes followed by `storage` storage
    /// nodes; node ids are assigned in that order.
    pub fn new(link: LinkKind, compute: u32, storage: u32) -> Self {
        let mut roles = vec![NodeRole::Compute; compute as usize];
        roles.extend(std::iter::repeat_n(NodeRole::Storage, storage as usize));
        let n = roles.len();
        Network {
            link,
            roles,
            ledgers: vec![TrafficLedger::default(); n],
            partitions: std::collections::BTreeSet::new(),
            meters: NetMeters::disabled(),
        }
    }

    /// Attach observability: transfers record `net_*` counters and the
    /// multicast fan-out histogram. The handle gains a `link` label naming
    /// this network's interconnect.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.meters = NetMeters::new(&metrics.with_label("link", self.link.name()));
    }

    pub fn link(&self) -> LinkKind {
        self.link
    }

    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node as usize]
    }

    pub fn compute_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len() as u32).filter(|&n| self.roles[n as usize] == NodeRole::Compute)
    }

    pub fn storage_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len() as u32).filter(|&n| self.roles[n as usize] == NodeRole::Storage)
    }

    fn check_node(&self, node: NodeId) -> Result<(), NetError> {
        if (node as usize) < self.roles.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode { node, nodes: self.roles.len() })
        }
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (a.min(b), a.max(b))
    }

    /// Cut the link between `a` and `b` (symmetric). Transfers crossing a
    /// cut link fail with [`NetError::Partitioned`] before any bytes are
    /// charged. Idempotent.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        if a != b && (a as usize) < self.roles.len() && (b as usize) < self.roles.len() {
            self.partitions.insert(Self::link_key(a, b));
        }
    }

    /// Restore the link between `a` and `b`. Idempotent.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&Self::link_key(a, b));
    }

    /// Restore every cut link.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Is the direct link between `a` and `b` currently up?
    pub fn is_reachable(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.partitions.contains(&Self::link_key(a, b))
    }

    /// Number of currently-cut links.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn check_reachable(&self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        if self.is_reachable(src, dst) {
            Ok(())
        } else {
            Err(NetError::Partitioned { src, dst })
        }
    }

    /// Transfer `bytes` from `src` to `dst`; returns the transfer seconds.
    /// Panics on a malformed transfer — see [`try_unicast`](Self::try_unicast).
    pub fn unicast(&mut self, src: NodeId, dst: NodeId, bytes: u64) -> f64 {
        assert_ne!(src, dst, "self-transfer");
        self.try_unicast(src, dst, bytes).expect("valid unicast")
    }

    /// Fallible [`unicast`](Self::unicast).
    pub fn try_unicast(&mut self, src: NodeId, dst: NodeId, bytes: u64) -> Result<f64, NetError> {
        if src == dst {
            return Err(NetError::SelfTransfer { node: src });
        }
        self.check_node(src)?;
        self.check_node(dst)?;
        self.check_reachable(src, dst)?;
        self.ledgers[src as usize].tx_bytes += bytes;
        self.ledgers[dst as usize].rx_bytes += bytes;
        self.meters.unicasts.inc();
        self.meters.tx_bytes.add(bytes);
        self.meters.rx_bytes.add(bytes);
        Ok(bytes as f64 / (self.link.mbps() * 1e6))
    }

    /// IP-multicast `bytes` from `src` to `dsts`: the sender transmits once,
    /// every receiver's NIC receives the full payload (the mechanism the
    /// paper assumes for snapshot-diff propagation, Section 3.2). Panics on
    /// a malformed transfer — see [`try_multicast`](Self::try_multicast).
    pub fn multicast(&mut self, src: NodeId, dsts: &[NodeId], bytes: u64) -> f64 {
        self.try_multicast(src, dsts, bytes).expect("valid multicast")
    }

    /// Fallible [`multicast`](Self::multicast).
    pub fn try_multicast(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
    ) -> Result<f64, NetError> {
        self.check_node(src)?;
        for &d in dsts {
            if d == src {
                return Err(NetError::SelfTransfer { node: src });
            }
            self.check_node(d)?;
            self.check_reachable(src, d)?;
        }
        self.ledgers[src as usize].tx_bytes += bytes;
        for &d in dsts {
            self.ledgers[d as usize].rx_bytes += bytes;
        }
        self.meters.multicasts.inc();
        self.meters.tx_bytes.add(bytes);
        self.meters.rx_bytes.add(bytes * dsts.len() as u64);
        self.meters.multicast_fanout.observe(dsts.len() as u64);
        Ok(bytes as f64 / (self.link.mbps() * 1e6))
    }

    /// LANTorrent-style pipelined transfer: the source sends once to the
    /// first receiver, each receiver forwards to the next while receiving.
    /// Every node transmits and receives at most one copy, and on a single
    /// switch the pipeline completes in roughly one transfer time plus a
    /// per-hop latency. Returns the transfer seconds. Panics on a malformed
    /// transfer — see [`try_pipeline`](Self::try_pipeline).
    pub fn pipeline(&mut self, src: NodeId, dsts: &[NodeId], bytes: u64) -> f64 {
        self.try_pipeline(src, dsts, bytes).expect("valid pipeline")
    }

    /// Fallible [`pipeline`](Self::pipeline).
    pub fn try_pipeline(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
    ) -> Result<f64, NetError> {
        if dsts.is_empty() {
            return Ok(0.0);
        }
        self.check_node(src)?;
        let mut prev = src;
        for &d in dsts {
            if d == prev {
                return Err(NetError::SelfTransfer { node: d });
            }
            self.check_node(d)?;
            self.check_reachable(prev, d)?;
            prev = d;
        }
        let mut prev = src;
        for &d in dsts {
            self.ledgers[prev as usize].tx_bytes += bytes;
            self.ledgers[d as usize].rx_bytes += bytes;
            prev = d;
        }
        self.meters.pipelines.inc();
        self.meters.tx_bytes.add(bytes * dsts.len() as u64);
        self.meters.rx_bytes.add(bytes * dsts.len() as u64);
        const HOP_LATENCY_S: f64 = 0.002;
        Ok(bytes as f64 / (self.link.mbps() * 1e6) + HOP_LATENCY_S * dsts.len() as f64)
    }

    pub fn ledger(&self, node: NodeId) -> TrafficLedger {
        self.ledgers[node as usize]
    }

    /// Sum of rx bytes over compute nodes — Figure 18's y-axis.
    pub fn compute_rx_total(&self) -> u64 {
        self.compute_nodes().map(|n| self.ledger(n).rx_bytes).sum()
    }

    /// Reset all ledgers (between experiment phases: registration traffic
    /// versus boot-time traffic are reported separately). Metrics counters
    /// are cumulative and are not reset.
    pub fn reset_ledgers(&mut self) {
        self.ledgers.fill(TrafficLedger::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_assigned_in_order() {
        let net = Network::new(LinkKind::GbE, 3, 2);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.role(0), NodeRole::Compute);
        assert_eq!(net.role(3), NodeRole::Storage);
        assert_eq!(net.compute_nodes().count(), 3);
        assert_eq!(net.storage_nodes().count(), 2);
    }

    #[test]
    fn unicast_charges_both_ends() {
        let mut net = Network::new(LinkKind::GbE, 2, 1);
        let secs = net.unicast(2, 0, 112_000_000);
        assert_eq!(net.ledger(2).tx_bytes, 112_000_000);
        assert_eq!(net.ledger(0).rx_bytes, 112_000_000);
        assert_eq!(net.ledger(1), TrafficLedger::default());
        assert!((secs - 1.0).abs() < 1e-9, "1 GbE moves 112 MB/s: {secs}");
    }

    #[test]
    fn multicast_sends_once_receives_everywhere() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        net.multicast(4, &[0, 1, 2, 3], 1000);
        assert_eq!(net.ledger(4).tx_bytes, 1000, "single transmission");
        for n in 0..4 {
            assert_eq!(net.ledger(n).rx_bytes, 1000);
        }
        assert_eq!(net.compute_rx_total(), 4000);
    }

    #[test]
    fn pipeline_spreads_tx_load() {
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        let t = net.pipeline(4, &[0, 1, 2, 3], 1_000_000);
        // Source transmits once; each intermediate node relays once.
        assert_eq!(net.ledger(4).tx_bytes, 1_000_000);
        assert_eq!(net.ledger(0).tx_bytes, 1_000_000);
        assert_eq!(net.ledger(3).tx_bytes, 0, "last hop only receives");
        for n in 0..4 {
            assert_eq!(net.ledger(n).rx_bytes, 1_000_000);
        }
        // Completes in about one transfer time, not n transfer times.
        let single = 1_000_000.0 / (LinkKind::GbE.mbps() * 1e6);
        assert!(t < 2.0 * single + 0.1, "{t} vs {single}");
    }

    #[test]
    fn pipeline_empty_is_noop() {
        let mut net = Network::new(LinkKind::GbE, 1, 1);
        assert_eq!(net.pipeline(1, &[], 100), 0.0);
        assert_eq!(net.compute_rx_total(), 0);
    }

    #[test]
    fn infiniband_is_faster() {
        let mut gbe = Network::new(LinkKind::GbE, 1, 1);
        let mut ib = Network::new(LinkKind::QdrInfiniband, 1, 1);
        assert!(ib.unicast(1, 0, 1 << 30) < gbe.unicast(1, 0, 1 << 30));
    }

    #[test]
    fn reset_clears_ledgers() {
        let mut net = Network::new(LinkKind::GbE, 1, 1);
        net.unicast(1, 0, 5);
        net.reset_ledgers();
        assert_eq!(net.compute_rx_total(), 0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_unicast_panics() {
        Network::new(LinkKind::GbE, 1, 1).unicast(0, 0, 1);
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        let mut net = Network::new(LinkKind::GbE, 2, 1);
        assert_eq!(net.try_unicast(0, 0, 1), Err(NetError::SelfTransfer { node: 0 }));
        assert_eq!(
            net.try_unicast(0, 9, 1),
            Err(NetError::UnknownNode { node: 9, nodes: 3 })
        );
        assert_eq!(net.try_multicast(2, &[0, 2], 1), Err(NetError::SelfTransfer { node: 2 }));
        assert_eq!(
            net.try_pipeline(2, &[0, 0], 1),
            Err(NetError::SelfTransfer { node: 0 })
        );
        // Failed transfers must not touch the ledgers.
        assert_eq!(net.compute_rx_total(), 0);
        assert_eq!(net.ledger(2), TrafficLedger::default());
        // Errors render through Display and implement Error.
        let e: Box<dyn std::error::Error> = Box::new(NetError::SelfTransfer { node: 7 });
        assert_eq!(e.to_string(), "node 7 transfer to itself");
    }

    #[test]
    fn partition_blocks_transfers_without_charging() {
        let mut net = Network::new(LinkKind::GbE, 3, 1);
        net.partition(3, 1);
        assert!(!net.is_reachable(1, 3), "symmetric cut");
        assert_eq!(net.partition_count(), 1);
        assert_eq!(
            net.try_unicast(3, 1, 1000),
            Err(NetError::Partitioned { src: 3, dst: 1 })
        );
        // Multicast with one unreachable receiver fails atomically.
        assert_eq!(
            net.try_multicast(3, &[0, 1, 2], 1000),
            Err(NetError::Partitioned { src: 3, dst: 1 })
        );
        // Pipeline checks hop-by-hop links: the chain 0 -> 1 -> 3 dies on
        // the cut 1<->3 hop, while 3 -> 0 -> 1 routes around it.
        assert_eq!(
            net.try_pipeline(0, &[1, 3], 1000),
            Err(NetError::Partitioned { src: 1, dst: 3 })
        );
        // None of the failures above charged a ledger.
        assert_eq!(net.compute_rx_total(), 0);
        assert_eq!(net.ledger(3), TrafficLedger::default());
        assert!(net.try_pipeline(3, &[0, 1], 1000).is_ok());
        // Unaffected links still work.
        assert!(net.try_unicast(3, 0, 10).is_ok());
        // Heal restores the link; heal_all clears everything.
        net.heal(1, 3);
        assert!(net.is_reachable(3, 1));
        assert!(net.try_unicast(3, 1, 10).is_ok());
        net.partition(3, 0);
        net.partition(3, 2);
        net.heal_all();
        assert_eq!(net.partition_count(), 0);
        // Partition of bogus or self links is a no-op.
        net.partition(0, 0);
        net.partition(0, 99);
        assert_eq!(net.partition_count(), 0);
        let e: Box<dyn std::error::Error> =
            Box::new(NetError::Partitioned { src: 3, dst: 1 });
        assert_eq!(e.to_string(), "link 3<->1 is partitioned");
    }

    #[test]
    fn transfers_record_metrics() {
        let reg = squirrel_obs::MetricsRegistry::new();
        let mut net = Network::new(LinkKind::GbE, 4, 1);
        net.set_metrics(&reg.handle());
        net.unicast(4, 0, 100);
        net.multicast(4, &[0, 1, 2], 50);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_tx_bytes_total{link=\"gbe\"}"), Some(150));
        assert_eq!(snap.counter("net_rx_bytes_total{link=\"gbe\"}"), Some(250));
        assert_eq!(snap.counter("net_multicast_total{link=\"gbe\"}"), Some(1));
        let fanout = snap
            .histogram("net_multicast_fanout{link=\"gbe\"}")
            .expect("fan-out histogram");
        assert_eq!(fanout.count, 1);
        assert_eq!(fanout.sum, 3);
    }
}
