//! Distribution sweep: storage-tier uplink bytes and registration latency
//! versus fleet size (100 / 1 000 / 10 000 nodes) for every
//! [`DistributionPolicy`] — the scalability argument behind the
//! `TransferPlan` redesign.
//!
//! The serial-unicast baseline pays the storage uplink one payload per
//! receiver, so its cost grows linearly with the fleet; tree multicast
//! caps it at the fanout, pipelining and peer-assisted transfer at one
//! payload. The sweep measures all four from the network ledgers, checks
//! the ordering at every fleet size, and replays the smallest point at
//! worker-thread counts 1/2/8 asserting bit-identical [`RegisterReport`]s
//! and metrics. A passing run *is* the acceptance check; results land in
//! `results/BENCH_distribution.json`.

use crate::config::ExperimentConfig;
use crate::csvout::{fmt_f, Table};
use crate::experiments::bootstorm::thread_sweep;
use squirrel_core::{DistributionPolicy, RegisterReport, Squirrel, SquirrelConfig};

/// Fleet sizes swept (the paper's DAS-4 cluster is 64 nodes; the point of
/// the redesign is what happens well past it).
pub const DIST_NODE_COUNTS: [u32; 3] = [100, 1000, 10_000];

/// Catalog size per point: the sweep measures transfer shape, not dedup,
/// so a handful of images is enough signal.
const DIST_IMAGES: u32 = 3;

/// One (policy, fleet size) measurement.
#[derive(Clone, Debug)]
pub struct DistPoint {
    pub policy: DistributionPolicy,
    pub nodes: u32,
    pub registrations: u32,
    /// Total diff wire bytes across the registrations (per receiver).
    pub wire_bytes: u64,
    /// Bytes the storage tier transmitted, from the ledgers.
    pub storage_tx_bytes: u64,
    /// Bytes compute peers transmitted on the storage tier's behalf.
    pub peer_tx_bytes: u64,
    pub peer_hits: u64,
    pub peer_misses: u64,
    /// Mean simulated seconds per registration (first boot included).
    pub mean_register_secs: f64,
    pub wall_secs: f64,
}

fn point_system(cfg: &ExperimentConfig, policy: DistributionPolicy, nodes: u32) -> Squirrel {
    let corpus =
        ExperimentConfig { images: cfg.images.min(DIST_IMAGES), ..cfg.clone() }.corpus();
    Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .block_size(16 * 1024)
            .threads(cfg.threads)
            .distribution(policy)
            .build(),
        corpus,
    )
}

/// Register the catalog on a fresh fleet and read the ledgers.
pub fn run_point(cfg: &ExperimentConfig, policy: DistributionPolicy, nodes: u32) -> DistPoint {
    let t = std::time::Instant::now();
    let mut sq = point_system(cfg, policy, nodes);
    let images = cfg.images.min(DIST_IMAGES);
    let mut wire = 0u64;
    let mut secs = 0.0f64;
    for img in 0..images {
        let r = sq.register(img).expect("register");
        assert_eq!(r.nodes_updated, nodes, "{} at {nodes} nodes", policy.name());
        wire += r.diff_wire_bytes;
        secs += r.seconds;
    }
    let snap = sq.metrics().snapshot();
    DistPoint {
        policy,
        nodes,
        registrations: images,
        wire_bytes: wire,
        storage_tx_bytes: sq.network().storage_tx_total(),
        peer_tx_bytes: sq.network().compute_tx_total(),
        peer_hits: snap.counter("squirrel_dist_peer_hits_total").unwrap_or(0),
        peer_misses: snap.counter("squirrel_dist_peer_misses_total").unwrap_or(0),
        mean_register_secs: secs / f64::from(images.max(1)),
        wall_secs: t.elapsed().as_secs_f64(),
    }
}

/// Replay the smallest fleet at every thread count; reports and metrics
/// must be bit-identical under every policy.
fn assert_thread_determinism(cfg: &ExperimentConfig, nodes: u32) {
    for policy in DistributionPolicy::standard_set() {
        let run = |threads: usize| {
            let mut sq = point_system(&ExperimentConfig { threads, ..cfg.clone() }, policy, nodes);
            let reports: Vec<RegisterReport> = (0..cfg.images.min(DIST_IMAGES))
                .map(|img| sq.register(img).expect("register"))
                .collect();
            (reports, sq.metrics().snapshot())
        };
        let reference = run(1);
        for threads in thread_sweep(cfg) {
            assert_eq!(
                run(threads),
                reference,
                "{} diverged at threads={threads}",
                policy.name()
            );
        }
    }
}

/// The full sweep: every policy at every fleet size, ordering gates
/// asserted, CSV + `BENCH_distribution.json` written.
pub fn run_distribution(cfg: &ExperimentConfig, node_counts: &[u32]) -> Vec<DistPoint> {
    let mut points = Vec::new();
    let mut t = Table::new(&[
        "policy",
        "nodes",
        "storage_tx_mib",
        "peer_tx_mib",
        "mean_register_s",
        "peer_hit_rate",
    ]);
    for &nodes in node_counts {
        for policy in DistributionPolicy::standard_set() {
            let p = run_point(cfg, policy, nodes);
            println!(
                "distribution {} nodes={}: storage_tx={} B, peer_tx={} B, \
                 mean register {:.2} s ({:.2}s wall)",
                policy.name(),
                nodes,
                p.storage_tx_bytes,
                p.peer_tx_bytes,
                p.mean_register_secs,
                p.wall_secs,
            );
            let served = p.peer_hits + p.peer_misses;
            t.push(vec![
                p.policy.name().to_string(),
                nodes.to_string(),
                fmt_f(p.storage_tx_bytes as f64 / (1 << 20) as f64),
                fmt_f(p.peer_tx_bytes as f64 / (1 << 20) as f64),
                fmt_f(p.mean_register_secs),
                fmt_f(if served == 0 { 0.0 } else { p.peer_hits as f64 / served as f64 }),
            ]);
            points.push(p);
        }
    }

    // Ordering gates, at every fleet size: the redesigned shapes must beat
    // the serial uplink, and peer-assisted must leave it at a constant.
    for &nodes in node_counts {
        let tx = |policy: DistributionPolicy| {
            points
                .iter()
                .find(|p| p.nodes == nodes && p.policy == policy)
                .expect("swept point")
                .storage_tx_bytes
        };
        let unicast = tx(DistributionPolicy::Unicast);
        let multicast = tx(DistributionPolicy::Multicast { fanout: 8 });
        let peer = tx(DistributionPolicy::PeerAssisted);
        let pipeline = tx(DistributionPolicy::Pipeline);
        assert!(peer < unicast, "peer {peer} !< unicast {unicast} at {nodes} nodes");
        assert!(pipeline < unicast, "pipeline {pipeline} !< unicast {unicast} at {nodes}");
        if nodes > 8 {
            // The tree only undercuts serial unicast once the fleet
            // outgrows its fanout; below that every receiver is a child
            // of the root and the two shapes cost the uplink the same.
            assert!(multicast < unicast, "multicast {multicast} !< unicast {unicast} at {nodes}");
        } else {
            assert!(multicast <= unicast, "multicast {multicast} > unicast {unicast} at {nodes}");
        }
    }
    assert_thread_determinism(cfg, node_counts[0]);

    t.print("Distribution: storage-tier uplink vs fleet size per policy");
    t.write(&cfg.out_dir, "distribution").expect("csv");
    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_distribution.json");
        std::fs::write(&path, render_json(cfg, node_counts, &points))
            .expect("write BENCH_distribution.json");
        println!("distribution bench written to {}", path.display());
    }
    points
}

/// Hand-rolled JSON (the workspace is std-only by policy). The named gates
/// read the two largest swept fleet sizes — 1 000 and 10 000 on the
/// default sweep.
fn render_json(cfg: &ExperimentConfig, node_counts: &[u32], points: &[DistPoint]) -> String {
    let tx = |nodes: u32, policy: DistributionPolicy| {
        points
            .iter()
            .find(|p| p.nodes == nodes && p.policy == policy)
            .expect("swept point")
            .storage_tx_bytes
    };
    let mid = node_counts[node_counts.len().saturating_sub(2)];
    let top = *node_counts.last().expect("non-empty sweep");
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"nodes\": {}, \"registrations\": {}, \
                 \"wire_bytes\": {}, \"storage_tx_bytes\": {}, \"peer_tx_bytes\": {}, \
                 \"peer_hits\": {}, \"peer_misses\": {}, \"mean_register_secs\": {}, \
                 \"wall_secs\": {}}}",
                p.policy.name(),
                p.nodes,
                p.registrations,
                p.wire_bytes,
                p.storage_tx_bytes,
                p.peer_tx_bytes,
                p.peer_hits,
                p.peer_misses,
                fmt_f(p.mean_register_secs),
                fmt_f(p.wall_secs),
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": {},\n  \"images\": {},\n  \"block_size\": 16384,\n  \
         \"node_counts\": [{}],\n  \
         \"policies\": [\"unicast\", \"multicast\", \"pipeline\", \"peer-assisted\"],\n  \
         \"peer_below_unicast_1k\": {},\n  \
         \"peer_below_unicast_10k\": {},\n  \
         \"multicast_below_unicast_1k\": {},\n  \
         \"deterministic_across_threads\": true,\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.images.min(DIST_IMAGES),
        node_counts.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", "),
        tx(mid, DistributionPolicy::PeerAssisted) < tx(mid, DistributionPolicy::Unicast),
        tx(top, DistributionPolicy::PeerAssisted) < tx(top, DistributionPolicy::Unicast),
        tx(mid, DistributionPolicy::Multicast { fanout: 8 })
            < tx(mid, DistributionPolicy::Unicast),
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_orders_policies_and_stays_deterministic() {
        let cfg = ExperimentConfig::smoke();
        let points = run_distribution(&cfg, &[6, 12]);
        assert_eq!(points.len(), 8, "4 policies x 2 fleet sizes");
        // The uplink constant: peer-assisted storage bytes don't grow with
        // the fleet, serial unicast's do.
        let peer: Vec<u64> = points
            .iter()
            .filter(|p| p.policy == DistributionPolicy::PeerAssisted)
            .map(|p| p.storage_tx_bytes)
            .collect();
        assert_eq!(peer[0], peer[1]);
        let uni: Vec<u64> = points
            .iter()
            .filter(|p| p.policy == DistributionPolicy::Unicast)
            .map(|p| p.storage_tx_bytes)
            .collect();
        assert_eq!(uni[1], 2 * uni[0]);
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let cfg = ExperimentConfig::smoke();
        let mut points = Vec::new();
        for n in [12u32, 16] {
            for policy in DistributionPolicy::standard_set() {
                points.push(run_point(&cfg, policy, n));
            }
        }
        let json = render_json(&cfg, &[12, 16], &points);
        for key in [
            "\"peer_below_unicast_1k\": true",
            "\"peer_below_unicast_10k\": true",
            "\"multicast_below_unicast_1k\": true",
            "\"deterministic_across_threads\": true",
            "\"storage_tx_bytes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
