//! Content hashing substrate for the Squirrel reproduction.
//!
//! ZFS-style deduplication is content addressed: every block is identified by
//! a cryptographic digest of its bytes. The paper's ZFS deployment uses
//! SHA-256 for dedup checksums, so this crate provides a from-scratch
//! FIPS 180-4 SHA-256 ([`sha256`], [`Sha256`]) plus cheap non-cryptographic
//! hashes ([`Fnv1a64`], [`mix64`]) for hot in-memory tables where HashDoS is
//! not a concern (see the Rust Performance Book's hashing chapter).

mod fast;
mod sha256;

pub use fast::{mix64, FnvBuildHasher, FnvHashMap, FnvHashSet, Fnv1a64};
pub use sha256::{sha256, Sha256};

/// A 256-bit content digest identifying a block's bytes.
///
/// This is the dedup key: two blocks with equal `ContentHash` are treated as
/// the same block (hash collisions are assumed not to occur, as in ZFS when
/// `dedup=sha256` without `verify`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Hash `data` into a `ContentHash` using SHA-256.
    #[inline]
    pub fn of(data: &[u8]) -> Self {
        ContentHash(sha256(data))
    }

    /// First 128 bits of the digest, for compact in-memory table keys.
    ///
    /// 128 bits keep the collision probability negligible (< 2^-60 for 10^9
    /// blocks) while halving table key size versus the full digest.
    #[inline]
    pub fn short(&self) -> u128 {
        u128::from_le_bytes(self.0[..16].try_into().expect("32-byte digest"))
    }

    /// Hex rendering of the full digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({}..)", &self.to_hex()[..16])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_of_matches_sha256() {
        assert_eq!(ContentHash::of(b"abc").0, sha256(b"abc"));
    }

    #[test]
    fn short_is_prefix() {
        let h = ContentHash::of(b"squirrel");
        let bytes = h.short().to_le_bytes();
        assert_eq!(&bytes[..], &h.0[..16]);
    }

    #[test]
    fn hex_roundtrip_length_and_chars() {
        let h = ContentHash::of(b"");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(
            hex,
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(ContentHash::of(b"a"), ContentHash::of(b"b"));
    }

    #[test]
    fn debug_is_compact() {
        let d = format!("{:?}", ContentHash::of(b"x"));
        assert!(d.starts_with("ContentHash("));
        assert!(d.len() < 40);
    }
}
