#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — every
# dependency is in-tree (see the std-only policy in README.md / vendor/).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --all-targets --workspace -- -D warnings

echo "ci.sh: all checks passed"
