//! A ZFS-like block store: inline deduplication + compression, snapshots,
//! and incremental send/recv — the storage engine Squirrel's cVolumes run on.
//!
//! The paper uses ZFS as an off-the-shelf mechanism; every quantity its
//! evaluation measures is an accounting property of a dedup+compress block
//! store, which this crate implements from scratch:
//!
//! * **Content addressing** — fixed-size blocks keyed by SHA-256 (like
//!   `dedup=sha256`), with a refcounted dedup table sharded by hash prefix
//!   for lock-free concurrent probes ([`sddt`]; the serial [`ddt`] is kept
//!   as the differential-test reference).
//! * **Inline compression** — every unique block is stored compressed with a
//!   configurable codec (gzip-6 by default, like the paper's choice).
//! * **Space accounting** ([`stats`]) — physical data, on-disk DDT, in-core
//!   DDT, and block-pointer metadata, the inputs to Figures 8–10 and 13.
//! * **Snapshots & incremental send** ([`send`]) — cheap read-only snapshots
//!   of the whole pool's file set and `zfs send -i`-style diff streams, the
//!   propagation mechanism of Squirrel's registration workflow (Section 3).
//! * **Staged parallel ingestion** ([`ingest`]) — whole-file imports split
//!   into pure prepare stages (fused zero-scan + hash + DDT probe, then
//!   compression) that fan out over a persistent
//!   [`WorkerPool`](squirrel_hash::par::WorkerPool) shared across calls
//!   and pools, and a batched in-order serial commit — bit-identical to
//!   the serial write path at any thread count.
//! * **Zero-copy read path** ([`arc`], [`sharedarc`]) — payloads are shared
//!   immutable `Arc<[u8]>` buffers ([`SharedPayload`]) decompressed at most
//!   once per cache residency; warm reads are refcount bumps, and the
//!   shard-locked [`SharedArcCache`] serves any number of concurrent
//!   boot-storm readers with bit-identical bytes and statistics.
//! * **Physical layout** — unique blocks are allocated sequentially in
//!   arrival order, so logically adjacent blocks of a deduplicated file end
//!   up scattered; the boot simulator reads this layout to reproduce the
//!   paper's Figure 11 seek behaviour.

pub mod arc;
pub mod config;
pub mod ddt;
pub mod ingest;
mod meter;
pub mod pool;
pub mod scrub;
pub mod sddt;
pub mod send;
pub mod sharedarc;
pub mod stats;

pub use arc::{ArcCache, ArcStats};
pub use config::{DedupMode, PoolConfig, PoolConfigBuilder};
pub use ddt::{BlockKey, DdtEntry, DedupTable, SharedPayload};
pub use pool::{BlockRef, CdcChunk, FileScatter, RecordLoc, ReverseDedupReport, ZPool};
pub use squirrel_hash::cdc::{CdcParams, ChunkStrategy};
pub use scrub::ScrubReport;
pub use sddt::ShardedDedupTable;
pub use send::{DecodeError, RecvError, SendError, SendStream};
pub use sharedarc::SharedArcCache;
pub use stats::{QuotaExcess, SpaceStats};
