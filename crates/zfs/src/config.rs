//! Pool configuration: block size, codec, and accounting constants.

use squirrel_compress::Codec;
pub use squirrel_hash::cdc::ChunkStrategy;

/// How commits place new data relative to existing snapshots' copies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DedupMode {
    /// Classic forward dedup: a new write that matches an existing block
    /// points at the *old* physical copy, so the newest snapshot inherits
    /// the pool's accumulated fragmentation.
    #[default]
    Forward,
    /// RevDedup-style reverse dedup: after each whole-file import the pool
    /// runs [`crate::ZPool::reverse_dedup_pass`], relocating every record
    /// of the new file to fresh sequential extents at the allocation
    /// cursor. Older snapshots' pointers chase the moved blocks, so the
    /// *latest* data stays physically sequential and old snapshots pay the
    /// seek cost.
    Reverse,
}

/// Configuration of a [`crate::ZPool`].
///
/// Construct via [`PoolConfig::builder`], [`PoolConfig::new`], or
/// [`PoolConfig::paper_default`]; the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking downstream crates.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct PoolConfig {
    /// Fixed record size (ZFS `recordsize`); the dedup/compression unit.
    pub block_size: usize,
    /// Inline compression routine (ZFS `compression=`).
    pub codec: Codec,
    /// Keep block payloads in memory so files can be read back. Accounting
    /// sweeps that only need [`crate::SpaceStats`] turn this off to bound
    /// memory.
    pub retain_data: bool,
    /// In-core bytes per dedup-table entry (ZFS DDT entries cost a few
    /// hundred bytes each in ARC; the exact figure depends on the build).
    pub ddt_mem_entry_bytes: u64,
    /// On-disk bytes per dedup-table entry (the ZAP leaf footprint).
    pub ddt_disk_entry_bytes: u64,
    /// On-disk metadata bytes per file block pointer (amortized indirect
    /// blocks; ZFS blkptr_t is 128 B but metadata is itself compressed).
    pub bp_disk_bytes: u64,
    /// Worker threads for the staged ingestion pipeline
    /// ([`crate::ZPool::import_file_parallel`]); `0` = all available cores.
    /// Results are bit-identical at any setting.
    pub threads: usize,
    /// Hoard budget: total on-disk bytes this pool should occupy
    /// ([`crate::SpaceStats::total_disk_bytes`]); `0` = unlimited. The pool
    /// only *reports* pressure ([`crate::ZPool::quota_excess`]) — eviction
    /// policy lives with the caller.
    pub disk_quota_bytes: u64,
    /// Hoard budget: in-core DDT bytes (`ddt_mem_entry_bytes` × unique
    /// blocks); `0` = unlimited. Reported, not enforced, like
    /// [`disk_quota_bytes`](Self::disk_quota_bytes).
    pub ddt_mem_quota_bytes: u64,
    /// How whole-file imports cut content into dedup units. `Fixed` keeps
    /// the classic `block_size` records (and is wire-identical to pools
    /// that predate this knob); `Cdc` cuts content-defined chunks in the
    /// parallel prepare stage.
    pub chunking: ChunkStrategy,
    /// Forward (classic) or reverse (read-optimized, RevDedup-style)
    /// commit placement.
    pub dedup_mode: DedupMode,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::paper_default()
    }
}

impl PoolConfig {
    /// The paper's production choice: 64 KiB records, gzip-6, dedup on.
    pub fn paper_default() -> Self {
        PoolConfig::new(64 * 1024, Codec::Gzip(6))
    }

    /// Start a builder seeded with [`PoolConfig::paper_default`].
    pub fn builder() -> PoolConfigBuilder {
        PoolConfigBuilder { config: PoolConfig::paper_default(), chunking_set: false }
    }

    /// A pool with the given record size and codec and default accounting
    /// constants.
    pub fn new(block_size: usize, codec: Codec) -> Self {
        assert!(block_size >= 512 && block_size.is_power_of_two(), "record size");
        PoolConfig {
            block_size,
            codec,
            retain_data: true,
            ddt_mem_entry_bytes: 120,
            ddt_disk_entry_bytes: 108,
            bp_disk_bytes: 40,
            threads: 0,
            disk_quota_bytes: 0,
            ddt_mem_quota_bytes: 0,
            chunking: ChunkStrategy::Fixed(block_size),
            dedup_mode: DedupMode::Forward,
        }
    }

    /// Accounting-only variant (no payload retention).
    pub fn accounting_only(mut self) -> Self {
        self.retain_data = false;
        self
    }

    /// Set the ingestion worker-thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the hoard budget (`0` = unlimited on either axis).
    pub fn with_quotas(mut self, disk_bytes: u64, ddt_mem_bytes: u64) -> Self {
        self.disk_quota_bytes = disk_bytes;
        self.ddt_mem_quota_bytes = ddt_mem_bytes;
        self
    }

    /// Set the chunking strategy for whole-file imports.
    pub fn with_chunking(mut self, chunking: ChunkStrategy) -> Self {
        self.chunking = chunking;
        self
    }

    /// Set the commit placement mode.
    pub fn with_dedup_mode(mut self, mode: DedupMode) -> Self {
        self.dedup_mode = mode;
        self
    }
}

/// Builder for [`PoolConfig`]. Setters mirror the config fields; `build`
/// validates the record size exactly like [`PoolConfig::new`].
#[derive(Clone, Debug)]
pub struct PoolConfigBuilder {
    config: PoolConfig,
    /// Whether [`chunking`](Self::chunking) was called; when it wasn't,
    /// `build` re-derives `Fixed(block_size)` so a builder that only sets
    /// `block_size` stays consistent.
    chunking_set: bool,
}

impl PoolConfigBuilder {
    /// Fixed record size; must be a power of two of at least 512 bytes
    /// (checked in [`build`](Self::build)).
    pub fn block_size(mut self, block_size: usize) -> Self {
        self.config.block_size = block_size;
        self
    }

    pub fn codec(mut self, codec: Codec) -> Self {
        self.config.codec = codec;
        self
    }

    pub fn retain_data(mut self, retain: bool) -> Self {
        self.config.retain_data = retain;
        self
    }

    pub fn ddt_mem_entry_bytes(mut self, bytes: u64) -> Self {
        self.config.ddt_mem_entry_bytes = bytes;
        self
    }

    pub fn ddt_disk_entry_bytes(mut self, bytes: u64) -> Self {
        self.config.ddt_disk_entry_bytes = bytes;
        self
    }

    pub fn bp_disk_bytes(mut self, bytes: u64) -> Self {
        self.config.bp_disk_bytes = bytes;
        self
    }

    /// Ingestion worker threads (`0` = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// On-disk hoard budget in bytes (`0` = unlimited).
    pub fn disk_quota_bytes(mut self, bytes: u64) -> Self {
        self.config.disk_quota_bytes = bytes;
        self
    }

    /// In-core DDT hoard budget in bytes (`0` = unlimited).
    pub fn ddt_mem_quota_bytes(mut self, bytes: u64) -> Self {
        self.config.ddt_mem_quota_bytes = bytes;
        self
    }

    /// Chunking strategy for whole-file imports. The builder seeds this
    /// from the paper default's block size; setting
    /// [`block_size`](Self::block_size) without setting a strategy keeps
    /// fixed chunking at the new record size (resolved in
    /// [`build`](Self::build)).
    pub fn chunking(mut self, chunking: ChunkStrategy) -> Self {
        self.config.chunking = chunking;
        self.chunking_set = true;
        self
    }

    /// Commit placement mode (forward or reverse dedup).
    pub fn dedup_mode(mut self, mode: DedupMode) -> Self {
        self.config.dedup_mode = mode;
        self
    }

    pub fn build(self) -> PoolConfig {
        let mut c = self.config;
        assert!(c.block_size >= 512 && c.block_size.is_power_of_two(), "record size");
        if !self.chunking_set {
            c.chunking = ChunkStrategy::Fixed(c.block_size);
        }
        if let ChunkStrategy::Fixed(bs) = c.chunking {
            assert_eq!(bs, c.block_size, "fixed chunk size must equal the record size");
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_64k_gzip6() {
        let c = PoolConfig::paper_default();
        assert_eq!(c.block_size, 65536);
        assert_eq!(c.codec, Codec::Gzip(6));
        assert!(c.retain_data);
    }

    #[test]
    #[should_panic(expected = "record size")]
    fn rejects_non_power_of_two() {
        PoolConfig::new(3000, Codec::Off);
    }

    #[test]
    #[should_panic(expected = "record size")]
    fn rejects_tiny_block() {
        PoolConfig::new(256, Codec::Off);
    }

    #[test]
    fn accounting_only_disables_retention() {
        assert!(!PoolConfig::paper_default().accounting_only().retain_data);
    }

    #[test]
    fn builder_mirrors_constructors() {
        let built = PoolConfig::builder()
            .block_size(4096)
            .codec(Codec::Lz4)
            .retain_data(false)
            .threads(3)
            .build();
        assert_eq!(built.block_size, 4096);
        assert_eq!(built.codec, Codec::Lz4);
        assert!(!built.retain_data);
        assert_eq!(built.threads, 3);
        // Unset knobs keep the paper defaults.
        assert_eq!(built.ddt_mem_entry_bytes, 120);
    }

    #[test]
    #[should_panic(expected = "record size")]
    fn builder_validates_block_size() {
        let _ = PoolConfig::builder().block_size(1000).build();
    }

    #[test]
    fn quotas_default_unlimited_and_are_settable() {
        let d = PoolConfig::paper_default();
        assert_eq!(d.disk_quota_bytes, 0);
        assert_eq!(d.ddt_mem_quota_bytes, 0);
        let c = PoolConfig::new(4096, Codec::Lz4).with_quotas(1 << 30, 1 << 20);
        assert_eq!(c.disk_quota_bytes, 1 << 30);
        assert_eq!(c.ddt_mem_quota_bytes, 1 << 20);
        let b = PoolConfig::builder()
            .disk_quota_bytes(10_000)
            .ddt_mem_quota_bytes(60)
            .build();
        assert_eq!(b.disk_quota_bytes, 10_000);
        assert_eq!(b.ddt_mem_quota_bytes, 60);
    }

    #[test]
    fn default_is_paper_default() {
        let d = PoolConfig::default();
        assert_eq!(d.block_size, 65536);
        assert_eq!(d.codec, Codec::Gzip(6));
    }

    #[test]
    fn chunking_defaults_to_fixed_at_block_size() {
        let c = PoolConfig::new(4096, Codec::Off);
        assert_eq!(c.chunking, ChunkStrategy::Fixed(4096));
        assert_eq!(c.dedup_mode, DedupMode::Forward);
        // Builder that only changes block_size re-derives the fixed size.
        let b = PoolConfig::builder().block_size(8192).build();
        assert_eq!(b.chunking, ChunkStrategy::Fixed(8192));
    }

    #[test]
    fn chunking_and_dedup_mode_are_settable() {
        use squirrel_hash::cdc::CdcParams;
        let p = CdcParams::with_average(4096);
        let c = PoolConfig::new(4096, Codec::Off)
            .with_chunking(ChunkStrategy::Cdc(p))
            .with_dedup_mode(DedupMode::Reverse);
        assert_eq!(c.chunking, ChunkStrategy::Cdc(p));
        assert_eq!(c.dedup_mode, DedupMode::Reverse);
        let b = PoolConfig::builder()
            .block_size(4096)
            .chunking(ChunkStrategy::Cdc(p))
            .dedup_mode(DedupMode::Reverse)
            .build();
        assert_eq!(b.chunking, ChunkStrategy::Cdc(p));
        assert_eq!(b.dedup_mode, DedupMode::Reverse);
    }

    #[test]
    #[should_panic(expected = "fixed chunk size must equal the record size")]
    fn builder_rejects_mismatched_fixed_chunking() {
        let _ = PoolConfig::builder()
            .block_size(8192)
            .chunking(ChunkStrategy::Fixed(4096))
            .build();
    }
}
