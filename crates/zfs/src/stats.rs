//! Space accounting: the numbers the paper's Figures 8–10 and 13 plot.

/// A pool's space breakdown at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceStats {
    /// Record size the pool runs at.
    pub block_size: u64,
    /// Sum of logical file lengths.
    pub logical_bytes: u64,
    /// Unique (deduplicated) blocks — the DDT entry count.
    pub unique_blocks: u64,
    /// Compressed bytes of all unique blocks.
    pub physical_bytes: u64,
    /// On-disk dedup table footprint (Figure 9).
    pub ddt_disk_bytes: u64,
    /// In-core dedup table footprint (Figure 10).
    pub ddt_memory_bytes: u64,
    /// Block-pointer / indirect metadata on disk.
    pub bp_disk_bytes: u64,
}

impl SpaceStats {
    /// Total disk consumption: data + dedup table + pointer metadata
    /// (Figure 8's y-axis).
    pub fn total_disk_bytes(&self) -> u64 {
        self.physical_bytes + self.ddt_disk_bytes + self.bp_disk_bytes
    }

    /// Effective combined ratio achieved by the pool (logical over total).
    pub fn effective_ratio(&self) -> f64 {
        self.logical_bytes as f64 / self.total_disk_bytes().max(1) as f64
    }
}

/// How far a pool is over its hoard budget, per axis. Zero on both axes
/// means within budget (or no budget configured).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct QuotaExcess {
    /// Bytes of total disk consumption above `disk_quota_bytes`.
    pub disk_bytes: u64,
    /// Bytes of in-core DDT footprint above `ddt_mem_quota_bytes`.
    pub ddt_mem_bytes: u64,
}

impl QuotaExcess {
    /// True when the pool is within budget on both axes.
    pub fn is_zero(&self) -> bool {
        self.disk_bytes == 0 && self.ddt_mem_bytes == 0
    }
}

/// Pretty byte counts for experiment output.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SpaceStats {
        SpaceStats {
            block_size: 65536,
            logical_bytes: 1_000_000,
            unique_blocks: 10,
            physical_bytes: 300_000,
            ddt_disk_bytes: 1_080,
            ddt_memory_bytes: 1_200,
            bp_disk_bytes: 640,
        }
    }

    #[test]
    fn total_disk_sums_components() {
        assert_eq!(stats().total_disk_bytes(), 300_000 + 1_080 + 640);
    }

    #[test]
    fn effective_ratio_is_logical_over_disk() {
        let s = stats();
        let want = 1_000_000.0 / (301_720.0);
        assert!((s.effective_ratio() - want).abs() < 1e-9);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(10 * 1024 * 1024 * 1024), "10.00 GiB");
    }
}
