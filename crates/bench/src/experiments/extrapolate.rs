//! Figures 14–17 and Tables 3–4: curve fitting and extrapolation of cVolume
//! resource consumption (paper Section 4.3.2).
//!
//! Procedure, exactly as the paper describes: build the incremental-add
//! series (Figure 13's data) per block size, train linear / MMF / Hoerl on
//! the first half, score RMSE on all points (Tables 3 and 4), then retrain
//! the winner on all points and extrapolate to 3000 caches (Figures 15
//! and 17).

use crate::config::ExperimentConfig;
use crate::csvout::{fmt_f, Table};
use crate::experiments::storage::{store_incremental, StoreSet};
use squirrel_curvefit::{fit_hoerl, fit_linear, fit_mmf, rmse, FittedCurve};
use squirrel_dataset::Corpus;

/// Which resource is being fitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resource {
    DiskBytes,
    MemoryBytes,
}

/// One (block size) row of Table 3 / Table 4.
#[derive(Clone, Debug)]
pub struct RmseRow {
    pub block_size: usize,
    pub linear: f64,
    pub mmf: f64,
    pub hoerl: f64,
}

impl RmseRow {
    /// The winning curve name under the paper's selection rule.
    pub fn winner(&self) -> &'static str {
        if self.linear <= self.mmf && self.linear <= self.hoerl {
            "linear"
        } else if self.mmf <= self.hoerl {
            "MMF"
        } else {
            "hoerl"
        }
    }
}

/// Extract the series (x = cache count, y = resource in GiB/MiB projected).
pub fn series(corpus: &Corpus, bs: usize, resource: Resource, proj: f64) -> (Vec<f64>, Vec<f64>) {
    let stats = store_incremental(corpus, StoreSet::Caches, bs);
    let xs: Vec<f64> = (1..=stats.len()).map(|i| i as f64).collect();
    let ys: Vec<f64> = stats
        .iter()
        .map(|s| match resource {
            Resource::DiskBytes => s.total_disk_bytes() as f64 * proj / (1u64 << 30) as f64,
            Resource::MemoryBytes => s.ddt_memory_bytes as f64 * proj / (1u64 << 20) as f64,
        })
        .collect();
    (xs, ys)
}

/// Train on the first half, score on everything (the paper's procedure).
pub fn fit_and_score(xs: &[f64], ys: &[f64]) -> Vec<(FittedCurve, f64)> {
    let half = (xs.len() / 2).max(4).min(xs.len());
    let (txs, tys) = (&xs[..half], &ys[..half]);
    let mut fits = vec![fit_linear(txs, tys)];
    if tys.iter().all(|&y| y > 0.0) {
        fits.push(fit_mmf(txs, tys));
        fits.push(fit_hoerl(txs, tys));
    }
    fits.into_iter().map(|c| (rmse(&c, xs, ys), c)).map(|(r, c)| (c, r)).collect()
}

/// Run the whole study for one resource: RMSE table (Table 3/4), winner fit
/// on all points, and extrapolation rows (Figures 14–17).
pub fn run_extrapolation(
    cfg: &ExperimentConfig,
    resource: Resource,
    block_sizes: &[usize],
    extrapolate_to: usize,
) -> (Vec<RmseRow>, Vec<(usize, FittedCurve)>) {
    let corpus = cfg.corpus();
    let proj = cfg.projection();
    let mut rows = Vec::new();
    let mut winners = Vec::new();
    let (label, unit) = match resource {
        Resource::DiskBytes => ("disk", "GiB"),
        Resource::MemoryBytes => ("memory", "MiB"),
    };

    let mut tab = Table::new(&["block_kb", "linear", "mmf", "hoerl", "winner"]);
    let mut extra = Table::new(&["block_kb", "curve", "at_n", &format!("pred_{unit}")]);
    for &bs in block_sizes {
        let (xs, ys) = series(&corpus, bs, resource, proj);
        let scored = fit_and_score(&xs, &ys);
        let find = |name: &str| {
            scored
                .iter()
                .find(|(c, _)| c.name() == name)
                .map(|(_, r)| *r)
                .unwrap_or(f64::NAN)
        };
        let row = RmseRow {
            block_size: bs,
            linear: find("linear"),
            mmf: find("MMF"),
            hoerl: find("hoerl"),
        };
        tab.push(vec![
            (bs / 1024).to_string(),
            fmt_f(row.linear),
            fmt_f(row.mmf),
            fmt_f(row.hoerl),
            row.winner().to_string(),
        ]);

        // Retrain the winner on all points, extrapolate. Guard: resource
        // consumption never shrinks as caches are added, so a winner whose
        // extrapolation decays below the last observation is a pathological
        // fit (Hoerl with b < 1 on noisy short series) — fall back to the
        // next candidate by RMSE.
        let mut order = [row.winner(), "linear", "MMF", "hoerl"];
        order[1..].sort_by(|a, b| {
            let r = |n: &str| match n {
                "linear" => row.linear,
                "MMF" => row.mmf,
                _ => row.hoerl,
            };
            r(a).partial_cmp(&r(b)).expect("no NaN")
        });
        let last_y = *ys.last().expect("nonempty");
        let winner = order
            .iter()
            .map(|name| match *name {
                "linear" => fit_linear(&xs, &ys),
                "MMF" => fit_mmf(&xs, &ys),
                _ => fit_hoerl(&xs, &ys),
            })
            .find(|c| c.predict(extrapolate_to as f64) >= 0.8 * last_y)
            .unwrap_or_else(|| fit_linear(&xs, &ys));
        for &n in &[xs.len(), extrapolate_to / 2, extrapolate_to] {
            extra.push(vec![
                (bs / 1024).to_string(),
                winner.name().to_string(),
                n.to_string(),
                fmt_f(winner.predict(n as f64)),
            ]);
        }
        winners.push((bs, winner));
        rows.push(row);
    }
    let (t_no, f_fit, f_ex) = match resource {
        Resource::DiskBytes => ("Table 3", "Figure 14", "Figure 15"),
        Resource::MemoryBytes => ("Table 4", "Figure 16", "Figure 17"),
    };
    tab.print(&format!("{t_no} / {f_fit}: RMSE of curves estimating {label} consumption"));
    extra.print(&format!("{f_ex}: extrapolation of {label} consumption"));
    tab.write(&cfg.out_dir, &format!("{label}_rmse")).expect("csv");
    extra.write(&cfg.out_dir, &format!("{label}_extrapolation")).expect("csv");
    (rows, winners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_series_is_roughly_linear_and_fits_prefer_it() {
        // The paper's Table 3 outcome: linear wins for disk consumption.
        let cfg = ExperimentConfig::smoke();
        let corpus = cfg.corpus();
        let (xs, ys) = series(&corpus, 16384, Resource::DiskBytes, cfg.projection());
        assert_eq!(xs.len(), corpus.len());
        assert!(ys.windows(2).all(|w| w[1] >= w[0]), "monotone disk growth");
        let scored = fit_and_score(&xs, &ys);
        let linear_rmse = scored.iter().find(|(c, _)| c.name() == "linear").expect("linear").1;
        let worst = scored.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
        assert!(linear_rmse.is_finite());
        assert!(linear_rmse <= worst);
    }

    #[test]
    fn extrapolation_predictions_are_positive_and_growing() {
        let cfg = ExperimentConfig::smoke();
        let (_, winners) = run_extrapolation(
            &ExperimentConfig { out_dir: None, ..cfg },
            Resource::DiskBytes,
            &[16384],
            100,
        );
        let (_, curve) = &winners[0];
        let p50 = curve.predict(50.0);
        let p100 = curve.predict(100.0);
        assert!(p50 > 0.0);
        assert!(p100 >= p50, "disk prediction must not shrink: {p50} vs {p100}");
    }

    #[test]
    fn rmse_rows_have_winner() {
        let row = RmseRow { block_size: 65536, linear: 0.1, mmf: 0.2, hoerl: 0.3 };
        assert_eq!(row.winner(), "linear");
        let row = RmseRow { block_size: 65536, linear: 0.5, mmf: 0.2, hoerl: 0.3 };
        assert_eq!(row.winner(), "MMF");
    }
}
