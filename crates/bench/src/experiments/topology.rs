//! Topology bench: flat replication versus erasure coding on a multi-rack
//! cluster, under node, rack and datacenter loss.
//!
//! Two parts:
//!
//! 1. A **scenario sweep** at the volume layer. The same 4-rack / 2-DC
//!    cluster hosts both shared-storage designs — the paper's replicated
//!    gluster volume (2×2, one brick per rack) and the erasure-coded
//!    `ErasureCodedVolume` (k+m Reed–Solomon shards placed across distinct
//!    racks). Each design writes the same objects, then a failure domain is
//!    cut (nothing / one storage node / one rack / one datacenter) and every
//!    object is read back from a compute client: availability is the
//!    fraction of objects still readable, degraded reads count parity
//!    reconstructions, and the EC scrub pass reports how many repair bytes
//!    crossed a rack boundary to re-home stranded shards.
//! 2. An **EC chaos soak**: `chaos_soak` on the multi-rack topology with
//!    rack/DC outages armed in the fault plan and the shared tier erasure
//!    coded. The soak must converge to a consistent, scrub-clean state and
//!    replay bit-identically at every thread count.
//!
//! Results land in `results/BENCH_topology.json`; `ci.sh` gates on
//! `"converged": true` and `"ec_survives_rack_loss": true`.

use crate::config::ExperimentConfig;
use crate::csvout::fmt_f;
use crate::experiments::bootstorm::thread_sweep;
use squirrel_cluster::{
    EcConfig, ErasureCodedVolume, GlusterConfig, GlusterVolume, LinkKind, Network, NodeId,
    TopologyConfig,
};
use squirrel_core::{chaos_soak, ChaosConfig, ChaosReport, FaultConfig, SharedStorage};

/// Compute nodes of the scenario cluster.
pub const TOPO_COMPUTE: u32 = 4;
/// Storage nodes of the scenario cluster (two per rack).
pub const TOPO_STORAGE: u32 = 8;
/// Erasure geometry under test.
pub const EC_K: u32 = 4;
pub const EC_M: u32 = 2;
/// Objects written per scenario.
const OBJECTS: usize = 6;
/// Soak length in simulated days.
pub const TOPO_SOAK_DAYS: u64 = 14;

fn topo() -> TopologyConfig {
    TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 }
}

fn fresh_net() -> Network {
    Network::with_topology(LinkKind::GbE, TOPO_COMPUTE, TOPO_STORAGE, topo())
}

fn storage_ids() -> Vec<NodeId> {
    (TOPO_COMPUTE..TOPO_COMPUTE + TOPO_STORAGE).collect()
}

/// Deterministic object payload (seed- and index-dependent, spans one to
/// two EC stripes so padding and multi-stripe paths are both exercised).
fn object_bytes(seed: u64, i: usize) -> Vec<u8> {
    let len = 160 * 1024 + i * 40 * 1024 + i * 13;
    let mut state = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Which failure domain a scenario cuts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loss {
    None,
    /// One storage node cut from every peer.
    Node,
    /// One whole rack down.
    Rack,
    /// One whole datacenter down.
    Datacenter,
}

impl Loss {
    pub const ALL: [Loss; 4] = [Loss::None, Loss::Node, Loss::Rack, Loss::Datacenter];

    pub fn name(self) -> &'static str {
        match self {
            Loss::None => "none",
            Loss::Node => "node",
            Loss::Rack => "rack",
            Loss::Datacenter => "datacenter",
        }
    }

    /// Cut the domain. The victim is always picked around the *last*
    /// storage node, so the coordinator (first storage node, rack 0, DC 0)
    /// and the reading client (compute node 0) stay up in every scenario.
    fn apply(self, net: &mut Network) {
        let victim = TOPO_COMPUTE + TOPO_STORAGE - 1;
        match self {
            Loss::None => {}
            Loss::Node => {
                for peer in 0..TOPO_COMPUTE + TOPO_STORAGE {
                    if peer != victim {
                        net.partition(victim, peer);
                    }
                }
            }
            Loss::Rack => {
                let rack = net.topology().rack_of(victim);
                net.rack_down(rack);
            }
            Loss::Datacenter => {
                let dc = net.topology().datacenter_of(victim);
                net.datacenter_down(dc);
            }
        }
    }
}

/// One (design, scenario) cell of the sweep.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    pub mode: &'static str,
    pub loss: Loss,
    pub objects: usize,
    pub available: usize,
    pub degraded_reads: u64,
    pub repair_bytes: u64,
    pub cross_domain_repair_bytes: u64,
    pub clean_after_repair: bool,
}

impl ScenarioResult {
    pub fn availability(&self) -> f64 {
        self.available as f64 / self.objects as f64
    }
}

/// Replicated gluster (2 stripes × 2 replicas, one brick per rack): write
/// the objects, cut the domain, read everything back with replica failover.
fn run_replicated(seed: u64, loss: Loss) -> ScenarioResult {
    let mut net = fresh_net();
    let gluster =
        GlusterVolume::new(GlusterConfig::default(), storage_ids()[..4].to_vec());
    let client: NodeId = 0;
    let mut offsets = Vec::with_capacity(OBJECTS);
    let mut pos = 0u64;
    for i in 0..OBJECTS {
        let len = object_bytes(seed, i).len() as u64;
        gluster.try_write(&mut net, client, pos, len).expect("healthy write");
        offsets.push((pos, len));
        pos += len;
    }
    loss.apply(&mut net);
    let available = offsets
        .iter()
        .filter(|&&(off, len)| gluster.try_read(&mut net, client, off, len).is_ok())
        .count();
    ScenarioResult {
        mode: "replicated",
        loss,
        objects: OBJECTS,
        available,
        degraded_reads: 0,
        repair_bytes: 0,
        cross_domain_repair_bytes: 0,
        clean_after_repair: true,
    }
}

/// Erasure-coded k+m: write the objects, cut the domain, read everything
/// back (byte-identity is asserted on every successful read), then run the
/// scrub/repair pass and account its cross-domain traffic.
fn run_erasure(seed: u64, loss: Loss) -> ScenarioResult {
    let mut net = fresh_net();
    let mut vol = ErasureCodedVolume::new(
        EcConfig { k: EC_K, m: EC_M, ..EcConfig::default() },
        storage_ids(),
    );
    let root: NodeId = TOPO_COMPUTE; // first storage node: rack 0, DC 0
    let client: NodeId = 0;
    let payloads: Vec<Vec<u8>> = (0..OBJECTS).map(|i| object_bytes(seed, i)).collect();
    for (i, data) in payloads.iter().enumerate() {
        vol.write(&mut net, root, &format!("img-{i:03}"), data).expect("healthy write");
    }
    loss.apply(&mut net);
    let mut available = 0;
    let mut degraded_reads = 0;
    for (i, data) in payloads.iter().enumerate() {
        match vol.try_read(&mut net, client, &format!("img-{i:03}")) {
            Ok(r) => {
                assert_eq!(&r.data, data, "degraded read returned wrong bytes");
                available += 1;
                degraded_reads += u64::from(r.degraded);
            }
            Err(e) => {
                // Only shard starvation is an acceptable failure mode.
                assert!(
                    matches!(e, squirrel_cluster::EcError::NotEnoughShards { .. }),
                    "unexpected read error: {e}"
                );
            }
        }
    }
    let repair = vol.scrub_and_repair(&mut net, root);
    ScenarioResult {
        mode: "erasure",
        loss,
        objects: OBJECTS,
        available,
        degraded_reads,
        repair_bytes: repair.repair_bytes,
        cross_domain_repair_bytes: repair.cross_domain_repair_bytes,
        clean_after_repair: repair.unrepaired_stripes == 0 && vol.is_clean(),
    }
}

/// One thread count's soak.
#[derive(Clone, Debug)]
pub struct TopologySoakRun {
    pub threads: usize,
    pub wall_secs: f64,
    pub report: ChaosReport,
}

fn soak_config(cfg: &ExperimentConfig, threads: usize) -> ChaosConfig {
    ChaosConfig {
        days: TOPO_SOAK_DAYS,
        images: cfg.images.min(6),
        nodes: TOPO_COMPUTE,
        seed: cfg.seed,
        threads,
        topology: topo(),
        storage_nodes: TOPO_STORAGE,
        storage: SharedStorage::ErasureCoded { k: EC_K, m: EC_M },
        faults: FaultConfig::chaos_with_domains(),
        ..ChaosConfig::default()
    }
}

/// Run the sweep and the soak, assert the acceptance properties, and
/// persist `BENCH_topology.json` under the configured output directory.
pub fn run_topology(cfg: &ExperimentConfig) -> (Vec<ScenarioResult>, Vec<TopologySoakRun>) {
    let mut scenarios = Vec::new();
    for loss in Loss::ALL {
        scenarios.push(run_replicated(cfg.seed, loss));
        scenarios.push(run_erasure(cfg.seed, loss));
    }
    for s in &scenarios {
        println!(
            "topology {} loss={}: {}/{} objects readable ({} degraded), \
             repair {} B ({} B cross-domain), clean={}",
            s.mode,
            s.loss.name(),
            s.available,
            s.objects,
            s.degraded_reads,
            s.repair_bytes,
            s.cross_domain_repair_bytes,
            s.clean_after_repair,
        );
    }

    // The headline claims: both designs ride out a single-node loss, and
    // the erasure-coded tier also rides out a whole-rack loss (the 4-rack
    // placement caps any rack at m shards per stripe) *and* scrubs back to
    // clean by re-homing the lost shards across racks.
    let cell = |mode: &str, loss: Loss| {
        scenarios.iter().find(|s| s.mode == mode && s.loss == loss).unwrap().clone()
    };
    for mode in ["replicated", "erasure"] {
        assert_eq!(cell(mode, Loss::None).availability(), 1.0, "{mode}: healthy reads failed");
        assert_eq!(cell(mode, Loss::Node).availability(), 1.0, "{mode}: node loss not survived");
    }
    let ec_rack = cell("erasure", Loss::Rack);
    let ec_survives_rack_loss = ec_rack.availability() == 1.0
        && ec_rack.degraded_reads > 0
        && ec_rack.clean_after_repair
        && ec_rack.cross_domain_repair_bytes > 0;
    assert!(ec_survives_rack_loss, "EC tier must survive a rack loss: {ec_rack:?}");

    let runs: Vec<TopologySoakRun> = thread_sweep(cfg)
        .into_iter()
        .map(|threads| {
            let t = std::time::Instant::now();
            let report = chaos_soak(&soak_config(cfg, threads));
            TopologySoakRun { threads, wall_secs: t.elapsed().as_secs_f64(), report }
        })
        .collect();
    let first = &runs[0];
    for run in &runs {
        assert!(run.report.converged, "threads={}: topology soak did not converge", run.threads);
        assert!(run.report.scrub_clean, "threads={}: pools not scrub-clean", run.threads);
        assert_eq!(
            run.report, first.report,
            "threads={} diverged from threads={}",
            run.threads, first.threads
        );
    }
    let r = &first.report;
    println!(
        "topology soak: {} days, {} rack outages, {} DC outages, {} degraded EC reads, \
         {} shards rebuilt in repair, {} EC repair bytes ({} cross-domain); converged={}",
        r.days,
        r.rack_outages,
        r.dc_outages,
        r.ec_degraded_reads,
        r.ec_shards_rematerialized,
        r.ec_repair_bytes,
        r.ec_cross_domain_repair_bytes,
        r.converged,
    );

    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_topology.json");
        std::fs::write(&path, render_json(cfg, &scenarios, &runs, ec_survives_rack_loss))
            .expect("write BENCH_topology.json");
        println!("topology bench written to {}", path.display());
    }
    (scenarios, runs)
}

/// Hand-rolled JSON (the workspace is std-only by policy).
fn render_json(
    cfg: &ExperimentConfig,
    scenarios: &[ScenarioResult],
    runs: &[TopologySoakRun],
    ec_survives_rack_loss: bool,
) -> String {
    let cells: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "    {{\"mode\": \"{}\", \"loss\": \"{}\", \"objects\": {}, \
                 \"available\": {}, \"availability\": {}, \"degraded_reads\": {}, \
                 \"repair_bytes\": {}, \"cross_domain_repair_bytes\": {}, \
                 \"clean_after_repair\": {}}}",
                s.mode,
                s.loss.name(),
                s.objects,
                s.available,
                fmt_f(s.availability()),
                s.degraded_reads,
                s.repair_bytes,
                s.cross_domain_repair_bytes,
                s.clean_after_repair,
            )
        })
        .collect();
    let entries: Vec<String> = runs
        .iter()
        .map(|run| {
            format!("    {{\"threads\": {}, \"wall_secs\": {}}}", run.threads, fmt_f(run.wall_secs))
        })
        .collect();
    let r = &runs[0].report;
    format!(
        "{{\n  \"seed\": {},\n  \
         \"topology\": {{\"regions\": 1, \"datacenters\": 2, \"racks\": 4, \
         \"compute_nodes\": {TOPO_COMPUTE}, \"storage_nodes\": {TOPO_STORAGE}}},\n  \
         \"erasure\": {{\"k\": {EC_K}, \"m\": {EC_M}, \"storage_overhead\": {}}},\n  \
         \"replication\": {{\"replicas\": 2, \"storage_overhead\": 2}},\n  \
         \"scenarios\": [\n{}\n  ],\n  \
         \"ec_survives_rack_loss\": {ec_survives_rack_loss},\n  \
         \"soak\": {{\"days\": {}, \"faults_injected\": {}, \"rack_outages\": {}, \
         \"dc_outages\": {}, \"ec_degraded_reads\": {}, \"ec_shards_reconstructed\": {}, \
         \"ec_shards_rematerialized\": {}, \"ec_repair_bytes\": {}, \
         \"ec_cross_domain_repair_bytes\": {}, \"read_checksum\": \"{}\"}},\n  \
         \"converged\": {},\n  \"scrub_clean\": {},\n  \
         \"deterministic_across_threads\": true,\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        fmt_f(f64::from(EC_K + EC_M) / f64::from(EC_K)),
        cells.join(",\n"),
        r.days,
        r.fault.total_injected(),
        r.rack_outages,
        r.dc_outages,
        r.ec_degraded_reads,
        r.ec_shards_reconstructed,
        r.ec_shards_rematerialized,
        r.ec_repair_bytes,
        r.ec_cross_domain_repair_bytes,
        r.read_checksum,
        r.converged,
        r.scrub_clean,
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_sweep_and_soak_pass_the_acceptance_gates() {
        let cfg = ExperimentConfig::smoke();
        let (scenarios, runs) = run_topology(&cfg);
        assert_eq!(scenarios.len(), 8);
        assert_eq!(runs.len(), 3);
        // Rack and DC outages fired in the soak for the smoke seed.
        assert!(runs[0].report.rack_outages + runs[0].report.dc_outages > 0);
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let cfg = ExperimentConfig { threads: 1, ..ExperimentConfig::smoke() };
        let (scenarios, runs) = run_topology(&cfg);
        let json = render_json(&cfg, &scenarios, &runs, true);
        for key in [
            "\"converged\": true",
            "\"scrub_clean\": true",
            "\"ec_survives_rack_loss\": true",
            "\"deterministic_across_threads\": true,",
            "\"cross_domain_repair_bytes\"",
            "\"rack_outages\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
