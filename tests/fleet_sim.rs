//! Fleet-scale soak properties: the Zipf demand model behaves like Zipf,
//! and a full fleet simulation — budget pressure, popularity decay and a
//! lively fault schedule all enabled — replays bit-identically (report *and*
//! metric snapshot) at every worker-thread count.

use squirrel_repro::core::{run_fleet_with_metrics, FleetConfig, HoardBudget};
use squirrel_repro::dataset::rng::{SplitMix64, Zipf};
use squirrel_repro::faults::FaultConfig;

// ---------------------------------------------------------------- Zipf ----

/// Fraction of `samples` draws landing in the top decile of ranks.
fn head_mass(n: u64, s: f64, seed: u64, samples: u32) -> f64 {
    let z = Zipf::new(n, s);
    let mut rng = SplitMix64::new(seed);
    let head_cut = (n / 10).max(1);
    let mut head = 0u32;
    for _ in 0..samples {
        if z.sample(&mut rng) < head_cut {
            head += 1;
        }
    }
    f64::from(head) / f64::from(samples)
}

#[test]
fn zipf_ranks_stay_in_bounds_across_shapes() {
    for (n, s) in [(1, 1.1), (2, 0.5), (7, 1.01), (100, 1.5), (10_000, 2.5)] {
        let z = Zipf::new(n, s);
        assert_eq!((z.n(), z.exponent()), (n, s));
        let mut rng = SplitMix64::from_parts(&[n, s.to_bits()]);
        for _ in 0..5_000 {
            assert!(z.sample(&mut rng) < n, "n={n} s={s}");
        }
    }
}

#[test]
fn zipf_sequences_replay_from_the_seed() {
    let z = Zipf::new(607, 1.1);
    let draw = |seed: u64| -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..1_000).map(|_| z.sample(&mut rng)).collect()
    };
    assert_eq!(draw(2014), draw(2014));
    assert_ne!(draw(2014), draw(2015), "different seeds must diverge");
}

#[test]
fn zipf_head_mass_grows_with_the_exponent() {
    // Skew monotonicity: a larger exponent concentrates more mass on the
    // head ranks. Deterministic draws, so strict ordering is safe.
    let masses: Vec<f64> =
        [0.7, 1.1, 1.5, 2.0].iter().map(|&s| head_mass(1_000, s, 99, 40_000)).collect();
    for pair in masses.windows(2) {
        assert!(pair[1] > pair[0], "head mass not monotone: {masses:?}");
    }
    // And the heavy-head regime really is heavy.
    assert!(masses[3] > 0.8, "s=2.0 head mass {}", masses[3]);
}

// ---------------------------------------------------------- fleet soak ----

/// A soak with every hard path enabled: tight hoard budget (evictions),
/// daily decay, chaos-grade faults, storms, elastic autoscaling.
fn pressured(threads: usize) -> FleetConfig {
    FleetConfig {
        days: 3,
        images: 8,
        nodes: 10,
        min_online: 4,
        seed: 2014,
        threads,
        boots_per_day: 48,
        storm_vms: 6,
        budget: HoardBudget { disk_bytes: 48 * 1024, ddt_mem_bytes: 0 },
        faults: FaultConfig::chaos(),
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_soak_is_bit_identical_at_any_thread_count() {
    let (reference, ref_snap) = run_fleet_with_metrics(&pressured(1));
    assert_eq!(reference.days.len(), 3);
    assert!(reference.boots > 0, "{reference:?}");
    assert!(reference.popularity_decays > 0, "decay cadence never fired");
    assert!(reference.fault.total_injected() > 0, "chaos must inject faults");
    assert!(reference.joins > 0 && reference.leaves > 0, "fleet never scaled");
    for threads in [2, 8] {
        let (r, snap) = run_fleet_with_metrics(&pressured(threads));
        assert_eq!(r, reference, "threads={threads}: report diverged");
        assert_eq!(snap, ref_snap, "threads={threads}: metrics diverged");
    }
}

#[test]
fn fleet_soak_diverges_across_seeds() {
    let (a, _) = run_fleet_with_metrics(&pressured(1));
    let (b, _) = run_fleet_with_metrics(&FleetConfig { seed: 7, ..pressured(1) });
    assert_ne!(a.read_checksum, b.read_checksum);
}
