//! Cross-crate chaos: the full Squirrel stack soaked under a seeded fault
//! plan — dropped and duplicated transfers, in-flight bit flips, crashed
//! receives, rotten blocks, node churn and network partitions — with the
//! self-healing workflows (transactional recv, retry-with-backoff,
//! scrub-and-repair, replication catch-up, degraded boot) run on a cadence.
//!
//! The contract under test: for a pinned seed the whole run is bit-identical
//! at any worker-thread count, and the system converges to a consistent,
//! scrub-clean state once every link heals and the final repair pass runs.

use squirrel_repro::core::{chaos_soak, ChaosConfig};
use squirrel_repro::faults::FaultConfig;

fn soak(seed: u64, threads: usize) -> ChaosConfig {
    ChaosConfig { days: 12, images: 6, nodes: 5, seed, threads, ..ChaosConfig::default() }
}

#[test]
fn chaos_soak_converges_and_is_thread_invariant() {
    let reference = chaos_soak(&soak(2014, 1));
    assert!(reference.converged, "{reference:?}");
    assert!(reference.scrub_clean, "{reference:?}");
    assert!(reference.fault.total_injected() > 0, "chaos must inject faults");
    assert_eq!(reference.registrations, 6);
    for threads in [2, 8] {
        assert_eq!(chaos_soak(&soak(2014, threads)), reference, "threads={threads}");
    }
}

#[test]
fn chaos_soak_heals_even_under_heavy_loss() {
    let heavy = FaultConfig {
        drop_prob: 0.30,
        stream_corrupt_prob: 0.20,
        crash_recv_prob: 0.15,
        block_corrupt_prob: 0.60,
        ..FaultConfig::chaos()
    };
    let r = chaos_soak(&ChaosConfig { faults: heavy, ..soak(7, 1) });
    assert!(r.converged, "{r:?}");
    assert!(r.scrub_clean, "{r:?}");
    assert!(r.blocks_repaired > 0 || r.fault.block_corruptions == 0, "{r:?}");
}

#[test]
fn quiet_plan_soak_stays_warm_and_repairs_nothing() {
    let quiet = ChaosConfig { faults: FaultConfig::default(), ..soak(3, 1) };
    let r = chaos_soak(&quiet);
    assert!(r.converged && r.scrub_clean, "{r:?}");
    assert_eq!(r.fault.total_injected(), 0, "{:?}", r.fault);
    assert_eq!(r.degraded_boots, 0);
    assert_eq!(r.blocks_repaired, 0);
    assert!(r.consistent_before_final_repair, "nothing ever went out of sync");
}
