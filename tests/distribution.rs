//! Cross-crate coverage of the distribution redesign: every
//! [`DistributionPolicy`] drives `register`/`rehoard_cache`/`node_rejoin`
//! through the one `TransferPlan` executor, lands the same replicated
//! state, charges shape-appropriate storage-uplink bytes, survives faults
//! and partitions, and stays bit-identical at any worker-thread count.

use squirrel_repro::core::{
    DistributionPolicy, FaultConfig, FaultPlan, RejoinOutcome, Squirrel, SquirrelConfig,
    SquirrelError,
};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn system(policy: DistributionPolicy, images: u32, nodes: u32, threads: usize) -> Squirrel {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: images,
        scale: 4096,
        ..CorpusConfig::azure(4096, 21)
    }));
    Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .block_size(16 * 1024)
            .threads(threads)
            .distribution(policy)
            .build(),
        corpus,
    )
}

#[test]
fn every_policy_lands_the_same_replicated_state() {
    let mut reference: Option<Vec<u64>> = None;
    for policy in DistributionPolicy::standard_set() {
        let mut sq = system(policy, 3, 4, 1);
        for img in 0..3 {
            let r = sq.register(img).expect("register");
            assert_eq!(r.nodes_updated, 4, "{}", policy.name());
            assert_eq!(r.nodes_lagging, 0, "{}", policy.name());
        }
        assert!(sq.check_replication().is_consistent(), "{}", policy.name());
        // The receiver-side bytes are shape-invariant: every ccVolume ends
        // at the same disk footprint no matter which links carried them.
        let disks: Vec<u64> = (0..4)
            .map(|n| sq.ccvol_stats(n).expect("node").total_disk_bytes())
            .collect();
        match &reference {
            Some(want) => assert_eq!(&disks, want, "{}", policy.name()),
            None => reference = Some(disks),
        }
    }
}

#[test]
fn register_reports_are_bit_identical_across_thread_counts() {
    for policy in DistributionPolicy::standard_set() {
        let run = |threads| {
            let mut sq = system(policy, 4, 6, threads);
            let reports: Vec<_> =
                (0..4).map(|img| sq.register(img).expect("register")).collect();
            (reports, sq.metrics().snapshot())
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "{} threads={threads}", policy.name());
        }
    }
}

#[test]
fn storage_uplink_bytes_rank_peer_and_pipeline_below_multicast_below_unicast() {
    let nodes = 16;
    let tx_for = |policy| {
        let mut sq = system(policy, 1, nodes, 1);
        let r = sq.register(0).expect("register");
        (sq.network().storage_tx_total(), r.diff_wire_bytes)
    };
    let (unicast, wire) = tx_for(DistributionPolicy::Unicast);
    let (multicast, _) = tx_for(DistributionPolicy::Multicast { fanout: 8 });
    let (pipeline, _) = tx_for(DistributionPolicy::Pipeline);
    let (peer, _) = tx_for(DistributionPolicy::PeerAssisted);

    assert_eq!(unicast, u64::from(nodes) * wire, "serial uplink pays per receiver");
    assert_eq!(multicast, 8 * wire, "tree uplink pays the fanout");
    assert_eq!(pipeline, wire, "chain uplink pays once");
    assert_eq!(peer, wire, "peers re-serve everything past the seed copy");
    assert!(peer < multicast && multicast < unicast);
}

#[test]
fn peer_assisted_register_charges_peers_and_counts_hits() {
    let nodes = 8u32;
    let mut sq = system(DistributionPolicy::PeerAssisted, 1, nodes, 1);
    let r = sq.register(0).expect("register");
    assert_eq!(r.nodes_updated, nodes);
    let wire = r.diff_wire_bytes;
    assert_eq!(sq.network().storage_tx_total(), wire);
    assert_eq!(sq.network().compute_tx_total(), u64::from(nodes - 1) * wire);
    let snap = sq.metrics().snapshot();
    assert_eq!(
        snap.counter("squirrel_dist_transfers_total{policy=\"peer-assisted\"}"),
        Some(1)
    );
    assert_eq!(snap.counter("squirrel_dist_storage_bytes_total"), Some(wire));
    assert_eq!(
        snap.counter("squirrel_dist_peer_bytes_total"),
        Some(u64::from(nodes - 1) * wire)
    );
    // The storage seed counts as the one miss; every other receiver is a hit.
    assert_eq!(snap.counter("squirrel_dist_peer_hits_total"), Some(u64::from(nodes - 1)));
    assert_eq!(snap.counter("squirrel_dist_peer_misses_total"), Some(1));
}

#[test]
fn group_shape_degrades_to_storage_unicast_when_a_relay_edge_is_cut() {
    // Fanout 1 chains storage -> 0 -> 1 -> 2; cutting the 0<->1 relay edge
    // fails the group transfer atomically, and delivery must degrade to
    // serial storage unicast instead of failing the registration.
    let mut sq = system(DistributionPolicy::Multicast { fanout: 1 }, 1, 3, 1);
    sq.network_mut().partition(0, 1);
    let r = sq.register(0).expect("register");
    assert_eq!(r.nodes_updated, 3);
    assert_eq!(r.nodes_lagging, 0);
    assert_eq!(sq.network().storage_tx_total(), 3 * r.diff_wire_bytes);
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn crashed_recv_leaves_nodes_lagging_and_the_next_register_counts_them() {
    // Satellite regression: a node that misses a registration (every recv
    // attempt crashes) used to be silently swallowed on the next clean
    // register — its MissingBase rejection must be surfaced as
    // `nodes_lagging`, and the repair workflow must pull it back in sync.
    let mut sq = system(DistributionPolicy::Unicast, 3, 3, 1);
    sq.register(0).expect("register 0");

    let crash_all = FaultConfig { crash_recv_prob: 1.0, max_retries: 2, ..FaultConfig::default() };
    sq.set_fault_plan(FaultPlan::new(9, crash_all));
    let r = sq.register(1).expect("register 1");
    assert_eq!(r.nodes_updated, 0, "every recv crashed");
    assert_eq!(r.nodes_lagging, 3);
    sq.clear_fault_plan();

    // Clean register: every node misses image 1's snapshot base, so the
    // incremental diff is rejected — counted, not swallowed.
    let r = sq.register(2).expect("register 2");
    assert_eq!(r.nodes_updated, 0);
    assert_eq!(r.nodes_lagging, 3);
    assert!(!sq.check_replication().is_consistent());

    let sync = sq.repair_replication();
    assert_eq!(sync.repaired, 3);
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn rehoard_skips_unqualified_donors_nearest_first() {
    let mut sq = system(DistributionPolicy::PeerAssisted, 1, 6, 1);
    sq.register(0).expect("register");

    // All peers warm: the nearest (node 1) donates.
    let _ = sq.evict_cache(0, 0).expect("evict");
    assert_eq!(sq.rehoard_cache(0, 0).expect("rehoard").peer, Some(1));

    // Offline peers are skipped.
    let _ = sq.evict_cache(0, 0).expect("evict");
    sq.node_offline(1).expect("offline");
    assert_eq!(sq.rehoard_cache(0, 0).expect("rehoard").peer, Some(2));

    // Peers whose own copy was evicted are skipped.
    let _ = sq.evict_cache(0, 0).expect("evict");
    let _ = sq.evict_cache(2, 0).expect("evict donor");
    assert_eq!(sq.rehoard_cache(0, 0).expect("rehoard").peer, Some(3));

    // Partitioned peers are skipped.
    let _ = sq.evict_cache(0, 0).expect("evict");
    sq.network_mut().partition(3, 0);
    assert_eq!(sq.rehoard_cache(0, 0).expect("rehoard").peer, Some(4));

    // Peers holding rotten blocks are skipped (intact copies only).
    let _ = sq.evict_cache(0, 0).expect("evict");
    sq.corrupt_cc_block(4, 0).expect("corrupt donor");
    assert_eq!(sq.rehoard_cache(0, 0).expect("rehoard").peer, Some(5));

    // No qualified peer left: the scVolume serves, charged to storage.
    let _ = sq.evict_cache(0, 0).expect("evict");
    sq.node_offline(5).expect("offline");
    let storage_tx0 = sq.network().storage_tx_total();
    let r = sq.rehoard_cache(0, 0).expect("rehoard");
    assert_eq!(r.peer, None);
    assert_eq!(sq.network().storage_tx_total() - storage_tx0, r.wire_bytes);
}

#[test]
fn rehoard_from_peer_moves_no_storage_bytes() {
    let mut sq = system(DistributionPolicy::PeerAssisted, 1, 4, 1);
    sq.register(0).expect("register");
    let _ = sq.evict_cache(2, 0).expect("evict");
    let storage_tx0 = sq.network().storage_tx_total();
    let compute_tx0 = sq.network().compute_tx_total();
    let r = sq.rehoard_cache(2, 0).expect("rehoard");
    assert_eq!(r.peer, Some(1), "nearest warm peer donates");
    assert_eq!(sq.network().storage_tx_total(), storage_tx0, "storage uplink untouched");
    assert_eq!(sq.network().compute_tx_total() - compute_tx0, r.wire_bytes);
    assert!(sq.has_cache(2, 0));
    assert!(sq.check_replication().is_consistent());
}

#[test]
fn rejoin_pulls_from_scrub_clean_peer_through_a_cut_storage_link() {
    let storage = 4; // first storage node of a 4-compute-node cluster
    let mut sq = system(DistributionPolicy::PeerAssisted, 2, 4, 1);
    sq.register(0).expect("register 0");
    sq.node_offline(2).expect("offline");
    sq.register(1).expect("register 1");

    // Nearest in-sync candidate (node 1) holds rot, so the scrub gate must
    // pass it over for node 3; the cut storage link must not matter.
    sq.corrupt_cc_block(1, 0).expect("corrupt");
    sq.network_mut().partition(storage, 2);
    let storage_tx0 = sq.network().storage_tx_total();
    let hits0 = sq
        .metrics()
        .snapshot()
        .counter("squirrel_dist_peer_hits_total")
        .unwrap_or(0);
    let out = sq.node_rejoin(2).expect("rejoin");
    assert!(matches!(out, RejoinOutcome::Incremental { .. }), "{out:?}");
    assert_eq!(sq.network().storage_tx_total(), storage_tx0, "peer served every byte");
    assert_eq!(
        sq.metrics().snapshot().counter("squirrel_dist_peer_hits_total"),
        Some(hits0 + 1)
    );
}

#[test]
fn rejoin_without_peers_fails_across_a_cut_storage_link() {
    let storage = 4;
    let mut sq = system(DistributionPolicy::Unicast, 2, 4, 1);
    sq.register(0).expect("register 0");
    sq.node_offline(2).expect("offline");
    sq.register(1).expect("register 1");
    sq.network_mut().partition(storage, 2);
    match sq.node_rejoin(2) {
        Err(SquirrelError::Net(_)) => {}
        other => panic!("expected a partitioned rejoin to fail, got {other:?}"),
    }
    // Healing the link lets the ordinary storage path finish the catch-up.
    sq.network_mut().heal(storage, 2);
    assert!(matches!(
        sq.node_rejoin(2).expect("rejoin"),
        RejoinOutcome::Incremental { .. }
    ));
    assert!(sq.check_replication().is_consistent());
}
