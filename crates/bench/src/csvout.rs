//! Tiny CSV writer (no external crates): experiments persist their series
//! under `results/` so figures can be re-plotted without re-running.

use std::io::Write;
use std::path::Path;

/// A rectangular result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "ragged row");
        self.rows.push(row);
    }

    /// Render as CSV text (quoting fields containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |f: &str| -> String {
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        };
        out.push_str(&self.header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|f| quote(f)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write to `dir/name.csv` when `dir` is set; directory is created.
    pub fn write(&self, dir: &Option<String>, name: &str) -> std::io::Result<()> {
        let Some(dir) = dir else { return Ok(()) };
        std::fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }

    /// Print an aligned view to stdout for terminal reading.
    pub fn print(&self, title: &str) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, f) in widths.iter_mut().zip(row) {
                *w = (*w).max(f.len());
            }
        }
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = writeln!(lock, "\n== {title} ==");
        let line = |fields: &[String], lock: &mut std::io::StdoutLock<'_>| {
            let cells: Vec<String> = fields
                .iter()
                .zip(&widths)
                .map(|(f, w)| format!("{f:>w$}", w = w))
                .collect();
            let _ = writeln!(lock, "  {}", cells.join("  "));
        };
        line(&self.header, &mut lock);
        for row in &self.rows {
            line(row, &mut lock);
        }
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a byte count in GiB.
pub fn gib(bytes: f64) -> String {
    format!("{:.2}", bytes / (1u64 << 30) as f64)
}

/// Format a byte count in MiB.
pub fn mib(bytes: f64) -> String {
    format!("{:.2}", bytes / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into(), "x,y".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_none_dir_is_noop() {
        let t = Table::new(&["a"]);
        t.write(&None, "x").expect("noop");
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join("squirrel-csv-test");
        let dir_s = dir.to_string_lossy().to_string();
        let mut t = Table::new(&["v"]);
        t.push(vec!["7".into()]);
        t.write(&Some(dir_s.clone()), "probe").expect("write");
        let content = std::fs::read_to_string(dir.join("probe.csv")).expect("read");
        assert_eq!(content, "v\n7\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.5), "1234.5");
        assert_eq!(fmt_f(7.256), "7.26");
        assert_eq!(fmt_f(0.1234), "0.1234");
        assert_eq!(gib((1u64 << 30) as f64), "1.00");
        assert_eq!(mib((1u64 << 20) as f64 * 2.5), "2.50");
    }
}
