//! Corpus generation and image content access.
//!
//! A [`Corpus`] is the synthetic stand-in for the paper's 607-image Azure
//! repository: a census-driven set of [`ImageSpec`]s plus the shared content
//! machinery (dictionary, layout parameters). [`ImageHandle`] exposes lazy
//! block reads — content is synthesized on demand, never stored, so sweeping
//! eleven block sizes over hundreds of images stays in constant memory.

use crate::atoms::{fill_atom, ATOM_SIZE};
use crate::cache::CacheView;
use crate::census::{azure_census, scaled_census, CensusEntry, OsFamily};
use crate::dict::Dictionary;
use crate::layout::{build_layout, Geometry, Layout, LayoutParams};
use crate::rng::SplitMix64;
use std::sync::Arc;

/// Index of an image within its corpus.
pub type ImageId = u32;

/// Paper-scale geometry constants (bytes), divided by `CorpusConfig::scale`.
/// 16.4 TB raw / 607 images ≈ 27 GiB virtual; 1.4 TB nonzero ≈ 2.36 GiB;
/// 78.5 GB of caches ≈ 132 MiB boot working set.
const PAPER_VIRTUAL_BYTES: u64 = 27 << 30;
const PAPER_NONZERO_BYTES: u64 = 2420 << 20;
const PAPER_CACHE_BYTES: u64 = 132 << 20;

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of images (census proportions preserved).
    pub n_images: u32,
    /// Byte-volume divisor versus the paper's geometry. `scale = 1` is the
    /// full 16.4 TB; tests use 10_000+; experiments typically 256–2048.
    pub scale: u64,
    /// Master seed; every byte of the corpus derives from it.
    pub seed: u64,
    /// Content layout knobs.
    pub layout: LayoutParams,
    /// Census to draw family proportions from (defaults to Azure).
    pub census: Vec<CensusEntry>,
}

impl CorpusConfig {
    /// The paper's full dataset shape at a given scale divisor.
    pub fn azure(scale: u64, seed: u64) -> Self {
        CorpusConfig {
            n_images: 607,
            scale,
            seed,
            layout: LayoutParams::default(),
            census: azure_census(),
        }
    }

    /// A small corpus for tests: `n` images at a high scale divisor.
    pub fn test_corpus(n: u32, seed: u64) -> Self {
        CorpusConfig {
            n_images: n,
            scale: 4096,
            seed,
            layout: LayoutParams::default(),
            census: azure_census(),
        }
    }

    /// Shrink both image count and byte volume together.
    pub fn with_images(mut self, n: u32) -> Self {
        self.n_images = n;
        self
    }
}

/// One image's identity and geometry (content is derived lazily).
#[derive(Clone, Debug)]
pub struct ImageSpec {
    pub id: ImageId,
    pub family: OsFamily,
    pub release: u32,
    pub geometry: Geometry,
}

/// The generated corpus.
pub struct Corpus {
    cfg: CorpusConfig,
    dict: Arc<Dictionary>,
    images: Vec<ImageSpec>,
    layouts: Vec<Arc<Layout>>,
}

impl Corpus {
    /// Generate a corpus. Deterministic in `cfg.seed`.
    pub fn generate(cfg: CorpusConfig) -> Self {
        let dict = Arc::new(Dictionary::new(cfg.seed));
        let census = scaled_census(&cfg.census, cfg.n_images);
        let mut images = Vec::with_capacity(cfg.n_images as usize);
        let mut id: ImageId = 0;
        for entry in &census {
            for _ in 0..entry.count {
                let mut rng = SplitMix64::from_parts(&[cfg.seed, 0x6e0, id as u64]);
                let releases = entry.family.release_count();
                // Newer releases are more popular: quadratic skew toward the
                // high end, like real catalogs.
                let u = rng.unit_f64();
                let release = ((u.sqrt() * releases as f64) as u32).min(releases - 1);
                // Size diversity: ×0.6 .. ×1.9 lognormal-ish factor.
                let size_factor = 0.6 + 1.3 * rng.unit_f64() * rng.unit_f64().sqrt();
                // Boot working-set size is a property of the *release* (the
                // same OS files boot), so same-release caches have equal
                // lengths and dedup even at large block sizes.
                let mut crng = SplitMix64::from_parts(&[
                    cfg.seed,
                    0xca0,
                    entry.family as u64,
                    release as u64,
                ]);
                let cache_factor = 0.7 + 0.7 * crng.unit_f64();
                let atoms = |bytes: u64, factor: f64| -> u64 {
                    (((bytes / cfg.scale) as f64 * factor) as u64 / ATOM_SIZE as u64).max(8)
                };
                let boot_atoms = atoms(PAPER_CACHE_BYTES, cache_factor);
                let nonzero = atoms(PAPER_NONZERO_BYTES, size_factor);
                // Most of a community image is the distro's stock system
                // tree (kernel, userland, default packages); user software
                // is the smaller, diverse remainder.
                let system_atoms = (nonzero * 11 / 20).max(8);
                let user_atoms = nonzero.saturating_sub(boot_atoms + system_atoms).max(8);
                let virtual_atoms =
                    atoms(PAPER_VIRTUAL_BYTES, size_factor).max(boot_atoms + system_atoms + user_atoms);
                images.push(ImageSpec {
                    id,
                    family: entry.family,
                    release,
                    geometry: Geometry { boot_atoms, system_atoms, user_atoms, virtual_atoms },
                });
                id += 1;
            }
        }
        let layouts = images
            .iter()
            .map(|img| {
                Arc::new(build_layout(
                    &cfg.layout,
                    cfg.seed,
                    img.id,
                    img.family,
                    img.release,
                    img.geometry,
                ))
            })
            .collect();
        Corpus { cfg, dict, images, layouts }
    }

    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    pub fn len(&self) -> usize {
        self.images.len()
    }

    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    pub fn images(&self) -> &[ImageSpec] {
        &self.images
    }

    /// Handle for lazy content access to image `id`.
    pub fn image(&self, id: ImageId) -> ImageHandle<'_> {
        ImageHandle {
            corpus: self,
            spec: &self.images[id as usize],
            layout: &self.layouts[id as usize],
        }
    }

    /// Iterate handles for all images.
    pub fn iter(&self) -> impl Iterator<Item = ImageHandle<'_>> {
        (0..self.images.len() as u32).map(move |id| self.image(id))
    }

    pub(crate) fn dict(&self) -> &Dictionary {
        &self.dict
    }

    pub(crate) fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

/// Lazy content accessor for one image.
#[derive(Clone, Copy)]
pub struct ImageHandle<'c> {
    pub(crate) corpus: &'c Corpus,
    pub(crate) spec: &'c ImageSpec,
    pub(crate) layout: &'c Layout,
}

impl<'c> ImageHandle<'c> {
    pub fn id(&self) -> ImageId {
        self.spec.id
    }

    pub fn spec(&self) -> &ImageSpec {
        self.spec
    }

    /// Virtual (sparse) size in bytes — the "Original" column of Table 1.
    pub fn virtual_bytes(&self) -> u64 {
        self.spec.geometry.virtual_atoms * ATOM_SIZE as u64
    }

    /// Nonzero bytes (what a sparse-aware file system stores).
    pub fn nonzero_bytes(&self) -> u64 {
        self.layout.nonzero_bytes()
    }

    /// Number of blocks of `block_size` covering the nonzero area.
    pub fn nonzero_blocks(&self, block_size: usize) -> u64 {
        self.nonzero_bytes().div_ceil(block_size as u64)
    }

    /// Read `buf.len()` bytes at `offset`. Bytes past the nonzero area are
    /// zero; bytes past the virtual size are also zero (reads never fail).
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) {
        buf.fill(0);
        let nz = self.nonzero_bytes();
        if offset >= nz {
            return;
        }
        let end = (offset + buf.len() as u64).min(nz);
        let first_atom = offset / ATOM_SIZE as u64;
        let last_atom = (end - 1) / ATOM_SIZE as u64;
        let mut atom_buf = [0u8; ATOM_SIZE];
        let iter = self.layout.atoms_at(first_atom, last_atom - first_atom + 1);
        for (atom_off, (group, idx)) in (first_atom..).zip(iter) {
            fill_atom(self.corpus.dict(), self.corpus.seed(), group, idx, &mut atom_buf);
            let atom_start = atom_off * ATOM_SIZE as u64;
            let copy_start = offset.max(atom_start);
            let copy_end = end.min(atom_start + ATOM_SIZE as u64);
            if copy_start < copy_end {
                let src = &atom_buf[(copy_start - atom_start) as usize..(copy_end - atom_start) as usize];
                let dst_off = (copy_start - offset) as usize;
                buf[dst_off..dst_off + src.len()].copy_from_slice(src);
            }
        }
    }

    /// One block of the image (zero-padded at the tail).
    pub fn block(&self, block_size: usize, block_idx: u64) -> Vec<u8> {
        let mut buf = vec![0u8; block_size];
        self.read_at(block_idx * block_size as u64, &mut buf);
        buf
    }

    /// Iterate all nonzero-area blocks of `block_size` (tail zero-padded to
    /// a full block, matching fixed-record stores).
    pub fn blocks(&self, block_size: usize) -> BlockIter<'c> {
        BlockIter {
            image: *self,
            block_size,
            next: 0,
            count: self.nonzero_blocks(block_size),
            trim_to: None,
        }
    }

    /// Like [`blocks`](Self::blocks), but the final block is truncated to
    /// the nonzero length instead of zero-padded. Analysis metrics use this
    /// so that corpora scaled far below paper volume do not overweight tail
    /// padding (at full scale the tail block is a negligible fraction).
    pub fn blocks_trimmed(&self, block_size: usize) -> BlockIter<'c> {
        BlockIter {
            image: *self,
            block_size,
            next: 0,
            count: self.nonzero_blocks(block_size),
            trim_to: Some(self.nonzero_bytes()),
        }
    }

    /// The image's VMI cache (boot working set view).
    pub fn cache(&self) -> CacheView<'c> {
        CacheView::new(*self)
    }

    pub(crate) fn boot_atoms(&self) -> u64 {
        self.layout.boot_atoms
    }
}

/// Iterator over an image's nonzero blocks.
pub struct BlockIter<'c> {
    image: ImageHandle<'c>,
    block_size: usize,
    next: u64,
    count: u64,
    /// When set, truncate the final block to this byte length.
    trim_to: Option<u64>,
}

impl Iterator for BlockIter<'_> {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.count {
            return None;
        }
        let mut b = self.image.block(self.block_size, self.next);
        if let Some(limit) = self.trim_to {
            let start = self.next * self.block_size as u64;
            if start + self.block_size as u64 > limit {
                b.truncate((limit - start) as usize);
            }
        }
        self.next += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.count - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BlockIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig::test_corpus(12, 99))
    }

    #[test]
    fn corpus_respects_image_count() {
        let c = small();
        assert_eq!(c.len(), 12);
        assert!(c.images().iter().filter(|i| i.family == OsFamily::Ubuntu).count() >= 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusConfig::test_corpus(6, 5));
        let b = Corpus::generate(CorpusConfig::test_corpus(6, 5));
        for id in 0..6 {
            assert_eq!(a.image(id).block(4096, 0), b.image(id).block(4096, 0));
            assert_eq!(a.image(id).nonzero_bytes(), b.image(id).nonzero_bytes());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusConfig::test_corpus(3, 1));
        let b = Corpus::generate(CorpusConfig::test_corpus(3, 2));
        assert_ne!(a.image(0).block(4096, 0), b.image(0).block(4096, 0));
    }

    #[test]
    fn read_at_is_consistent_with_blocks() {
        let c = small();
        let img = c.image(0);
        let direct = img.block(8192, 1);
        // Stitch the same range from two half reads.
        let mut stitched = vec![0u8; 8192];
        img.read_at(8192, &mut stitched[..4096]);
        img.read_at(8192 + 4096, &mut stitched[4096..]);
        assert_eq!(direct, stitched);
    }

    #[test]
    fn reads_past_nonzero_are_zero() {
        let c = small();
        let img = c.image(1);
        let mut buf = vec![0xffu8; 128];
        img.read_at(img.nonzero_bytes() + 10_000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn straddling_read_matches_block_content() {
        let c = small();
        let img = c.image(2);
        // Read across an atom boundary at an odd offset and compare with a
        // large aligned block read covering the same bytes.
        let mut buf = vec![0u8; 700];
        img.read_at(300, &mut buf);
        let block = img.block(2048, 0);
        assert_eq!(&buf[..], &block[300..1000]);
    }

    #[test]
    fn virtual_size_exceeds_nonzero() {
        let c = small();
        for img in c.iter() {
            assert!(img.virtual_bytes() >= img.nonzero_bytes());
            // Sparse ratio should be large, per Table 1 (16.4 TB vs 1.4 TB).
            assert!(img.virtual_bytes() >= 5 * img.nonzero_bytes());
        }
    }

    #[test]
    fn block_iter_counts_match() {
        let c = small();
        let img = c.image(3);
        let bs = 4096;
        let n = img.blocks(bs).count() as u64;
        assert_eq!(n, img.nonzero_blocks(bs));
        assert_eq!(img.blocks(bs).len() as u64, n);
    }

    #[test]
    fn azure_config_shape() {
        let cfg = CorpusConfig::azure(4096, 7);
        assert_eq!(cfg.n_images, 607);
        assert_eq!(cfg.scale, 4096);
    }
}
